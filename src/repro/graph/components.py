"""Connectivity analysis: components, largest cluster, partitioning.

Connectivity is the paper's "minimal requirement for all applications"
(Section 5): Table 1 reports partitioned runs and cluster counts in the
growing scenario, and Figure 6 counts the nodes left outside the largest
connected cluster after massive node removal.

Uses :func:`scipy.sparse.csgraph.connected_components` when scipy is
importable and an iterative CSR-based BFS sweep otherwise; both paths are
exact and produce identical labelings up to renumbering.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.snapshot import GraphSnapshot

try:  # optional C-speed path
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import connected_components as _sp_components

    _HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only without scipy
    _HAVE_SCIPY = False


def component_labels(snapshot: GraphSnapshot) -> np.ndarray:
    """A component id (0-based) for every node, aligned with addresses."""
    n = snapshot.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if _HAVE_SCIPY:
        matrix = _csr_matrix(
            (
                np.ones(len(snapshot.indices), dtype=np.int8),
                snapshot.indices,
                snapshot.indptr,
            ),
            shape=(n, n),
        )
        _, labels = _sp_components(matrix, directed=False)
        return labels.astype(np.int64)
    labels = np.full(n, -1, dtype=np.int64)
    indptr = snapshot.indptr
    indices = snapshot.indices
    current = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        labels[start] = current
        stack = [start]
        while stack:
            v = stack.pop()
            for w in indices[indptr[v] : indptr[v + 1]]:
                if labels[w] < 0:
                    labels[w] = current
                    stack.append(int(w))
        current += 1
    return labels


def component_sizes(snapshot: GraphSnapshot) -> List[int]:
    """Sizes of all connected components, largest first."""
    labels = component_labels(snapshot)
    if labels.size == 0:
        return []
    sizes = np.bincount(labels)
    return sorted((int(s) for s in sizes), reverse=True)


def num_components(snapshot: GraphSnapshot) -> int:
    """Number of connected components (0 for the empty graph)."""
    labels = component_labels(snapshot)
    return int(labels.max()) + 1 if labels.size else 0


def largest_component_size(snapshot: GraphSnapshot) -> int:
    """Number of nodes in the largest connected component."""
    sizes = component_sizes(snapshot)
    return sizes[0] if sizes else 0


def nodes_outside_largest(snapshot: GraphSnapshot) -> int:
    """Nodes not in the largest component (Figure 6's y-axis)."""
    sizes = component_sizes(snapshot)
    return sum(sizes[1:]) if sizes else 0


def is_connected(snapshot: GraphSnapshot) -> bool:
    """Whether the graph forms a single connected component.

    The empty graph is vacuously connected; a single node is connected.
    """
    return num_components(snapshot) <= 1


def is_partitioned(snapshot: GraphSnapshot) -> bool:
    """Whether the graph has at least two components (Table 1's criterion)."""
    return num_components(snapshot) > 1

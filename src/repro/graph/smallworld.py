"""Small-world characterization.

The paper's headline structural finding (Section 8, "Randomness"): every
converged overlay has a clustering coefficient *significantly larger* than
a random graph's while keeping an almost equally small average path length
-- the signature of Watts-Strogatz small-world graphs.  This module
quantifies that with the standard small-world coefficient

    sigma = (C / C_rand) / (L / L_rand),

where ``C_rand`` and ``L_rand`` come from a same-size, same-density uniform
random view topology.  ``sigma >> 1`` indicates a small world.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Optional

from repro.graph.generators import random_view_topology
from repro.graph.metrics import (
    average_degree,
    average_path_length,
    clustering_coefficient,
)
from repro.graph.snapshot import GraphSnapshot


def expected_random_clustering(n: int, avg_degree: float) -> float:
    """Analytic clustering coefficient of a random graph: ``k / n``."""
    if n <= 0:
        return 0.0
    return avg_degree / n


def expected_random_path_length(n: int, avg_degree: float) -> float:
    """Analytic random-graph average path length: ``ln n / ln k``."""
    if n <= 1 or avg_degree <= 1:
        return float("nan")
    return math.log(n) / math.log(avg_degree)


@dataclasses.dataclass(frozen=True)
class SmallWorldReport:
    """Measured vs random-baseline structure of one topology."""

    n: int
    average_degree: float
    clustering: float
    path_length: float
    random_clustering: float
    random_path_length: float

    @property
    def clustering_ratio(self) -> float:
        """``C / C_rand`` (>> 1 for small worlds)."""
        if self.random_clustering == 0:
            return float("inf") if self.clustering > 0 else 1.0
        return self.clustering / self.random_clustering

    @property
    def path_length_ratio(self) -> float:
        """``L / L_rand`` (close to 1 for small worlds)."""
        if not self.random_path_length or math.isnan(self.random_path_length):
            return float("nan")
        return self.path_length / self.random_path_length

    @property
    def sigma(self) -> float:
        """The small-world coefficient ``(C/C_rand) / (L/L_rand)``."""
        ratio = self.path_length_ratio
        if math.isnan(ratio) or ratio == 0:
            return float("nan")
        return self.clustering_ratio / ratio

    @property
    def is_small_world(self) -> bool:
        """Conventional criterion: ``sigma > 1``."""
        return self.sigma > 1.0


def small_world_report(
    snapshot: GraphSnapshot,
    rng: Optional[random.Random] = None,
    clustering_sample: Optional[int] = 1000,
    path_sources: Optional[int] = 50,
    empirical_baseline: bool = True,
) -> SmallWorldReport:
    """Compare ``snapshot`` against a same-density random topology.

    Parameters
    ----------
    empirical_baseline:
        When ``True`` the baseline ``C_rand`` / ``L_rand`` are *measured*
        on a generated uniform random view topology of the same size and
        view count (matching the paper's methodology); otherwise the
        analytic approximations are used.
    """
    if rng is None:
        rng = random.Random(0)
    n = snapshot.n
    k = average_degree(snapshot)
    clustering = clustering_coefficient(
        snapshot, sample=clustering_sample, rng=rng
    )
    path_length = average_path_length(snapshot, n_sources=path_sources, rng=rng)
    if empirical_baseline and n >= 2 and k >= 2:
        baseline = random_view_topology(n, max(1, int(round(k / 2))), rng)
        random_clustering = clustering_coefficient(
            baseline, sample=clustering_sample, rng=rng
        )
        random_path_length = average_path_length(
            baseline, n_sources=path_sources, rng=rng
        )
    else:
        random_clustering = expected_random_clustering(n, k)
        random_path_length = expected_random_path_length(n, k)
    return SmallWorldReport(
        n=n,
        average_degree=k,
        clustering=clustering,
        path_length=path_length,
        random_clustering=random_clustering,
        random_path_length=random_path_length,
    )

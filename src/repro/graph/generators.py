"""Reference topologies.

The generators return :class:`~repro.graph.snapshot.GraphSnapshot` objects
and serve two purposes: the **uniform random view topology** is the paper's
explicit baseline (every view filled with a uniform random sample -- the
horizontal lines in Figures 2 and 3), and the others (ring lattice, star,
Erdos-Renyi) anchor tests and the discussion of degenerate cases (the paper
notes ``(*,*,pull)`` collapses to a star).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.errors import ConfigurationError
from repro.graph.snapshot import GraphSnapshot


def random_view_topology(
    n: int,
    c: int,
    rng: Optional[random.Random] = None,
) -> GraphSnapshot:
    """The paper's baseline: each node's view is a uniform random sample.

    Every node holds ``min(c, n - 1)`` descriptors of distinct other nodes;
    the snapshot is the undirected version of that directed graph.  Its
    expected average degree is slightly below ``2c`` (in- and out-links
    overlap with probability about ``c / n``).
    """
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    if rng is None:
        rng = random.Random(0)
    fill = min(c, n - 1)
    adjacency: Dict[int, List[int]] = {}
    population = range(n)
    for node in range(n):
        sample = rng.sample(population, fill + 1)
        view = [peer for peer in sample if peer != node][:fill]
        while len(view) < fill:
            peer = rng.randrange(n)
            if peer != node and peer not in view:
                view.append(peer)
        adjacency[node] = view
    return GraphSnapshot.from_adjacency(adjacency)


def ring_lattice(n: int, c: int) -> GraphSnapshot:
    """A ring where each node links to its ``c`` nearest ring neighbours.

    Mirrors the paper's lattice bootstrap (Section 5.2): neighbours are
    added in order of ring distance 1, 1, 2, 2, ... until ``c`` descriptors
    are placed.
    """
    if n < 2:
        raise ConfigurationError(f"a lattice needs n >= 2, got {n}")
    fill = min(c, n - 1)
    adjacency: Dict[int, List[int]] = {}
    for node in range(n):
        view: List[int] = []
        distance = 1
        while len(view) < fill:
            for offset in (distance, -distance):
                if len(view) >= fill:
                    break
                peer = (node + offset) % n
                if peer != node and peer not in view:
                    view.append(peer)
            distance += 1
        adjacency[node] = view
    return GraphSnapshot.from_adjacency(adjacency)


def star(n: int, center: int = 0) -> GraphSnapshot:
    """A star: every node linked to ``center`` only.

    The degenerate topology that pull-only protocols converge to (paper
    Section 4.3); maximally unbalanced degree distribution, yet low
    diameter and zero clustering.
    """
    if n < 2:
        raise ConfigurationError(f"a star needs n >= 2, got {n}")
    if not 0 <= center < n:
        raise ConfigurationError(f"center {center} outside [0, {n})")
    edges = [(center, node) for node in range(n) if node != center]
    return GraphSnapshot.from_edges(list(range(n)), edges)


def erdos_renyi(
    n: int,
    p: float,
    rng: Optional[random.Random] = None,
) -> GraphSnapshot:
    """A G(n, p) random graph (each undirected pair linked w.p. ``p``)."""
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    if rng is None:
        rng = random.Random(0)
    edges = [
        (a, b)
        for a in range(n)
        for b in range(a + 1, n)
        if rng.random() < p
    ]
    return GraphSnapshot.from_edges(list(range(n)), edges)


def complete_graph(n: int) -> GraphSnapshot:
    """The complete graph on ``n`` nodes (clustering coefficient 1)."""
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    edges = [(a, b) for a in range(n) for b in range(a + 1, n)]
    return GraphSnapshot.from_edges(list(range(n)), edges)

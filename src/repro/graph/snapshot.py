"""Compact undirected snapshots of the overlay communication graph.

:class:`GraphSnapshot` stores the undirected topology in CSR form (two numpy
arrays), which keeps the per-cycle metric computations fast enough to trace
10^4-node overlays over hundreds of cycles in pure Python + numpy.

Construction drops edge orientation (paper Section 4.2: "the actual
information flow ... is potentially two-way"), self-loops, and descriptors
pointing at addresses outside the node set (dead links are analysed
separately via :meth:`~repro.simulation.base.BaseEngine.dead_link_count`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.descriptor import Address


def _descriptor_address(entry: object) -> Address:
    """Accept either NodeDescriptor-like objects or raw addresses."""
    return getattr(entry, "address", entry)


class GraphSnapshot:
    """An immutable undirected graph over a fixed set of addresses.

    Instances are produced by the ``from_*`` constructors; the raw CSR
    arrays (:attr:`indptr`, :attr:`indices`) are exposed for vectorized
    consumers such as the metric functions.
    """

    __slots__ = ("addresses", "_index", "indptr", "indices", "_neighbor_sets")

    def __init__(
        self,
        addresses: Sequence[Address],
        indptr: np.ndarray,
        indices: np.ndarray,
    ) -> None:
        self.addresses: List[Address] = list(addresses)
        self._index: Dict[Address, int] = {
            address: i for i, address in enumerate(self.addresses)
        }
        self.indptr = indptr
        self.indices = indices
        self._neighbor_sets: Optional[List[Set[int]]] = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_edge_arrays(
        cls,
        addresses: Sequence[Address],
        src: np.ndarray,
        dst: np.ndarray,
    ) -> "GraphSnapshot":
        """Build from parallel directed-edge index arrays (deduplicating,
        symmetrizing and dropping self-loops)."""
        n = len(addresses)
        if n == 0 or src.size == 0:
            return cls(addresses, np.zeros(n + 1, dtype=np.int64),
                       np.empty(0, dtype=np.int64))
        keep = src != dst
        src = src[keep]
        dst = dst[keep]
        all_src = np.concatenate([src, dst]).astype(np.int64)
        all_dst = np.concatenate([dst, src]).astype(np.int64)
        keys = np.unique(all_src * n + all_dst)
        u = keys // n
        v = keys % n
        counts = np.bincount(u, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(addresses, indptr, v)

    @classmethod
    def from_views(
        cls, views: Mapping[Address, Iterable[object]]
    ) -> "GraphSnapshot":
        """Build from a ``{address: view entries}`` mapping.

        Entries may be :class:`~repro.core.descriptor.NodeDescriptor`
        objects or raw addresses.  Descriptors whose target is not a key of
        ``views`` (dead links) are ignored.
        """
        addresses = list(views)
        index = {address: i for i, address in enumerate(addresses)}
        src: List[int] = []
        dst: List[int] = []
        for address, entries in views.items():
            i = index[address]
            for entry in entries:
                j = index.get(_descriptor_address(entry))
                if j is not None and j != i:
                    src.append(i)
                    dst.append(j)
        return cls.from_edge_arrays(
            addresses,
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
        )

    @classmethod
    def from_engine(cls, engine: object) -> "GraphSnapshot":
        """Build from a simulation engine's current views."""
        return cls.from_views(engine.views())  # type: ignore[attr-defined]

    @classmethod
    def from_adjacency(
        cls, adjacency: Mapping[Address, Iterable[Address]]
    ) -> "GraphSnapshot":
        """Build from a plain adjacency mapping (same dead-link rules)."""
        return cls.from_views(adjacency)

    @classmethod
    def from_edges(
        cls,
        addresses: Sequence[Address],
        edges: Iterable[Tuple[Address, Address]],
    ) -> "GraphSnapshot":
        """Build from an explicit node list and an edge list."""
        index = {address: i for i, address in enumerate(addresses)}
        src: List[int] = []
        dst: List[int] = []
        for a, b in edges:
            i = index.get(a)
            j = index.get(b)
            if i is not None and j is not None and i != j:
                src.append(i)
                dst.append(j)
        return cls.from_edge_arrays(
            list(addresses),
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
        )

    # -- basic accessors -----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.addresses)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def __contains__(self, address: Address) -> bool:
        return address in self._index

    def __repr__(self) -> str:
        return f"GraphSnapshot(n={self.n}, edges={self.edge_count})"

    def index_of(self, address: Address) -> int:
        """The internal index of ``address`` (raises ``KeyError`` if absent)."""
        return self._index[address]

    def neighbors(self, index: int) -> np.ndarray:
        """Neighbor indices of node ``index`` (sorted ascending)."""
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    def neighbors_of(self, address: Address) -> List[Address]:
        """Neighbor addresses of ``address``."""
        return [self.addresses[j] for j in self.neighbors(self._index[address])]

    def degrees(self) -> np.ndarray:
        """Array of undirected degrees, aligned with :attr:`addresses`."""
        return np.diff(self.indptr)

    def degree(self, index: int) -> int:
        """Undirected degree of node ``index``."""
        return int(self.indptr[index + 1] - self.indptr[index])

    def degree_of(self, address: Address) -> int:
        """Undirected degree of ``address``."""
        return self.degree(self._index[address])

    def has_edge(self, a: Address, b: Address) -> bool:
        """Whether an undirected edge connects ``a`` and ``b``."""
        i = self._index[a]
        j = self._index[b]
        row = self.neighbors(i)
        pos = np.searchsorted(row, j)
        return bool(pos < len(row) and row[pos] == j)

    def neighbor_sets(self) -> List[Set[int]]:
        """Per-node neighbor index sets (built once, then cached)."""
        if self._neighbor_sets is None:
            self._neighbor_sets = [
                set(self.neighbors(i).tolist()) for i in range(self.n)
            ]
        return self._neighbor_sets

    # -- derived graphs ---------------------------------------------------------

    def induced_subgraph(self, keep: np.ndarray) -> "GraphSnapshot":
        """The subgraph induced by the boolean node mask ``keep``."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.n,):
            raise ValueError(
                f"mask shape {keep.shape} does not match n={self.n}"
            )
        new_id = np.cumsum(keep) - 1
        kept_addresses = [a for a, k in zip(self.addresses, keep) if k]
        # Expand CSR to COO, filter edges with both endpoints kept.
        src = np.repeat(np.arange(self.n), np.diff(self.indptr))
        dst = self.indices
        mask = keep[src] & keep[dst]
        src = new_id[src[mask]]
        dst = new_id[dst[mask]]
        n_new = len(kept_addresses)
        if n_new == 0 or src.size == 0:
            return GraphSnapshot(
                kept_addresses,
                np.zeros(n_new + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        # Already symmetric and deduplicated; rebuild CSR directly.
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        counts = np.bincount(src, minlength=n_new)
        indptr = np.zeros(n_new + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return GraphSnapshot(kept_addresses, indptr, dst)

    def remove_nodes(self, victims: Iterable[Address]) -> "GraphSnapshot":
        """The subgraph left after deleting ``victims`` and their edges."""
        keep = np.ones(self.n, dtype=bool)
        for address in victims:
            index = self._index.get(address)
            if index is not None:
                keep[index] = False
        return self.induced_subgraph(keep)

    def to_networkx(self):  # pragma: no cover - exercised in dev tests only
        """Convert to a :class:`networkx.Graph` (requires networkx)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.addresses)
        src = np.repeat(np.arange(self.n), np.diff(self.indptr))
        for i, j in zip(src, self.indices):
            if i < j:
                graph.add_edge(self.addresses[i], self.addresses[j])
        return graph

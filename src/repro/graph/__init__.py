"""Graph analysis toolkit for overlay topologies.

The paper evaluates peer sampling implementations through the *communication
topology*: the directed graph whose edge ``(a, b)`` exists when node ``a``
holds a descriptor of node ``b``.  All reported metrics are computed on the
**undirected** version of that graph (paper Section 4.2).

- :class:`~repro.graph.snapshot.GraphSnapshot` -- a compact CSR
  representation of the undirected topology at one instant;
- :mod:`repro.graph.metrics` -- degree statistics, clustering coefficient,
  average path length;
- :mod:`repro.graph.components` -- connectivity and cluster analysis;
- :mod:`repro.graph.generators` -- reference topologies (uniform random
  views, ring lattice, star, Erdos-Renyi);
- :mod:`repro.graph.smallworld` -- small-world indices comparing measured
  topologies against same-size random graphs.
"""

from repro.graph.components import (
    component_sizes,
    is_connected,
    largest_component_size,
    nodes_outside_largest,
    num_components,
)
from repro.graph.generators import (
    erdos_renyi,
    random_view_topology,
    ring_lattice,
    star,
)
from repro.graph.metrics import (
    average_degree,
    average_path_length,
    clustering_coefficient,
    degree_array,
    degree_histogram,
)
from repro.graph.snapshot import GraphSnapshot

__all__ = [
    "GraphSnapshot",
    "average_degree",
    "average_path_length",
    "clustering_coefficient",
    "component_sizes",
    "degree_array",
    "degree_histogram",
    "erdos_renyi",
    "is_connected",
    "largest_component_size",
    "nodes_outside_largest",
    "num_components",
    "random_view_topology",
    "ring_lattice",
    "star",
]

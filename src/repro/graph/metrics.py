"""Topology metrics: the three properties the paper tracks (Section 4.2).

- **degree distribution** (:func:`degree_array`, :func:`degree_histogram`,
  :func:`average_degree`): reliability under failure patterns, epidemic
  spreading speed, communication hot spots;
- **average path length** (:func:`average_path_length`): lower bound on
  dissemination time and cost;
- **clustering coefficient** (:func:`clustering_coefficient`): redundancy
  of dissemination and partitioning risk.

Path lengths use a frontier-based BFS over the CSR arrays (optionally
accelerated by :mod:`scipy.sparse.csgraph` when available); clustering uses
cached neighbor sets.  Both accept a sampling parameter: estimates are
unbiased and the experiment harness uses them at full paper scale, while
tests cross-check the exact paths against networkx.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.snapshot import GraphSnapshot

try:  # scipy is optional at runtime; pure-numpy fallbacks are used without it
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import shortest_path as _sp_shortest_path

    _HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only without scipy
    _HAVE_SCIPY = False


def degree_array(snapshot: GraphSnapshot) -> np.ndarray:
    """Undirected degrees aligned with ``snapshot.addresses``."""
    return snapshot.degrees()


def average_degree(snapshot: GraphSnapshot) -> float:
    """Mean undirected degree (0.0 for the empty graph)."""
    if snapshot.n == 0:
        return 0.0
    return float(2.0 * snapshot.edge_count / snapshot.n)


def degree_histogram(snapshot: GraphSnapshot) -> Dict[int, int]:
    """Mapping ``degree -> number of nodes`` (only non-empty bins)."""
    degrees = snapshot.degrees()
    if degrees.size == 0:
        return {}
    counts = np.bincount(degrees)
    return {int(d): int(c) for d, c in enumerate(counts) if c > 0}


# -- clustering ----------------------------------------------------------------


def local_clustering(snapshot: GraphSnapshot, index: int) -> float:
    """Clustering coefficient of one node.

    The number of edges between the node's neighbors divided by the number
    of possible edges between them; 0.0 for degree < 2 (the convention
    networkx uses as well).
    """
    neighbor_sets = snapshot.neighbor_sets()
    neighbors = snapshot.neighbors(index)
    k = len(neighbors)
    if k < 2:
        return 0.0
    mine = neighbor_sets[index]
    links = 0
    for j in neighbors:
        links += len(neighbor_sets[j] & mine)
    # Each edge among neighbors was counted twice.
    return links / (k * (k - 1))


def clustering_coefficient(
    snapshot: GraphSnapshot,
    sample: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> float:
    """Average clustering coefficient of the graph.

    Parameters
    ----------
    sample:
        When given and smaller than ``n``, the unweighted average is
        estimated from that many uniformly sampled nodes (without
        replacement) -- an unbiased estimator of the exact average.
    rng:
        RNG for sampling (a fresh seeded one is created if omitted).
    """
    n = snapshot.n
    if n == 0:
        return 0.0
    if sample is not None and sample < n:
        if rng is None:
            rng = random.Random(0)
        nodes = rng.sample(range(n), sample)
    else:
        nodes = range(n)
    total = 0.0
    count = 0
    for index in nodes:
        total += local_clustering(snapshot, index)
        count += 1
    return total / count if count else 0.0


# -- path lengths ----------------------------------------------------------------


def bfs_distances(snapshot: GraphSnapshot, source: int) -> np.ndarray:
    """Hop distances from ``source`` to every node (-1 when unreachable)."""
    n = snapshot.n
    indptr = snapshot.indptr
    indices = snapshot.indices
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        if frontier.size == 1:
            v = frontier[0]
            candidates = indices[indptr[v] : indptr[v + 1]]
        else:
            candidates = np.concatenate(
                [indices[indptr[v] : indptr[v + 1]] for v in frontier]
            )
        candidates = candidates[dist[candidates] < 0]
        if candidates.size == 0:
            break
        frontier = np.unique(candidates)
        dist[frontier] = depth
    return dist


def average_path_length(
    snapshot: GraphSnapshot,
    n_sources: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> float:
    """Mean shortest-path length over reachable ordered pairs.

    Parameters
    ----------
    n_sources:
        When given and smaller than ``n``, path lengths are averaged over
        BFS trees rooted at that many uniformly sampled sources -- an
        unbiased estimator of the all-pairs average.
    rng:
        RNG for source sampling.

    Notes
    -----
    Unreachable pairs are excluded from the average (the converged overlays
    the paper measures are connected, so this matches its definition; for a
    partitioned graph the value is the within-component average).  Returns
    ``nan`` for graphs with fewer than 2 nodes or no edges.
    """
    n = snapshot.n
    if n < 2 or snapshot.edge_count == 0:
        return float("nan")
    if n_sources is not None and n_sources < n:
        if rng is None:
            rng = random.Random(0)
        sources = rng.sample(range(n), n_sources)
    else:
        sources = list(range(n))
    if _HAVE_SCIPY:
        matrix = _csr_matrix(
            (
                np.ones(len(snapshot.indices), dtype=np.int8),
                snapshot.indices,
                snapshot.indptr,
            ),
            shape=(n, n),
        )
        dists = _sp_shortest_path(
            matrix, method="D", unweighted=True, directed=False, indices=sources
        )
        finite = np.isfinite(dists)
        finite &= dists > 0
        total = float(dists[finite].sum())
        pairs = int(finite.sum())
    else:
        total = 0.0
        pairs = 0
        for source in sources:
            dist = bfs_distances(snapshot, source)
            reachable = dist > 0
            total += float(dist[reachable].sum())
            pairs += int(reachable.sum())
    if pairs == 0:
        return float("nan")
    return total / pairs


def path_length_histogram(
    snapshot: GraphSnapshot,
    n_sources: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Dict[int, int]:
    """Histogram ``distance -> count`` over (sampled) ordered pairs."""
    n = snapshot.n
    if n < 2:
        return {}
    if n_sources is not None and n_sources < n:
        if rng is None:
            rng = random.Random(0)
        sources = rng.sample(range(n), n_sources)
    else:
        sources = list(range(n))
    histogram: Dict[int, int] = {}
    for source in sources:
        dist = bfs_distances(snapshot, source)
        positive = dist[dist > 0]
        for value, count in zip(*np.unique(positive, return_counts=True)):
            histogram[int(value)] = histogram.get(int(value), 0) + int(count)
    return histogram


def estimated_diameter(
    snapshot: GraphSnapshot,
    n_sources: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> int:
    """Largest BFS eccentricity over (sampled) sources; lower bound on the
    true diameter when sampling."""
    n = snapshot.n
    if n < 2:
        return 0
    if n_sources is not None and n_sources < n:
        if rng is None:
            rng = random.Random(0)
        sources = rng.sample(range(n), n_sources)
    else:
        sources = list(range(n))
    best = 0
    for source in sources:
        dist = bfs_distances(snapshot, source)
        if dist.size:
            best = max(best, int(dist.max()))
    return best


def degree_statistics(snapshot: GraphSnapshot) -> Tuple[float, float, int, int]:
    """Convenience: ``(mean, std, min, max)`` of the degree distribution."""
    degrees = snapshot.degrees()
    if degrees.size == 0:
        return 0.0, 0.0, 0, 0
    return (
        float(degrees.mean()),
        float(degrees.std()),
        int(degrees.min()),
        int(degrees.max()),
    )

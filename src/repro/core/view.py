"""Partial views: bounded, hop-count-ordered membership tables.

Paper Section 3 ("System model") defines the view as "a list with at most
one descriptor per node and ordered according to increasing hop count".
This module implements that list together with the two primitive operations
the protocol skeleton needs:

- :func:`merge` -- the paper's ``merge(view1, view2)``: the union of two
  descriptor collections, keeping for each address only the descriptor with
  the lowest hop count, re-ordered by increasing hop count.
- the three *view selection* truncations (``head`` / ``tail`` / ``rand``)
  that cut a merge buffer back to the view capacity ``c``.

Ordering note: hop counts are not necessarily distinct, so "the first c
elements" is not uniquely defined by the ordering alone (the paper makes the
same observation).  We use a stable sort, which makes the outcome
deterministic given the merge input order.
"""

from __future__ import annotations

import random
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
)

from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ViewError


def _by_hop_count(descriptor: NodeDescriptor) -> int:
    return descriptor.hop_count


def merge(
    *collections: Iterable[NodeDescriptor],
    exclude: Optional[Address] = None,
) -> List[NodeDescriptor]:
    """Merge descriptor collections into a single hop-count-ordered buffer.

    For each address the descriptor with the **lowest** hop count wins; on an
    exact hop-count tie the earliest occurrence wins.  The result is sorted
    by increasing hop count (stable, so first-seen order breaks ties).

    Parameters
    ----------
    collections:
        Any number of descriptor iterables.  Earlier collections take
        precedence on ties, matching the paper's ``merge(viewp, view)``
        argument order.
    exclude:
        Optional address to drop from the result.  Nodes pass their own
        address here so that self-descriptors never enter their view.

    Returns
    -------
    list[NodeDescriptor]
        A new buffer; the input descriptors themselves are *not* copied, so
        callers that need independent storage must copy first.
    """
    best: Dict[Address, NodeDescriptor] = {}
    for collection in collections:
        for descriptor in collection:
            address = descriptor.address
            if address == exclude:
                continue
            current = best.get(address)
            if current is None or descriptor.hop_count < current.hop_count:
                best[address] = descriptor
    buffer = list(best.values())
    buffer.sort(key=_by_hop_count)
    return buffer


def apply_healer_swapper(
    buffer: List[NodeDescriptor],
    c: int,
    healer: int,
    swapper: int,
    own: AbstractSet[int],
) -> List[NodeDescriptor]:
    """Apply the TOCS-2007-style ``H``/``S`` pre-truncation to a merge buffer.

    ``buffer`` must be a hop-count-ordered merge result (the output of
    :func:`merge`).  When it overflows the capacity ``c``:

    1. *healer* -- drop ``min(H, overflow)`` descriptors with the highest
       hop count (the tail of the sorted buffer): stale entries, among them
       dead links, are healed away first;
    2. *swapper* -- drop ``min(S, remaining overflow)`` descriptors that
       survived from the node's own previous view, freshest first.  ``own``
       is the set of ``id()`` values of the pre-merge view's descriptor
       objects; :func:`merge` keeps an own-view object exactly when the own
       copy of an address is strictly fresher than the received one (or the
       address was not received at all), so object identity decides origin.

    The buffer is never cut below ``c`` entries; the regular view-selection
    truncation runs afterwards.  With ``H == S == 0`` the input is returned
    unchanged, reproducing the Middleware 2004 protocol exactly.
    """
    surplus = len(buffer) - c
    if surplus <= 0 or (healer <= 0 and swapper <= 0):
        return buffer
    if healer > 0:
        drop = min(healer, surplus)
        del buffer[len(buffer) - drop:]
        surplus -= drop
    if surplus > 0 and swapper > 0:
        to_drop = min(swapper, surplus)
        kept: List[NodeDescriptor] = []
        for descriptor in buffer:
            if to_drop and id(descriptor) in own:
                to_drop -= 1
            else:
                kept.append(descriptor)
        buffer = kept
    return buffer


def select_head(buffer: Sequence[NodeDescriptor], c: int) -> List[NodeDescriptor]:
    """Keep the first ``c`` elements: the lowest (freshest) hop counts."""
    return list(buffer[:c])


def select_tail(buffer: Sequence[NodeDescriptor], c: int) -> List[NodeDescriptor]:
    """Keep the last ``c`` elements: the highest (oldest) hop counts."""
    if len(buffer) <= c:
        return list(buffer)
    return list(buffer[len(buffer) - c :])


def select_rand(
    buffer: Sequence[NodeDescriptor], c: int, rng: random.Random
) -> List[NodeDescriptor]:
    """Keep a uniform random subset of ``c`` elements, re-ordered by hop count."""
    if len(buffer) <= c:
        return list(buffer)
    chosen = rng.sample(list(buffer), c)
    chosen.sort(key=_by_hop_count)
    return chosen


class PartialView:
    """A node's bounded membership table (the paper's *view*).

    Invariants maintained by every public mutator:

    - at most :attr:`capacity` descriptors;
    - at most one descriptor per address;
    - entries ordered by non-decreasing hop count.

    The view does not know its owner's address; callers are responsible for
    excluding self-descriptors (the :class:`~repro.core.protocol.GossipNode`
    does this via the ``exclude`` argument of :func:`merge`).
    """

    __slots__ = ("capacity", "_entries")

    def __init__(
        self,
        capacity: int,
        entries: Iterable[NodeDescriptor] = (),
    ) -> None:
        if capacity < 1:
            raise ViewError(f"view capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        merged = merge(entries)
        if len(merged) > capacity:
            raise ViewError(
                f"{len(merged)} distinct descriptors exceed capacity {capacity}"
            )
        self._entries: List[NodeDescriptor] = merged

    # -- read access ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[NodeDescriptor]:
        return iter(self._entries)

    def __contains__(self, address: Address) -> bool:
        return any(d.address == address for d in self._entries)

    def __repr__(self) -> str:
        return f"PartialView(capacity={self.capacity}, size={len(self._entries)})"

    @property
    def entries(self) -> List[NodeDescriptor]:
        """The current descriptors, ordered by increasing hop count.

        The returned list is a shallow copy; mutating it does not affect the
        view (but mutating the descriptors inside it would -- copy them via
        :func:`repro.core.descriptor.copy_all` if needed).
        """
        return list(self._entries)

    def addresses(self) -> List[Address]:
        """All addresses currently in the view, in hop-count order."""
        return [d.address for d in self._entries]

    def descriptor_for(self, address: Address) -> Optional[NodeDescriptor]:
        """The descriptor stored for ``address``, or ``None``."""
        for descriptor in self._entries:
            if descriptor.address == address:
                return descriptor
        return None

    def is_full(self) -> bool:
        """Whether the view holds ``capacity`` descriptors."""
        return len(self._entries) >= self.capacity

    def head(self) -> Optional[NodeDescriptor]:
        """The descriptor with the lowest hop count, or ``None`` if empty."""
        return self._entries[0] if self._entries else None

    def tail(self) -> Optional[NodeDescriptor]:
        """The descriptor with the highest hop count, or ``None`` if empty."""
        return self._entries[-1] if self._entries else None

    def random_entry(self, rng: random.Random) -> Optional[NodeDescriptor]:
        """A uniformly random descriptor, or ``None`` if empty."""
        if not self._entries:
            return None
        return rng.choice(self._entries)

    # -- mutation ---------------------------------------------------------

    def replace(self, entries: Iterable[NodeDescriptor]) -> None:
        """Adopt ``entries`` as the new view content.

        The entries are deduplicated, hop-count ordered and must fit the
        capacity (callers truncate with a view-selection policy first).
        """
        merged = merge(entries)
        if len(merged) > self.capacity:
            raise ViewError(
                f"{len(merged)} descriptors exceed view capacity {self.capacity}"
            )
        self._entries = merged

    def increase_hop_counts(self) -> None:
        """Increment every stored descriptor's hop count in place."""
        for descriptor in self._entries:
            descriptor.hop_count += 1

    def remove(self, address: Address) -> bool:
        """Drop the descriptor for ``address``; return whether it existed."""
        for index, descriptor in enumerate(self._entries):
            if descriptor.address == address:
                del self._entries[index]
                return True
        return False

    def clear(self) -> None:
        """Remove every descriptor."""
        self._entries.clear()

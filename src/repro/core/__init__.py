"""Core protocol framework: the paper's primary contribution.

This package implements the generic gossip-based peer sampling skeleton of
paper Figure 1 together with its three policy dimensions, plus the
two-method service API (``init`` / ``get_peer``) defined in paper Section 2.
"""

from repro.core.config import (
    ALL_PROTOCOLS,
    STUDIED_PROTOCOLS,
    ProtocolConfig,
    lpbcast,
    newscast,
)
from repro.core.descriptor import NodeDescriptor
from repro.core.policies import PeerSelection, Propagation, ViewSelection
from repro.core.protocol import GossipNode
from repro.core.service import PeerSamplingService
from repro.core.view import PartialView, merge

__all__ = [
    "ALL_PROTOCOLS",
    "STUDIED_PROTOCOLS",
    "GossipNode",
    "NodeDescriptor",
    "PartialView",
    "PeerSamplingService",
    "PeerSelection",
    "Propagation",
    "ProtocolConfig",
    "ViewSelection",
    "lpbcast",
    "merge",
    "newscast",
]

"""Exception hierarchy for the peer sampling library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid protocol or simulation configuration was supplied."""


class ViewError(ReproError):
    """An operation on a partial view violated one of its invariants."""


class NodeNotFoundError(ReproError):
    """An operation referenced a node address unknown to the engine."""

    def __init__(self, address: object) -> None:
        super().__init__(f"unknown node address: {address!r}")
        self.address = address


class NotInitializedError(ReproError):
    """The peer sampling service was used before ``init()`` was called."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class PlanExecutionError(ReproError):
    """A plan cell failed to execute.

    Raised by :func:`repro.workloads.run_plan` when a cell errors (the
    failing cell is named, the original exception chained as
    ``__cause__``), when a worker process dies (which breaks every
    outstanding cell at once, so the message reports the unfinished
    count rather than guessing a victim), or when the plan exceeds its
    ``timeout``.
    """

"""The three policy dimensions of the generic protocol (paper Section 3).

Each gossip-based peer sampling instance is a point in a three-dimensional
design space:

- **peer selection** (:class:`PeerSelection`): which view entry to open an
  exchange with -- uniformly random, the freshest (``head``, lowest hop
  count) or the oldest (``tail``, highest hop count);
- **view selection** (:class:`ViewSelection`): which ``c`` descriptors
  survive when a merge buffer is truncated back to the view capacity;
- **view propagation** (:class:`Propagation`): whether views travel from the
  initiator to the selected peer (``push``), the other way (``pull``) or
  both ways (``pushpull``).

The enums carry their paper names as values so that protocol labels such as
``(rand,head,pushpull)`` round-trip exactly.
"""

from __future__ import annotations

import enum
import random
from typing import List, Optional, Sequence

from repro.core.descriptor import NodeDescriptor
from repro.core.view import PartialView, select_head, select_rand, select_tail


class PeerSelection(str, enum.Enum):
    """How the active thread picks the exchange partner from its view."""

    RAND = "rand"
    HEAD = "head"
    TAIL = "tail"

    def select(
        self, view: PartialView, rng: random.Random
    ) -> Optional[NodeDescriptor]:
        """Pick a descriptor from ``view`` according to this policy.

        Returns ``None`` when the view is empty (a node with no known peers
        skips its turn; the paper's ``getPeer`` contract only requires a
        result when the group has more than one member).
        """
        if self is PeerSelection.RAND:
            return view.random_entry(rng)
        if self is PeerSelection.HEAD:
            return view.head()
        return view.tail()

    def select_from(
        self, entries: Sequence[NodeDescriptor], rng: random.Random
    ) -> Optional[NodeDescriptor]:
        """Pick from an explicit hop-count-ordered candidate list.

        Used when peer selection is restricted to a subset of the view
        (the paper specifies that ``selectPeer()`` "returns the address of
        a *live* node as found in the caller's current view", so engines
        filter out entries of crashed nodes before selecting).
        """
        if not entries:
            return None
        if self is PeerSelection.RAND:
            return rng.choice(entries)
        if self is PeerSelection.HEAD:
            return entries[0]
        return entries[-1]


class ViewSelection(str, enum.Enum):
    """How a merge buffer is truncated back to the view capacity ``c``."""

    RAND = "rand"
    HEAD = "head"
    TAIL = "tail"

    def select(
        self,
        buffer: Sequence[NodeDescriptor],
        c: int,
        rng: random.Random,
    ) -> List[NodeDescriptor]:
        """Keep at most ``c`` descriptors of ``buffer`` under this policy."""
        if self is ViewSelection.RAND:
            return select_rand(buffer, c, rng)
        if self is ViewSelection.HEAD:
            return select_head(buffer, c)
        return select_tail(buffer, c)


class Propagation(str, enum.Enum):
    """Direction(s) in which view content travels during one exchange."""

    PUSH = "push"
    PULL = "pull"
    PUSHPULL = "pushpull"

    @property
    def push(self) -> bool:
        """Whether the initiator sends its view to the selected peer."""
        return self in (Propagation.PUSH, Propagation.PUSHPULL)

    @property
    def pull(self) -> bool:
        """Whether the initiator receives the selected peer's view."""
        return self in (Propagation.PULL, Propagation.PUSHPULL)


def parse_peer_selection(name: str) -> PeerSelection:
    """Parse a peer selection policy from its paper name."""
    return PeerSelection(name.strip().lower())


def parse_view_selection(name: str) -> ViewSelection:
    """Parse a view selection policy from its paper name."""
    return ViewSelection(name.strip().lower())


def parse_propagation(name: str) -> Propagation:
    """Parse a propagation mode from its paper name.

    Accepts the paper's ``pushpull`` as well as the common ``push-pull``
    spelling.
    """
    return Propagation(name.strip().lower().replace("-", "").replace("_", ""))

"""Node descriptors: the unit of membership information.

A *node descriptor* (paper Section 3, "System model") couples a node's
address with a **hop count**.  A freshly injected descriptor has hop count 0;
every time a view crosses the network the hop counts of all its descriptors
are incremented by one (``increaseHopCount`` in the paper's skeleton).  The
hop count therefore measures how long ago -- in gossip exchanges -- the
descriptor's owner was known to be alive, and it induces the ordering that
the ``head``/``tail`` policies rely on.

Addresses are opaque hashable values.  The simulation engines use small
integers for speed, but nothing in this module depends on that.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, List

Address = Hashable
"""Type alias for node addresses: any hashable value."""


class NodeDescriptor:
    """An ``(address, hop_count)`` pair describing one known peer.

    Instances are small mutable records: the hop count is incremented in
    place when a message is received (the receiving side owns the message
    payload; see :meth:`copy` for the ownership contract).

    Parameters
    ----------
    address:
        The address of the described node.
    hop_count:
        Age of the descriptor in network hops.  ``0`` means "created by the
        described node in the current exchange".
    """

    __slots__ = ("address", "hop_count")

    def __init__(self, address: Address, hop_count: int = 0) -> None:
        if hop_count < 0:
            raise ValueError(f"hop_count must be >= 0, got {hop_count}")
        self.address = address
        self.hop_count = hop_count

    def copy(self) -> "NodeDescriptor":
        """Return an independent copy of this descriptor.

        Views copy descriptors whenever they are placed in a message buffer,
        so that the sender's view and the in-flight message never share
        mutable state.  The receiver then owns the payload and may increment
        hop counts in place.
        """
        return NodeDescriptor(self.address, self.hop_count)

    def aged(self, increment: int = 1) -> "NodeDescriptor":
        """Return a copy of this descriptor with an incremented hop count."""
        return NodeDescriptor(self.address, self.hop_count + increment)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, NodeDescriptor):
            return NotImplemented
        return self.address == other.address and self.hop_count == other.hop_count

    def __hash__(self) -> int:
        return hash((self.address, self.hop_count))

    def __repr__(self) -> str:
        return f"NodeDescriptor({self.address!r}, hop_count={self.hop_count})"


def increase_hop_count(descriptors: Iterable[NodeDescriptor]) -> None:
    """Increment the hop count of every descriptor, in place.

    This is the paper's ``increaseHopCount(view)`` call, applied by the
    receiving side to every incoming view before merging it.
    """
    for descriptor in descriptors:
        descriptor.hop_count += 1


def copy_all(descriptors: Iterable[NodeDescriptor]) -> List[NodeDescriptor]:
    """Return independent copies of ``descriptors`` (message serialization)."""
    return [d.copy() for d in descriptors]

"""Wire codec: serialize descriptors and view messages.

The simulation engines pass descriptor objects by reference, but a real
deployment ships views over the network.  This module defines a compact,
versioned JSON wire format for the two message kinds of the protocol
skeleton (requests and replies are both just descriptor lists), so the
library's node logic can be dropped behind a real transport.

Addresses are serialized as-is when they are JSON-native (str/int) and
tagged otherwise via ``repr`` round-tripping is deliberately NOT attempted:
unsupported address types raise :class:`~repro.core.errors.ReproError`
rather than silently producing undecodable bytes.
"""

from __future__ import annotations

import json
from typing import List

from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ReproError

WIRE_FORMAT_VERSION = 1
"""Bumped on any incompatible change to the wire layout."""

_MAX_MESSAGE_BYTES = 1 << 20  # 1 MiB: a view message is a few KiB at most


class CodecError(ReproError):
    """A message could not be encoded or decoded."""


def _check_address(address: Address) -> Address:
    if isinstance(address, (str, int)):
        return address
    raise CodecError(
        f"address {address!r} is not wire-serializable (need str or int)"
    )


def encode_descriptor(descriptor: NodeDescriptor) -> List:
    """One descriptor as a compact ``[address, hop_count]`` pair."""
    return [_check_address(descriptor.address), descriptor.hop_count]


def decode_descriptor(payload: object) -> NodeDescriptor:
    """Inverse of :func:`encode_descriptor` (validating the payload)."""
    if (
        not isinstance(payload, list)
        or len(payload) != 2
        or not isinstance(payload[0], (str, int))
        or not isinstance(payload[1], int)
        or payload[1] < 0
    ):
        raise CodecError(f"malformed descriptor payload: {payload!r}")
    return NodeDescriptor(payload[0], payload[1])


def encode_message(descriptors: List[NodeDescriptor]) -> bytes:
    """A full view message (request or reply) as UTF-8 JSON bytes."""
    body = {
        "v": WIRE_FORMAT_VERSION,
        "view": [encode_descriptor(d) for d in descriptors],
    }
    return json.dumps(body, separators=(",", ":")).encode("utf-8")


def decode_message(data: bytes) -> List[NodeDescriptor]:
    """Inverse of :func:`encode_message` (validating version and shape)."""
    if len(data) > _MAX_MESSAGE_BYTES:
        raise CodecError(f"message of {len(data)} bytes exceeds the limit")
    try:
        body = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable message: {exc}") from exc
    if not isinstance(body, dict):
        raise CodecError("message body must be an object")
    if body.get("v") != WIRE_FORMAT_VERSION:
        raise CodecError(
            f"unsupported wire format version: {body.get('v')!r}"
        )
    view = body.get("view")
    if not isinstance(view, list):
        raise CodecError("message is missing its view list")
    return [decode_descriptor(entry) for entry in view]

"""Wire codec: serialize descriptors and view messages.

The simulation engines pass descriptor objects by reference, but a real
deployment ships views over the network (see :mod:`repro.net`).  This
module defines two versioned wire formats for the two message kinds of the
protocol skeleton (requests and replies are both just descriptor lists):

- **v1** -- compact UTF-8 JSON, ``{"v": 1, "view": [[addr, hops], ...]}``.
  Human-readable, schema-stable; kept decodable forever so heterogeneous
  deployments can always fall back to it.
- **v2** -- struct-packed binary frames (magic byte + version + entry
  list).  Roughly 2-4x smaller than v1 for typical views and much cheaper
  to parse; the default on-the-wire format of the :mod:`repro.net` daemon.

:func:`decode_frame` sniffs the version from the first byte, so a receiver
accepts both formats transparently and can answer in whichever version the
request used -- that is the whole version-negotiation scheme: *reply in the
version you were asked in* (see ``GossipDaemon``).

Either format can additionally be wrapped in a **signed frame** (magic
byte :data:`SIGNED_MAGIC` + truncated HMAC-SHA256 tag + inner frame;
:func:`encode_signed_message` / :func:`decode_signed_frame`) when a
deployment shares a pre-distributed symmetric key -- the keyed daemon
drops unsigned and unverifiable datagrams, which shuts wire-level
descriptor forgery out entirely.

Addresses are serialized as-is when they are wire-native (str/int);
unsupported address types raise :class:`CodecError` rather than silently
producing undecodable bytes.  Size limits are enforced symmetrically: an
oversized message raises on *encode* (before it ever leaves the node) as
well as on decode.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import struct
from typing import List, NamedTuple, Tuple

from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ReproError

WIRE_FORMAT_VERSION = 1
"""The JSON wire format (bumped on any incompatible change to its layout)."""

WIRE_FORMAT_V2 = 2
"""The binary struct-packed wire format."""

SUPPORTED_WIRE_VERSIONS = (WIRE_FORMAT_VERSION, WIRE_FORMAT_V2)
"""Every version :func:`decode_frame` accepts."""

MAX_MESSAGE_BYTES = 1 << 20  # 1 MiB: a view message is a few KiB at most
"""Hard cap applied on both encode and decode."""

_MAX_MESSAGE_BYTES = MAX_MESSAGE_BYTES  # backwards-compatible alias

V2_MAGIC = 0x97
"""First byte of every v2 frame.

Deliberately outside printable ASCII (and invalid as a UTF-8 start byte of
any JSON document), so v1 and v2 frames can never be confused.
"""

_V2_HEADER = struct.Struct("!BBH")  # magic, version, entry count
_V2_INT_ENTRY = struct.Struct("!BqI")  # tag 0, int64 address, hop count
_V2_STR_HEAD = struct.Struct("!BH")  # tag 1, utf-8 byte length
_V2_HOPS = struct.Struct("!I")

_MAX_HOPS = (1 << 32) - 1
_MAX_STR_BYTES = (1 << 16) - 1
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class CodecError(ReproError):
    """A message could not be encoded or decoded."""


class AuthenticationError(CodecError):
    """A signed frame failed authentication (bad or truncated tag).

    Distinct from plain :class:`CodecError` so receivers can count
    authentication failures separately from garbled frames -- the former
    are a security signal, the latter usually just noise."""


def _check_address(address: Address) -> Address:
    if isinstance(address, (str, int)) and not isinstance(address, bool):
        return address
    raise CodecError(
        f"address {address!r} is not wire-serializable (need str or int)"
    )


def encode_descriptor(descriptor: NodeDescriptor) -> List:
    """One descriptor as a compact ``[address, hop_count]`` pair (v1)."""
    return [_check_address(descriptor.address), descriptor.hop_count]


def decode_descriptor(payload: object) -> NodeDescriptor:
    """Inverse of :func:`encode_descriptor` (validating the payload)."""
    if (
        not isinstance(payload, list)
        or len(payload) != 2
        or not isinstance(payload[0], (str, int))
        or isinstance(payload[0], bool)
        or not isinstance(payload[1], int)
        or isinstance(payload[1], bool)
        or payload[1] < 0
    ):
        raise CodecError(f"malformed descriptor payload: {payload!r}")
    return NodeDescriptor(payload[0], payload[1])


# -- v1: JSON ----------------------------------------------------------------


def _encode_v1(descriptors: List[NodeDescriptor]) -> bytes:
    body = {
        "v": WIRE_FORMAT_VERSION,
        "view": [encode_descriptor(d) for d in descriptors],
    }
    return json.dumps(body, separators=(",", ":")).encode("utf-8")


def _decode_v1(data: bytes) -> List[NodeDescriptor]:
    try:
        body = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        # json.JSONDecodeError subclasses ValueError; catching the base
        # class guarantees malformed input never leaks a non-CodecError.
        raise CodecError(f"undecodable message: {exc}") from exc
    if not isinstance(body, dict):
        raise CodecError("message body must be an object")
    if body.get("v") != WIRE_FORMAT_VERSION:
        raise CodecError(
            f"unsupported wire format version: {body.get('v')!r}"
        )
    view = body.get("view")
    if not isinstance(view, list):
        raise CodecError("message is missing its view list")
    return [decode_descriptor(entry) for entry in view]


# -- v2: struct-packed binary ------------------------------------------------


def _encode_v2(descriptors: List[NodeDescriptor]) -> bytes:
    if len(descriptors) > 0xFFFF:
        raise CodecError(f"{len(descriptors)} descriptors exceed a v2 frame")
    parts = [_V2_HEADER.pack(V2_MAGIC, WIRE_FORMAT_V2, len(descriptors))]
    for descriptor in descriptors:
        address = _check_address(descriptor.address)
        hops = descriptor.hop_count
        if not 0 <= hops <= _MAX_HOPS:
            raise CodecError(f"hop count {hops} not encodable in v2")
        if isinstance(address, int):
            if not _INT64_MIN <= address <= _INT64_MAX:
                raise CodecError(
                    f"integer address {address} exceeds 64 bits"
                )
            parts.append(_V2_INT_ENTRY.pack(0, address, hops))
        else:
            raw = address.encode("utf-8")
            if len(raw) > _MAX_STR_BYTES:
                raise CodecError(
                    f"address of {len(raw)} utf-8 bytes exceeds v2 limit"
                )
            parts.append(_V2_STR_HEAD.pack(1, len(raw)))
            parts.append(raw)
            parts.append(_V2_HOPS.pack(hops))
    return b"".join(parts)


def _decode_v2(data: bytes) -> List[NodeDescriptor]:
    try:
        magic, version, count = _V2_HEADER.unpack_from(data, 0)
    except struct.error as exc:
        raise CodecError(f"truncated v2 header: {exc}") from exc
    if magic != V2_MAGIC:
        raise CodecError(f"bad v2 magic byte: {magic:#x}")
    if version != WIRE_FORMAT_V2:
        raise CodecError(f"unsupported wire format version: {version}")
    offset = _V2_HEADER.size
    descriptors: List[NodeDescriptor] = []
    try:
        for _ in range(count):
            tag = data[offset]
            if tag == 0:
                _, address, hops = _V2_INT_ENTRY.unpack_from(data, offset)
                offset += _V2_INT_ENTRY.size
            elif tag == 1:
                _, length = _V2_STR_HEAD.unpack_from(data, offset)
                offset += _V2_STR_HEAD.size
                raw = data[offset : offset + length]
                if len(raw) != length:
                    raise CodecError("truncated v2 string address")
                address = raw.decode("utf-8")
                offset += length
                (hops,) = _V2_HOPS.unpack_from(data, offset)
                offset += _V2_HOPS.size
            else:
                raise CodecError(f"unknown v2 address tag: {tag}")
            descriptors.append(NodeDescriptor(address, hops))
    except (struct.error, IndexError) as exc:
        raise CodecError(f"truncated v2 frame: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise CodecError(f"undecodable v2 address: {exc}") from exc
    if offset != len(data):
        raise CodecError(
            f"{len(data) - offset} trailing bytes after v2 frame"
        )
    return descriptors


# -- signed frames: HMAC-wrapped v1/v2 ---------------------------------------
#
# A signed frame is one byte of magic, a truncated HMAC-SHA256 tag over
# the inner frame, then an ordinary v1/v2 gossip frame.  The signature
# wraps the *transport bytes* only: protocol state and RNG consumption
# are untouched, which is what keeps a keyed live run byte-identical to
# the unkeyed one (and to the cycle engines).

SIGNED_MAGIC = 0x9E
"""First byte of every signed frame.

Outside printable ASCII, invalid as a UTF-8 start byte, and distinct
from :data:`V2_MAGIC` and :data:`CONTROL_MAGIC`, so all four frame
families are mutually unmistakable from their first byte."""

SIGNATURE_BYTES = 16
"""Truncated HMAC-SHA256 tag length.  128 bits of MAC strength -- far
beyond what a gossip overlay needs to reject forged descriptors."""

_SIGNED_OVERHEAD = 1 + SIGNATURE_BYTES


def _signature(key: bytes, inner: bytes) -> bytes:
    return hmac.new(key, inner, hashlib.sha256).digest()[:SIGNATURE_BYTES]


def is_signed_frame(data: bytes) -> bool:
    """Whether ``data`` starts like a signed frame (cheap demux check)."""
    return len(data) > 0 and data[0] == SIGNED_MAGIC


def encode_signed_message(
    descriptors: List[NodeDescriptor],
    key: bytes,
    version: int = WIRE_FORMAT_VERSION,
) -> bytes:
    """A view message wrapped in a truncated HMAC-SHA256 signature.

    The inner frame is exactly what :func:`encode_message` produces for
    the same arguments; signing is deterministic and draw-free.
    """
    if not isinstance(key, (bytes, bytearray)) or not key:
        raise CodecError("signing key must be non-empty bytes")
    inner = encode_message(descriptors, version=version)
    frame = bytes((SIGNED_MAGIC,)) + _signature(bytes(key), inner) + inner
    if len(frame) > MAX_MESSAGE_BYTES:
        raise CodecError(
            f"signed message of {len(frame)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit"
        )
    return frame


def decode_signed_frame(
    data: bytes, key: bytes
) -> Tuple[int, List[NodeDescriptor]]:
    """Verify and decode a signed frame; return ``(inner_version, view)``.

    Raises :class:`AuthenticationError` when the frame is not signed at
    all, is too short to carry a tag, or its tag does not verify
    (constant-time comparison); inner-frame defects raise plain
    :class:`CodecError` like :func:`decode_frame` would.
    """
    if not isinstance(key, (bytes, bytearray)) or not key:
        raise CodecError("verification key must be non-empty bytes")
    if len(data) > MAX_MESSAGE_BYTES:
        raise CodecError(f"message of {len(data)} bytes exceeds the limit")
    if not data or data[0] != SIGNED_MAGIC:
        raise AuthenticationError("frame is not signed")
    if len(data) < _SIGNED_OVERHEAD + 1:
        raise AuthenticationError("signed frame too short to verify")
    tag = bytes(data[1:_SIGNED_OVERHEAD])
    inner = bytes(data[_SIGNED_OVERHEAD:])
    if not hmac.compare_digest(tag, _signature(bytes(key), inner)):
        raise AuthenticationError("signed frame failed verification")
    return decode_frame(inner)


# -- public entry points -----------------------------------------------------


def encode_message(
    descriptors: List[NodeDescriptor],
    version: int = WIRE_FORMAT_VERSION,
) -> bytes:
    """A full view message (request or reply) in the given wire version.

    The default stays v1 (JSON) for compatibility with existing consumers;
    the networked daemon passes ``version=WIRE_FORMAT_V2`` explicitly.
    Raises :class:`CodecError` for unknown versions and for messages that
    would exceed :data:`MAX_MESSAGE_BYTES` -- the cap is enforced on encode
    so an oversized frame is rejected before it ever reaches a socket.
    """
    if version == WIRE_FORMAT_VERSION:
        data = _encode_v1(descriptors)
    elif version == WIRE_FORMAT_V2:
        data = _encode_v2(descriptors)
    else:
        raise CodecError(f"unsupported wire format version: {version!r}")
    if len(data) > MAX_MESSAGE_BYTES:
        raise CodecError(
            f"encoded message of {len(data)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit"
        )
    return data


def decode_frame(data: bytes) -> Tuple[int, List[NodeDescriptor]]:
    """Decode a message of either version; return ``(version, view)``.

    The version is sniffed from the first byte (:data:`V2_MAGIC` cannot
    start a JSON document), which is what lets a receiver accept both
    formats and reply in the sender's version (version negotiation).
    """
    if len(data) > MAX_MESSAGE_BYTES:
        raise CodecError(f"message of {len(data)} bytes exceeds the limit")
    if not data:
        raise CodecError("empty message")
    if data[0] == V2_MAGIC:
        return WIRE_FORMAT_V2, _decode_v2(data)
    if data[0] == SIGNED_MAGIC:
        # An unkeyed receiver cannot verify a signed frame; refusing to
        # peek inside keeps "drop unverifiable traffic" the only policy.
        raise CodecError(
            "signed frame received without a verification key "
            "(use decode_signed_frame)"
        )
    return WIRE_FORMAT_VERSION, _decode_v1(data)


def decode_message(data: bytes) -> List[NodeDescriptor]:
    """Decode a message of either supported version (validating shape)."""
    return decode_frame(data)[1]


# -- control plane: versioned request/response frames --------------------------
#
# The gossip frames above are the *data plane*.  The control plane
# (:mod:`repro.control` -- seed-node bootstrap, liveness heartbeats,
# stats aggregation) speaks its own small request/response format so the
# two can never be confused: a distinct magic byte, an explicit protocol
# version, a message *kind* (assigned by :mod:`repro.control.messages`),
# a request id for correlating replies, and a JSON object body.  Bodies
# stay JSON deliberately -- control traffic is a few messages per node
# per second, so debuggability beats compactness here.

CONTROL_MAGIC = 0x9C
"""First byte of every control frame.

Like :data:`V2_MAGIC` it is outside printable ASCII and invalid as a
UTF-8 start byte, and it differs from :data:`V2_MAGIC`, so control
frames, v2 gossip frames and v1 JSON documents are mutually
unmistakable from their first byte.
"""

CONTROL_VERSION = 1
"""Version of the control frame layout (bumped on incompatible change)."""

MAX_CONTROL_BYTES = 1 << 16  # 64 KiB: control bodies are tiny
"""Hard size cap for control frames, enforced on encode and decode."""

_CONTROL_HEADER = struct.Struct("!BBBI")  # magic, version, kind, request id
_MAX_REQUEST_ID = (1 << 32) - 1


class ControlFrame(NamedTuple):
    """One decoded control-plane message."""

    version: int
    kind: int
    request_id: int
    body: dict


def is_control_frame(data: bytes) -> bool:
    """Whether ``data`` starts like a control frame (cheap demux check)."""
    return len(data) > 0 and data[0] == CONTROL_MAGIC


def encode_control(kind: int, body: dict, request_id: int = 0) -> bytes:
    """Encode one control frame (kind + correlation id + JSON body).

    Raises :class:`CodecError` for out-of-range kinds/ids, bodies that are
    not JSON objects, and frames exceeding :data:`MAX_CONTROL_BYTES` --
    enforced on encode so an oversized frame never reaches a socket.
    """
    if not isinstance(kind, int) or isinstance(kind, bool) or not 0 <= kind <= 255:
        raise CodecError(f"control kind must be an int in [0, 255], got {kind!r}")
    if (
        not isinstance(request_id, int)
        or isinstance(request_id, bool)
        or not 0 <= request_id <= _MAX_REQUEST_ID
    ):
        raise CodecError(
            f"control request id must be an int in [0, 2^32), got {request_id!r}"
        )
    if not isinstance(body, dict):
        raise CodecError(f"control body must be a dict, got {type(body).__name__}")
    try:
        payload = json.dumps(body, separators=(",", ":"), sort_keys=True).encode(
            "utf-8"
        )
    except (TypeError, ValueError) as exc:
        raise CodecError(f"control body is not JSON-serializable: {exc}") from exc
    frame = _CONTROL_HEADER.pack(CONTROL_MAGIC, CONTROL_VERSION, kind, request_id)
    frame += payload
    if len(frame) > MAX_CONTROL_BYTES:
        raise CodecError(
            f"control frame of {len(frame)} bytes exceeds the "
            f"{MAX_CONTROL_BYTES}-byte limit"
        )
    return frame


def decode_control(data: bytes) -> ControlFrame:
    """Decode one control frame; raises :class:`CodecError` on any defect."""
    if len(data) > MAX_CONTROL_BYTES:
        raise CodecError(
            f"control frame of {len(data)} bytes exceeds the limit"
        )
    if len(data) < _CONTROL_HEADER.size:
        raise CodecError(f"truncated control header ({len(data)} bytes)")
    magic, version, kind, request_id = _CONTROL_HEADER.unpack_from(data, 0)
    if magic != CONTROL_MAGIC:
        raise CodecError(f"bad control magic byte: {magic:#x}")
    if version != CONTROL_VERSION:
        raise CodecError(f"unsupported control frame version: {version}")
    try:
        body = json.loads(data[_CONTROL_HEADER.size :].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CodecError(f"undecodable control body: {exc}") from exc
    if not isinstance(body, dict):
        raise CodecError("control body must be a JSON object")
    return ControlFrame(version, kind, request_id, body)

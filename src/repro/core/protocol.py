"""The generic gossip node: paper Figure 1, both threads.

The paper's skeleton runs two concurrent threads per node:

active thread (once per cycle)::

    p <- selectPeer()
    if push:  send merge(view, {(myAddress, 0)}) to p
    else:     send {} to p                      # empty view triggers reply
    if pull:  receive view_p from p
              increaseHopCount(view_p)
              view <- selectView(merge(view_p, view))

passive thread (on every incoming request)::

    (p, view_p) <- waitMessage()
    increaseHopCount(view_p)
    if pull:  send merge(view, {(myAddress, 0)}) to p   # reply BEFORE merging
    view <- selectView(merge(view_p, view))

:class:`GossipNode` exposes this as three re-entrant methods so that both a
synchronous cycle-driven engine and an asynchronous event-driven engine can
drive it:

- :meth:`GossipNode.begin_exchange` -- the first half of the active thread:
  select a peer and build the request payload;
- :meth:`GossipNode.handle_request` -- the passive thread: optionally build
  a reply, then merge;
- :meth:`GossipNode.handle_response` -- the second half of the active
  thread: merge the pulled view.

Message ownership contract: payloads returned by ``begin_exchange`` and
``handle_request`` contain **fresh descriptor copies** (serialization), and
the receiving methods take ownership of the payload they are given and
mutate it in place.  Engines must deliver each payload to exactly one
recipient and must not retain references.
"""

from __future__ import annotations

import random
from typing import Callable, List, NamedTuple, Optional

from repro.core.config import ProtocolConfig
from repro.core.descriptor import (
    Address,
    NodeDescriptor,
    increase_hop_count,
)
from repro.core.view import PartialView, apply_healer_swapper, merge
from repro.defenses.validation import sanitize_payload


class Exchange(NamedTuple):
    """The outcome of one active-thread initiation."""

    peer: Address
    """The selected gossip partner."""

    payload: List[NodeDescriptor]
    """Request content; empty for pull-only protocols ("empty view to
    trigger response")."""


class GossipNode:
    """One protocol participant: a view plus the Figure 1 state machine.

    Parameters
    ----------
    address:
        This node's own address.
    config:
        The protocol instance to run.
    rng:
        Source of randomness for the ``rand`` policies.  Engines share one
        seeded :class:`random.Random` across nodes for reproducibility.
    view:
        Optional pre-populated view (bootstrap); defaults to an empty view
        of capacity ``config.view_size``.
    """

    __slots__ = ("address", "config", "view", "_rng", "liveness",
                 "exchanges_initiated", "requests_handled",
                 "responses_handled")

    def __init__(
        self,
        address: Address,
        config: ProtocolConfig,
        rng: random.Random,
        view: Optional[PartialView] = None,
    ) -> None:
        self.address = address
        self.config = config
        self._rng = rng
        self.view = view if view is not None else PartialView(config.view_size)
        self.liveness: Optional[Callable[[Address], bool]] = None
        """Optional predicate restricting peer selection to live nodes.

        The paper specifies that ``selectPeer()`` "returns the address of a
        **live** node as found in the caller's current view" -- in a real
        deployment a node discovers unresponsive peers through timeouts and
        reselects; the simulation engines model that by installing their
        membership test here.  Dead descriptors still occupy view slots
        (the dead links whose decay Figure 7 measures); they are only
        skipped as exchange partners.  Without this filter, deterministic
        ``tail`` peer selection would re-target the same crashed node
        forever and the overlay would stall instead of healing.
        """
        self.exchanges_initiated = 0
        self.requests_handled = 0
        self.responses_handled = 0

    def __repr__(self) -> str:
        return (
            f"GossipNode(address={self.address!r}, "
            f"protocol={self.config.label}, view_size={len(self.view)})"
        )

    # -- peer sampling primitive -------------------------------------------

    def sample_peer(self) -> Optional[Address]:
        """A uniform random address from the current view (``getPeer``).

        This is the paper's "simplest possible implementation" of the
        service's ``getPeer`` method; ``None`` when the view is empty.
        """
        entry = self.view.random_entry(self._rng)
        return None if entry is None else entry.address

    # -- active thread -------------------------------------------------------

    def select_peer(self) -> Optional[Address]:
        """Apply the peer selection policy to the current view.

        When a :attr:`liveness` predicate is installed, only live entries
        are candidates (see the attribute's docstring); dead descriptors
        stay in the view but are not selected.
        """
        if self.liveness is None:
            entry = self.config.peer_selection.select(self.view, self._rng)
        else:
            is_live = self.liveness
            candidates = [d for d in self.view if is_live(d.address)]
            entry = self.config.peer_selection.select_from(
                candidates, self._rng
            )
        return None if entry is None else entry.address

    def age_view(self) -> None:
        """Increment the hop count of every own view entry by one.

        Called once per cycle at the start of the node's active turn.  The
        Middleware 2004 pseudocode only increments *received* views, but
        without local aging the hop count of a stored descriptor would be
        frozen forever: hop-0 bootstrap entries would be immortal under
        ``head`` view selection (the overlay would never leave its initial
        topology) and dead descriptors would never age out, contradicting
        the paper's convergence and self-healing results (Figures 2-7).
        The authors' later formalization (Jelasity et al., ACM TOCS 2007,
        "Gossip-based Peer Sampling") makes this step explicit as
        ``view.increaseAge()`` in the active thread; we follow that
        semantics.  See DESIGN.md, "Design notes".
        """
        self.view.increase_hop_counts()

    def begin_exchange(self) -> Optional[Exchange]:
        """First half of the active thread: pick a peer, build the request.

        Ages the view by one cycle (see :meth:`age_view`), then selects a
        peer.  Returns ``None`` when the view is empty (nothing to gossip
        with).  The returned payload is freshly copied and owned by the
        recipient.
        """
        self.age_view()
        peer = self.select_peer()
        if peer is None:
            return None
        self.exchanges_initiated += 1
        if self.config.push:
            payload = self._outgoing_buffer()
        else:
            payload = []
        return Exchange(peer, payload)

    def handle_response(self, peer: Address, payload: List[NodeDescriptor]) -> None:
        """Second half of the active thread: merge the pulled view.

        Only meaningful for ``pull``/``pushpull`` protocols; engines must
        not call this for push-only configurations.
        """
        self.responses_handled += 1
        increase_hop_count(payload)
        if self.config.validate_descriptors:
            payload = sanitize_payload(
                payload, self.address, peer, self.config.view_size
            )
        self._apply_merge(payload)

    # -- passive thread ------------------------------------------------------

    def handle_request(
        self, peer: Address, payload: List[NodeDescriptor]
    ) -> Optional[List[NodeDescriptor]]:
        """The passive thread: receive ``payload`` from ``peer``.

        Returns the reply payload for ``pull``/``pushpull`` protocols (built
        *before* the received view is merged, exactly as in the paper's
        skeleton), or ``None`` for push-only protocols.
        """
        self.requests_handled += 1
        increase_hop_count(payload)
        if self.config.validate_descriptors:
            payload = sanitize_payload(
                payload, self.address, peer, self.config.view_size
            )
        reply = self._outgoing_buffer() if self.config.pull else None
        self._apply_merge(payload)
        return reply

    # -- internals -------------------------------------------------------------

    def _outgoing_buffer(self) -> List[NodeDescriptor]:
        """``merge(view, {(myAddress, 0)})``, as fresh copies."""
        buffer = [NodeDescriptor(self.address, 0)]
        for descriptor in self.view:
            # own address cannot appear in the view, so no dedup is needed
            buffer.append(descriptor.copy())
        return buffer

    def _apply_merge(self, received: List[NodeDescriptor]) -> None:
        """``view <- selectView(merge(received, view))``."""
        config = self.config
        exclude = None if config.keep_self_descriptors else self.address
        if config.healer or config.swapper:
            own = {id(d) for d in self.view}
            buffer = merge(received, self.view, exclude=exclude)
            buffer = apply_healer_swapper(
                buffer, config.view_size, config.healer, config.swapper, own
            )
        else:
            buffer = merge(received, self.view, exclude=exclude)
        selected = config.view_selection.select(
            buffer, config.view_size, self._rng
        )
        self.view.replace(selected)

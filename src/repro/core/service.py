"""The peer sampling service API (paper Section 2).

The service consists of exactly two methods:

- ``init()`` -- initialize the service on a node (here: seed its view with
  one or more contact addresses; the paper solves bootstrap out of band);
- ``getPeer()`` -- return the address of a peer drawn from the group.

:class:`PeerSamplingService` wraps a :class:`~repro.core.protocol.GossipNode`
and implements ``getPeer`` as a uniform random draw from the node's current
partial view -- the paper's baseline implementation.  There is deliberately
no ``stop()``: departed nodes simply stop gossiping and their descriptors
age out of other views (paper Section 2).
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional

from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import NotInitializedError
from repro.core.protocol import GossipNode


class PeerSamplingService:
    """The two-method API on top of one gossip node.

    Multiple gossip applications on the same node are expected to share a
    single service instance (paper Section 2: the service can be "utilized
    by multiple gossip protocols simultaneously").

    Thread/task safety: ``getPeer`` may be called from application threads
    while the node's view is concurrently mutated by the gossip loop (the
    situation of a real deployment, where :class:`repro.net.GossipDaemon`
    runs the active/passive threads on an asyncio loop).  All view access
    through this class therefore serializes on :attr:`lock`; the daemon
    acquires the same lock around its merges.  The lock is reentrant so a
    holder can call ``get_peer`` while already inside a locked section.
    The single-threaded simulation engines pay only an uncontended-lock
    acquisition per sample.
    """

    __slots__ = ("_node", "_initialized", "_init_done", "_lock", "samples_served")

    def __init__(self, node: GossipNode) -> None:
        self._node = node
        self._initialized = len(node.view) > 0
        # A view that was seeded before the service existed counts as an
        # *applied* init (the bootstrap happened out of band); a service
        # built on an empty view keeps its one explicit init() pending
        # even if the gossip loop fills the view first -- see init().
        self._init_done = self._initialized
        self._lock = threading.RLock()
        self.samples_served = 0
        """Successful ``get_peer`` draws (monotonic; the metrics plane
        exposes it as the ``getPeer()`` serve counter).  ``None`` draws
        from an empty view are not served samples and do not count."""

    @property
    def node(self) -> GossipNode:
        """The underlying gossip node (exposed for instrumentation)."""
        return self._node

    @property
    def address(self) -> Address:
        """The address of the node this service runs on."""
        return self._node.address

    @property
    def initialized(self) -> bool:
        """Whether ``init`` has been called (or the view was ever seeded).

        A service constructed before its node's view was bootstrapped
        (e.g. a daemon's service, built at boot and seeded afterwards)
        becomes initialized the moment the view holds an entry; once
        initialized it stays so even if the view later empties out.
        """
        if not self._initialized and len(self._node.view) > 0:
            self._initialized = True
        return self._initialized

    @property
    def lock(self) -> threading.RLock:
        """The reentrant lock guarding all view access through the service.

        Anything that mutates the underlying node's view outside this class
        (the networked gossip loop, custom maintenance code) must hold this
        lock for the duration of the mutation so concurrent ``get_peer``
        calls never observe a half-merged view.
        """
        return self._lock

    def init(self, contacts: Iterable[Address] = ()) -> None:
        """Initialize the service with zero or more contact addresses.

        Contacts enter the view with hop count 0 and **win capacity
        ties**: when the node's view already holds entries (a daemon
        whose gossip loop populated the view between service
        construction and ``init``), the caller's contacts are placed
        first and pre-existing entries are dropped from the tail if the
        combined list exceeds the view capacity -- bootstrap contacts
        are the one piece of information the caller explicitly provided,
        so they must never be silently discarded in favor of whatever
        the view happened to contain.

        Calling ``init`` again is a no-op (the paper: "initializes the
        service ... if this has not been done before"); a view seeded
        before the service was constructed also counts as initialized.
        """
        with self._lock:
            if self._init_done:
                return
            entries: List[NodeDescriptor] = [
                NodeDescriptor(contact, 0)
                for contact in contacts
                if contact != self._node.address
            ]
            entries.extend(self._node.view)
            capacity = self._node.view.capacity
            self._node.view.replace(entries[:capacity])
            self._init_done = True
            self._initialized = True

    def get_peer(self) -> Optional[Address]:
        """Return a sampled peer address.

        Raises
        ------
        NotInitializedError
            If ``init`` was never called and the view was never seeded.

        Returns
        -------
        Address or None
            ``None`` when the node currently knows no peer (e.g. a group of
            size one); an address drawn uniformly at random from the current
            view otherwise.  The *distribution* of repeated calls is exactly
            what the paper's evaluation characterizes: close to, but not,
            uniform over the group.
        """
        with self._lock:
            if not self.initialized:
                raise NotInitializedError(
                    "PeerSamplingService.get_peer() called before init()"
                )
            peer = self._node.sample_peer()
            if peer is not None:
                self.samples_served += 1
            return peer

    def get_peers(self, count: int) -> List[Address]:
        """Sample ``count`` peers in one atomic batch.

        Convenience wrapper for applications needing several peers (the
        paper notes applications "can call this method repeatedly");
        duplicates are possible, exactly as with repeated calls.

        The whole batch is drawn while holding :attr:`lock`, so a
        concurrently gossiping daemon can never interleave a merge
        between two draws of one batch.  A draw that comes back empty
        while the view still holds entries is retried rather than
        truncating the batch; the returned list is shorter than
        ``count`` only when the node's view is empty at batch time --
        the one genuine shortfall, which callers detect by comparing
        lengths.
        """
        samples: List[Address] = []
        if count <= 0:
            return samples
        with self._lock:
            while len(samples) < count:
                peer = self.get_peer()
                if peer is None:
                    if len(self._node.view) == 0:
                        break
                    continue
                samples.append(peer)
        return samples

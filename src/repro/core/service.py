"""The peer sampling service API (paper Section 2).

The service consists of exactly two methods:

- ``init()`` -- initialize the service on a node (here: seed its view with
  one or more contact addresses; the paper solves bootstrap out of band);
- ``getPeer()`` -- return the address of a peer drawn from the group.

:class:`PeerSamplingService` wraps a :class:`~repro.core.protocol.GossipNode`
and implements ``getPeer`` as a uniform random draw from the node's current
partial view -- the paper's baseline implementation.  There is deliberately
no ``stop()``: departed nodes simply stop gossiping and their descriptors
age out of other views (paper Section 2).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import NotInitializedError
from repro.core.protocol import GossipNode


class PeerSamplingService:
    """The two-method API on top of one gossip node.

    Multiple gossip applications on the same node are expected to share a
    single service instance (paper Section 2: the service can be "utilized
    by multiple gossip protocols simultaneously").
    """

    __slots__ = ("_node", "_initialized")

    def __init__(self, node: GossipNode) -> None:
        self._node = node
        self._initialized = len(node.view) > 0

    @property
    def node(self) -> GossipNode:
        """The underlying gossip node (exposed for instrumentation)."""
        return self._node

    @property
    def address(self) -> Address:
        """The address of the node this service runs on."""
        return self._node.address

    @property
    def initialized(self) -> bool:
        """Whether ``init`` has been called (or the view was pre-seeded)."""
        return self._initialized

    def init(self, contacts: Iterable[Address] = ()) -> None:
        """Initialize the service with zero or more contact addresses.

        Contacts enter the view with hop count 0.  Calling ``init`` again is
        a no-op (the paper: "initializes the service ... if this has not
        been done before").
        """
        if self._initialized:
            return
        entries: List[NodeDescriptor] = list(self._node.view)
        for contact in contacts:
            if contact == self._node.address:
                continue
            entries.append(NodeDescriptor(contact, 0))
        capacity = self._node.view.capacity
        self._node.view.replace(entries[:capacity])
        self._initialized = True

    def get_peer(self) -> Optional[Address]:
        """Return a sampled peer address.

        Raises
        ------
        NotInitializedError
            If ``init`` was never called and the view was never seeded.

        Returns
        -------
        Address or None
            ``None`` when the node currently knows no peer (e.g. a group of
            size one); an address drawn uniformly at random from the current
            view otherwise.  The *distribution* of repeated calls is exactly
            what the paper's evaluation characterizes: close to, but not,
            uniform over the group.
        """
        if not self._initialized:
            raise NotInitializedError(
                "PeerSamplingService.get_peer() called before init()"
            )
        return self._node.sample_peer()

    def get_peers(self, count: int) -> List[Address]:
        """Sample ``count`` peers by repeated ``get_peer`` calls.

        Convenience wrapper for applications needing several peers (the
        paper notes applications "can call this method repeatedly");
        duplicates are possible, exactly as with repeated calls.
        """
        samples: List[Address] = []
        for _ in range(count):
            peer = self.get_peer()
            if peer is None:
                break
            samples.append(peer)
        return samples

"""Protocol configurations: points in the paper's 3x3x3 design space.

A :class:`ProtocolConfig` fixes the three policies plus the view capacity
``c``.  The module also names the instances the paper highlights:

- :func:`newscast` -- ``(rand, head, pushpull)`` (paper Section 3);
- :func:`lpbcast` -- ``(rand, rand, push)``, the membership component of
  lightweight probabilistic broadcast;
- :data:`STUDIED_PROTOCOLS` -- the eight instances the evaluation keeps
  after discarding ``(head,*,*)``, ``(*,tail,*)`` and ``(*,*,pull)``
  (paper Section 4.3);
- :data:`ALL_PROTOCOLS` -- the full 27-instance space, used by the
  preliminary-experiment reproductions.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Iterator, Tuple

from repro.core.errors import ConfigurationError
from repro.core.policies import (
    PeerSelection,
    Propagation,
    ViewSelection,
    parse_peer_selection,
    parse_propagation,
    parse_view_selection,
)

DEFAULT_VIEW_SIZE = 30
"""The paper's view capacity ``c`` (Section 4.3)."""

_LABEL_RE = re.compile(
    r"^\(?\s*(?P<ps>[a-z]+)\s*,\s*(?P<vs>[a-z]+)\s*,\s*(?P<vp>[a-z-]+)\s*\)?"
    r"(?:\s*;\s*h(?P<healer>\d+)s(?P<swapper>\d+))?"
    r"(?:\s*;\s*(?P<validate>v))?$"
)


@dataclasses.dataclass(frozen=True)
class ProtocolConfig:
    """An instance of the generic peer sampling protocol.

    Parameters
    ----------
    peer_selection:
        Which view entry the active thread gossips with.
    view_selection:
        Which descriptors survive truncation after a merge.
    propagation:
        ``push``, ``pull`` or ``pushpull``.
    view_size:
        The view capacity ``c`` (default 30, the paper's setting).
    keep_self_descriptors:
        If ``True``, a node's own descriptor may enter its view through
        merges.  The default ``False`` matches Newscast and the reference
        implementations; the ablation benchmark quantifies the difference.
    healer:
        The *healer* parameter ``H`` of the authors' later formalization
        (Jelasity et al., ACM TOCS 2007, "Gossip-based Peer Sampling").
        When a merge buffer overflows the capacity, up to ``H`` of the
        *oldest* descriptors (highest hop count) are dropped before the
        view-selection truncation runs, accelerating dead-link removal.
        The default 0 reproduces the Middleware 2004 protocol exactly.
    swapper:
        The *swapper* parameter ``S`` (same formalization): after the
        healer step, up to ``S`` descriptors that survive from the node's
        *own previous view* -- the entries it just sent to its exchange
        partner, freshest first -- are dropped, biasing the view towards
        received entries ("swap" semantics).  Default 0, see ``healer``.
    validate_descriptors:
        If ``True``, received payloads are passed through
        :func:`repro.defenses.validation.sanitize_payload` between the
        hop increment and the merge: entries naming the receiver,
        duplicates, and out-of-range hop counts are dropped, and relayed
        entries claiming forged hop-0 freshness are floored to hop 2.
        Honest traffic is unaffected; hub-style poisoning loses its
        age-race advantage.  Default ``False`` (the paper's node trusts
        everything).
    """

    peer_selection: PeerSelection
    view_selection: ViewSelection
    propagation: Propagation
    view_size: int = DEFAULT_VIEW_SIZE
    keep_self_descriptors: bool = False
    healer: int = 0
    swapper: int = 0
    validate_descriptors: bool = False

    def __post_init__(self) -> None:
        if self.view_size < 1:
            raise ConfigurationError(
                f"view_size must be >= 1, got {self.view_size}"
            )
        if self.healer < 0:
            raise ConfigurationError(
                f"healer (H) must be >= 0, got {self.healer}"
            )
        if self.swapper < 0:
            raise ConfigurationError(
                f"swapper (S) must be >= 0, got {self.swapper}"
            )
        if not isinstance(self.peer_selection, PeerSelection):
            raise ConfigurationError(
                f"peer_selection must be a PeerSelection, got "
                f"{self.peer_selection!r}"
            )
        if not isinstance(self.view_selection, ViewSelection):
            raise ConfigurationError(
                f"view_selection must be a ViewSelection, got "
                f"{self.view_selection!r}"
            )
        if not isinstance(self.propagation, Propagation):
            raise ConfigurationError(
                f"propagation must be a Propagation, got {self.propagation!r}"
            )

    # -- convenience ------------------------------------------------------

    @property
    def push(self) -> bool:
        """Whether the initiator sends its view (paper's ``push`` flag)."""
        return self.propagation.push

    @property
    def pull(self) -> bool:
        """Whether the initiator receives a view (paper's ``pull`` flag)."""
        return self.propagation.pull

    @property
    def label(self) -> str:
        """The paper's tuple notation, e.g. ``(rand,head,pushpull)``.

        Nonzero healer/swapper parameters are appended as ``;H<h>S<s>``
        and descriptor validation as ``;V`` (neither is part of the
        Middleware 2004 design space).
        """
        base = (
            f"({self.peer_selection.value},{self.view_selection.value},"
            f"{self.propagation.value})"
        )
        if self.healer or self.swapper:
            base = f"{base};H{self.healer}S{self.swapper}"
        if self.validate_descriptors:
            base = f"{base};V"
        return base

    def replace(self, **changes: object) -> "ProtocolConfig":
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    @classmethod
    def from_label(
        cls, label: str, view_size: int = DEFAULT_VIEW_SIZE
    ) -> "ProtocolConfig":
        """Parse the paper's tuple notation.

        Round-trips :attr:`label` exactly, including the ``;H<h>S<s>``
        suffix of nonzero healer/swapper configurations and the ``;V``
        descriptor-validation suffix.

        >>> ProtocolConfig.from_label("(rand,head,pushpull)").label
        '(rand,head,pushpull)'
        >>> ProtocolConfig.from_label("(rand,head,pushpull);H1S3").swapper
        3
        >>> ProtocolConfig.from_label(
        ...     "(rand,head,pushpull);V").validate_descriptors
        True
        """
        match = _LABEL_RE.match(label.strip().lower())
        if match is None:
            raise ConfigurationError(f"cannot parse protocol label: {label!r}")
        try:
            return cls(
                peer_selection=parse_peer_selection(match.group("ps")),
                view_selection=parse_view_selection(match.group("vs")),
                propagation=parse_propagation(match.group("vp")),
                view_size=view_size,
                healer=int(match.group("healer") or 0),
                swapper=int(match.group("swapper") or 0),
                validate_descriptors=match.group("validate") is not None,
            )
        except ValueError as exc:
            raise ConfigurationError(
                f"cannot parse protocol label: {label!r}"
            ) from exc


@dataclasses.dataclass(frozen=True)
class NetworkConfig:
    """Timing and wire parameters of a *deployed* protocol instance.

    The simulation engines abstract time into cycles; the networked daemon
    (:mod:`repro.net`) needs real-time equivalents of the paper's model
    plus the failure-handling knobs a deployment cannot avoid:

    Parameters
    ----------
    cycle_seconds:
        Target wall-clock length of one gossip cycle (the paper's ``T``).
    jitter:
        Fraction of ``cycle_seconds`` by which each wait is uniformly
        perturbed (``+/- jitter * cycle_seconds``).  Desynchronizes the
        active threads of a cluster started at the same instant, exactly
        like the random phase offsets the event-driven engine models.
    request_timeout:
        Seconds the active thread waits for a pull reply before giving the
        exchange up.  Replies arriving after the timeout are *dropped*, not
        merged -- a late merge would resurrect descriptors the view
        selection already aged past.
    wire_version:
        Codec version used for *initiated* requests
        (:data:`repro.core.codec.WIRE_FORMAT_V2` by default).  Responders
        always answer in the version the request arrived in, so mixed
        clusters interoperate without any handshake.
    bind_host:
        Interface the UDP transport binds to.  The default loopback
        address keeps accidental exposure impossible; a real deployment
        overrides it deliberately.
    auth_key:
        Optional shared HMAC key.  When set, the daemon wraps every
        outgoing gossip frame in a signed envelope
        (:func:`repro.core.codec.encode_signed_message`) and *requires*
        a valid signature on every incoming one -- unsigned or
        forged frames are counted (``DaemonStats.auth_failures``) and
        dropped before they can touch the view.  ``None`` (default)
        keeps the open wire format.
    """

    cycle_seconds: float = 1.0
    jitter: float = 0.1
    request_timeout: float = 0.5
    wire_version: int = 2
    bind_host: str = "127.0.0.1"
    auth_key: "bytes | None" = None

    def __post_init__(self) -> None:
        from repro.core.codec import SUPPORTED_WIRE_VERSIONS

        if self.auth_key is not None and (
            not isinstance(self.auth_key, bytes) or not self.auth_key
        ):
            raise ConfigurationError(
                f"auth_key must be a non-empty bytes value or None, "
                f"got {self.auth_key!r}"
            )
        if self.cycle_seconds <= 0:
            raise ConfigurationError(
                f"cycle_seconds must be > 0, got {self.cycle_seconds}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        if self.request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be > 0, got {self.request_timeout}"
            )
        if self.wire_version not in SUPPORTED_WIRE_VERSIONS:
            raise ConfigurationError(
                f"wire_version must be one of {SUPPORTED_WIRE_VERSIONS}, "
                f"got {self.wire_version}"
            )

    def replace(self, **changes: object) -> "NetworkConfig":
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


def newscast(view_size: int = DEFAULT_VIEW_SIZE) -> ProtocolConfig:
    """The Newscast protocol: ``(rand, head, pushpull)``."""
    return ProtocolConfig(
        PeerSelection.RAND, ViewSelection.HEAD, Propagation.PUSHPULL, view_size
    )


def lpbcast(view_size: int = DEFAULT_VIEW_SIZE) -> ProtocolConfig:
    """The Lpbcast membership component: ``(rand, rand, push)``."""
    return ProtocolConfig(
        PeerSelection.RAND, ViewSelection.RAND, Propagation.PUSH, view_size
    )


def _studied(view_size: int) -> Tuple[ProtocolConfig, ...]:
    instances = []
    for ps in (PeerSelection.RAND, PeerSelection.TAIL):
        for vs in (ViewSelection.HEAD, ViewSelection.RAND):
            for vp in (Propagation.PUSH, Propagation.PUSHPULL):
                instances.append(ProtocolConfig(ps, vs, vp, view_size))
    return tuple(instances)


STUDIED_PROTOCOLS: Tuple[ProtocolConfig, ...] = _studied(DEFAULT_VIEW_SIZE)
"""The eight instances retained by the paper's evaluation (Section 4.3)."""


def studied_protocols(view_size: int = DEFAULT_VIEW_SIZE) -> Tuple[ProtocolConfig, ...]:
    """The eight studied instances at an arbitrary view size."""
    return _studied(view_size)


def iter_all_protocols(
    view_size: int = DEFAULT_VIEW_SIZE,
) -> Iterator[ProtocolConfig]:
    """Iterate over the full 27-instance design space."""
    for ps in PeerSelection:
        for vs in ViewSelection:
            for vp in Propagation:
                yield ProtocolConfig(ps, vs, vp, view_size)


ALL_PROTOCOLS: Tuple[ProtocolConfig, ...] = tuple(iter_all_protocols())
"""All 27 combinations of the three policy dimensions at the paper's ``c``."""

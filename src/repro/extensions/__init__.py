"""Protocols beyond the paper's 27-instance design space.

Implementations of the paper's related work (Section 9) and future-work
suggestions (Section 10), used as extra comparators by the extension
benchmarks:

- :mod:`repro.extensions.cyclon` -- Cyclon's age-based shuffling (the main
  follow-on peer sampling design; drives the same simulation engines);
- :mod:`repro.extensions.scamp` -- a SCAMP-style reactive subscription
  protocol (related work: probabilistically sized static views);
- :mod:`repro.extensions.second_view` -- the paper's Section 10 proposal:
  run several protocol instances concurrently ("a second view for
  gossiping membership information") and sample from the combined views;
- :mod:`repro.extensions.peerswap` -- PeerSwap's swap-based sampling
  (Guerraoui et al., arXiv 2408.03829: pointer-conserving exchanges with
  provable closeness-to-uniform -- the honest baseline for the
  adversarial experiments);
- :mod:`repro.extensions.brahms` -- Brahms' Byzantine-resilient sampler
  (Bortnikov et al. 2009: limited pushes, per-round quotas and min-wise
  sampler history -- the defended comparator for the attack artefact);
- :mod:`repro.extensions.registry` -- the name -> node-factory registry
  that makes ``brahms``/``cyclon``/``peerswap`` addressable from
  ``ExperimentPlan.protocols`` next to generic ``(peer,view,prop)``
  labels.
"""

from repro.extensions.brahms import BrahmsConfig, BrahmsNode, brahms_engine
from repro.extensions.cyclon import CyclonConfig, CyclonNode, cyclon_engine
from repro.extensions.peerswap import PeerSwapConfig, PeerSwapNode, peerswap_engine
from repro.extensions.registry import (
    EXTENSION_PROTOCOLS,
    ExtensionProtocol,
    extension_protocol,
    is_extension_protocol,
)
from repro.extensions.scamp import ScampConfig, ScampNetwork
from repro.extensions.second_view import CombinedOverlay, CombinedSamplingService

__all__ = [
    "EXTENSION_PROTOCOLS",
    "BrahmsConfig",
    "BrahmsNode",
    "CombinedOverlay",
    "CombinedSamplingService",
    "CyclonConfig",
    "CyclonNode",
    "ExtensionProtocol",
    "PeerSwapConfig",
    "PeerSwapNode",
    "ScampConfig",
    "ScampNetwork",
    "brahms_engine",
    "cyclon_engine",
    "extension_protocol",
    "is_extension_protocol",
    "peerswap_engine",
]

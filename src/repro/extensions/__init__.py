"""Protocols beyond the paper's 27-instance design space.

Implementations of the paper's related work (Section 9) and future-work
suggestions (Section 10), used as extra comparators by the extension
benchmarks:

- :mod:`repro.extensions.cyclon` -- Cyclon's age-based shuffling (the main
  follow-on peer sampling design; drives the same simulation engines);
- :mod:`repro.extensions.scamp` -- a SCAMP-style reactive subscription
  protocol (related work: probabilistically sized static views);
- :mod:`repro.extensions.second_view` -- the paper's Section 10 proposal:
  run several protocol instances concurrently ("a second view for
  gossiping membership information") and sample from the combined views.
"""

from repro.extensions.cyclon import CyclonConfig, CyclonNode, cyclon_engine
from repro.extensions.scamp import ScampConfig, ScampNetwork
from repro.extensions.second_view import CombinedOverlay, CombinedSamplingService

__all__ = [
    "CombinedOverlay",
    "CombinedSamplingService",
    "CyclonConfig",
    "CyclonNode",
    "ScampConfig",
    "ScampNetwork",
    "cyclon_engine",
]

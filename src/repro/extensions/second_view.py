"""Combined services: several protocol instances side by side.

Paper Section 10: "combining different settings will be necessary.  Such a
combination can, for instance, be achieved by introducing a second view for
gossiping membership information and running more protocols concurrently."

:class:`CombinedOverlay` runs one :class:`~repro.simulation.engine.CycleEngine`
per protocol instance over the *same* address space: every logical node
owns one view per instance, and membership events (joins, crashes) apply to
all instances at once.  :class:`CombinedSamplingService` then answers
``get_peer`` from the union of a node's views.

The motivating combination is a fast-healing instance (head view
selection) next to a partition-tolerant one (rand view selection): after a
temporary partition the head views forget the other side while the rand
views still remember it, so the union heals quickly *and* can reconnect --
the trade-off discussed in paper Section 8.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.config import ProtocolConfig
from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ConfigurationError, NotInitializedError
from repro.simulation.engine import CycleEngine


class CombinedOverlay:
    """Lock-step execution of several protocol instances.

    Parameters
    ----------
    configs:
        One :class:`~repro.core.config.ProtocolConfig` per concurrent
        instance (at least one).
    seed:
        Seeds an internal RNG from which each instance engine gets its own
        independent seed.
    """

    def __init__(
        self, configs: Sequence[ProtocolConfig], seed: Optional[int] = None
    ) -> None:
        if not configs:
            raise ConfigurationError("CombinedOverlay needs >= 1 config")
        self.rng = random.Random(seed)
        self.engines: List[CycleEngine] = [
            CycleEngine(config, seed=self.rng.randrange(2**63))
            for config in configs
        ]
        self.cycle = 0

    # -- population (applied to every instance) ------------------------------

    def __len__(self) -> int:
        return len(self.engines[0])

    def __contains__(self, address: Address) -> bool:
        return address in self.engines[0]

    def addresses(self) -> List[Address]:
        """All live addresses."""
        return self.engines[0].addresses()

    def add_node(
        self,
        address: Optional[Address] = None,
        contacts: Sequence[Address] = (),
    ) -> Address:
        """Join a node in every instance (same address, same contacts)."""
        address = self.engines[0].add_node(address, contacts)
        for engine in self.engines[1:]:
            engine.add_node(address, contacts)
        return address

    def add_nodes(
        self, count: int, contacts: Sequence[Address] = ()
    ) -> List[Address]:
        """Join ``count`` nodes in every instance."""
        return [self.add_node(contacts=contacts) for _ in range(count)]

    def remove_node(self, address: Address) -> None:
        """Crash a node in every instance."""
        for engine in self.engines:
            engine.remove_node(address)

    def crash_random_nodes(self, count: int) -> List[Address]:
        """Crash the same ``count`` random nodes in every instance."""
        victims = self.rng.sample(self.engines[0].addresses(), count)
        for victim in victims:
            self.remove_node(victim)
        return victims

    # -- execution -------------------------------------------------------------

    def run_cycle(self) -> None:
        """Run one cycle of every instance."""
        for engine in self.engines:
            engine.run_cycle()
        self.cycle += 1

    def run(self, cycles: int) -> None:
        """Run ``cycles`` cycles of every instance."""
        for _ in range(cycles):
            self.run_cycle()

    # -- combined views -----------------------------------------------------------

    def combined_view(self, address: Address) -> List[NodeDescriptor]:
        """Union of a node's views across instances (lowest age wins)."""
        best: Dict[Address, NodeDescriptor] = {}
        for engine in self.engines:
            for descriptor in engine.node(address).view:
                current = best.get(descriptor.address)
                if current is None or descriptor.hop_count < current.hop_count:
                    best[descriptor.address] = descriptor
        return sorted(best.values(), key=lambda d: d.hop_count)

    def views(self) -> Dict[Address, List[NodeDescriptor]]:
        """Combined views of all nodes (for graph snapshots)."""
        return {
            address: self.combined_view(address)
            for address in self.addresses()
        }

    def dead_link_count(self) -> int:
        """Dead links in the *combined* views."""
        alive = set(self.addresses())
        return sum(
            1
            for address in alive
            for descriptor in self.combined_view(address)
            if descriptor.address not in alive
        )

    def service(self, address: Address) -> "CombinedSamplingService":
        """A sampling service over the union of ``address``'s views."""
        return CombinedSamplingService(self, address)


class CombinedSamplingService:
    """``init`` / ``get_peer`` over the union of one node's views."""

    __slots__ = ("_overlay", "_address")

    def __init__(self, overlay: CombinedOverlay, address: Address) -> None:
        if address not in overlay:
            raise ConfigurationError(f"unknown address {address!r}")
        self._overlay = overlay
        self._address = address

    @property
    def address(self) -> Address:
        """The node this service belongs to."""
        return self._address

    @property
    def initialized(self) -> bool:
        """Whether any underlying view is non-empty."""
        return bool(self._overlay.combined_view(self._address))

    def init(self, contacts: Sequence[Address] = ()) -> None:
        """Seed every instance's view with ``contacts``."""
        for engine in self._overlay.engines:
            engine.service(self._address).init(contacts)

    def get_peer(self) -> Optional[Address]:
        """Uniform random member of the combined view."""
        if self._address not in self._overlay:
            raise NotInitializedError(
                f"{self._address!r} is no longer part of the overlay"
            )
        combined = self._overlay.combined_view(self._address)
        if not combined:
            return None
        return self._overlay.rng.choice(combined).address

    def get_peers(self, count: int) -> List[Address]:
        """``count`` samples by repeated :meth:`get_peer` calls."""
        samples: List[Address] = []
        for _ in range(count):
            peer = self.get_peer()
            if peer is None:
                break
            samples.append(peer)
        return samples

"""PeerSwap: swap-based peer sampling (Guerraoui et al., arXiv 2408.03829).

PeerSwap replaces the generic framework's *merge-and-truncate* view
update with a strict **swap**: the initiator removes a random subset of
its own view and sends it, the responder removes an equally sized reply
subset before integrating, and each side installs exactly what the other
gave up.  No descriptor is ever duplicated by an exchange, so the global
multiset of pointers is (approximately) conserved -- the property behind
PeerSwap's provable closeness-to-uniform guarantees, and the reason it
is the natural honest baseline for the adversarial experiments: a hub
cannot inflate its in-degree through swaps alone, it can only relocate
the pointers it already owns.

:class:`PeerSwapNode` implements the same exchange interface as
:class:`~repro.core.protocol.GossipNode` (and :class:`CyclonNode`), so
:class:`~repro.simulation.engine.CycleEngine` drives it unchanged; use
:func:`peerswap_engine` or the ``"peerswap"`` entry of
:data:`repro.extensions.registry.EXTENSION_PROTOCOLS`.  Descriptor ages
reuse the ``hop_count`` field, as in the Cyclon port.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional

from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ConfigurationError
from repro.core.protocol import Exchange
from repro.core.view import PartialView

from repro.simulation.engine import CycleEngine


@dataclasses.dataclass(frozen=True)
class PeerSwapConfig:
    """PeerSwap parameters: view capacity and swap subset size."""

    view_size: int = 30
    swap_size: int = 8

    def __post_init__(self) -> None:
        if self.view_size < 1:
            raise ConfigurationError(
                f"view_size must be >= 1, got {self.view_size}"
            )
        if not 1 <= self.swap_size <= self.view_size:
            raise ConfigurationError(
                f"swap_size must be in [1, view_size], got {self.swap_size}"
            )

    @property
    def label(self) -> str:
        """Display label, e.g. ``peerswap(c=30,k=8)``."""
        return f"peerswap(c={self.view_size},k={self.swap_size})"


class PeerSwapNode:
    """One PeerSwap participant, engine-compatible with ``GossipNode``."""

    __slots__ = ("address", "config", "view", "_rng", "_sent", "liveness")

    def __init__(
        self,
        address: Address,
        config: PeerSwapConfig,
        rng: random.Random,
        view: Optional[PartialView] = None,
    ) -> None:
        self.address = address
        self.config = config
        self._rng = rng
        self.view = view if view is not None else PartialView(config.view_size)
        # Swap subsets removed-and-sent to peers whose replies are still in
        # flight, keyed by peer address: on a failed exchange the entries
        # are simply lost (PeerSwap tolerates this; pointer count shrinks
        # by at most swap_size per failure and churn refills it).
        self._sent: Dict[Address, List[NodeDescriptor]] = {}
        # Membership-oracle slot for interface parity with GossipNode.
        # Like Cyclon, PeerSwap does not consult it for partner selection:
        # a dead partner costs one lost swap subset, nothing else.
        self.liveness = None

    def __repr__(self) -> str:
        return (
            f"PeerSwapNode(address={self.address!r}, "
            f"{self.config.label}, view_size={len(self.view)})"
        )

    def sample_peer(self) -> Optional[Address]:
        """Uniform random view member (the ``getPeer`` primitive)."""
        entry = self.view.random_entry(self._rng)
        return None if entry is None else entry.address

    # -- active thread ------------------------------------------------------

    def begin_exchange(self) -> Optional[Exchange]:
        """Start a swap: pick a uniform partner, remove and send a subset.

        The partner itself is excluded from the outgoing subset (sending
        a pointer to the receiver would destroy it: the receiver skips
        self-descriptors), so the swapped pointers stay conserved.
        """
        self.view.increase_hop_counts()
        partner_entry = self.view.random_entry(self._rng)
        if partner_entry is None:
            return None
        partner = partner_entry.address
        candidates = [
            entry for entry in self.view.entries if entry.address != partner
        ]
        outgoing = self._rng.sample(
            candidates, min(self.config.swap_size, len(candidates))
        )
        for entry in outgoing:
            self.view.remove(entry.address)
        payload = [NodeDescriptor(self.address, 0)]
        payload.extend(entry.copy() for entry in outgoing)
        self._sent[partner] = outgoing
        return Exchange(partner, payload)

    def handle_response(self, peer: Address, payload: List[NodeDescriptor]) -> None:
        """Install the partner's reply subset in the vacated slots."""
        self._sent.pop(peer, None)
        self._integrate(payload)

    # -- passive thread -----------------------------------------------------

    def handle_request(
        self, peer: Address, payload: List[NodeDescriptor]
    ) -> List[NodeDescriptor]:
        """Answer a swap: remove a reply subset first, then integrate.

        The reply subset is removed *before* the received entries are
        merged so a descriptor never travels back to the node that just
        sent it; the requester is excluded from the reply for the same
        conservation reason as in :meth:`begin_exchange`.
        """
        candidates = [
            entry for entry in self.view.entries if entry.address != peer
        ]
        replied = self._rng.sample(
            candidates, min(self.config.swap_size, len(candidates))
        )
        for entry in replied:
            self.view.remove(entry.address)
        reply = [NodeDescriptor(self.address, 0)]
        reply.extend(entry.copy() for entry in replied)
        self._integrate(payload)
        return reply

    # -- shared merge rule --------------------------------------------------

    def _integrate(self, received: List[NodeDescriptor]) -> None:
        """Install received descriptors into free slots, skipping self and
        duplicates; drop the overflow if the view is already full."""
        for descriptor in received:
            if descriptor.address == self.address:
                continue
            if descriptor.address in self.view:
                continue
            if self.view.is_full():
                break
            entries = self.view.entries
            entries.append(descriptor)
            self.view.replace(entries)


def peerswap_engine(
    config: Optional[PeerSwapConfig] = None,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> CycleEngine:
    """A :class:`CycleEngine` whose nodes run PeerSwap.

    >>> engine = peerswap_engine(PeerSwapConfig(view_size=10, swap_size=4))
    """
    swap_config = config if config is not None else PeerSwapConfig()

    def factory(address: Address, engine_rng: random.Random) -> PeerSwapNode:
        return PeerSwapNode(address, swap_config, engine_rng)

    return CycleEngine(seed=seed, rng=rng, node_factory=factory)

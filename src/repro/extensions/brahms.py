"""Brahms: Byzantine-resilient peer sampling (Bortnikov et al. 2009).

The attack artefact showed how cheaply the paper's generic node is
poisoned: it believes every descriptor it is told, so a 1% hub attacker
owning the freshness race captures 41% of the in-degree mass.  Brahms
(Bortnikov, Gurevich, Keidar, Kliot & Shraer, "Brahms: Byzantine
resilient random membership sampling", PODC'08 / Computer Networks
2009) defends the *sampling layer* with three mechanisms, all local:

1. **Limited pushes** -- a push advertises exactly one id, the sender's
   own.  Payload entries beyond that are attacker noise and ignored;
   the push candidate is the *engine-provided sender identity*, which a
   payload cannot forge.
2. **Per-round quotas with over-quota discard** -- a node expects about
   one push per round.  When the weighted volume of received pushes
   exceeds ``push_quota``, the round is suspected flooded and the view
   update is *discarded* (the old view is kept).  An attacker shouting
   louder freezes views instead of filling them.
3. **Per-peer pull caps** -- Brahms spreads each round's pull over
   ``beta * l1`` peers so no single responder owns the pull evidence;
   the engines drive one exchange per cycle, so the equivalent defence
   here caps how many ids one reply may contribute to the pull pool
   (a uniform sub-sample -- unbiased for honest replies, ruinous for a
   poisoned one that needs the whole attacker set admitted at once).
4. **Min-wise independent samplers** -- every id observed in pushes and
   pulls feeds a bank of keyed min-hash samplers
   (:class:`repro.defenses.sampling.SamplerGroup`).  Each sampler
   converges to a uniform sample of the observed id *set*; repetition
   buys the attacker nothing.  ``getPeer`` answers from the samplers,
   and a slice of every view rebuild comes from them, giving the view a
   history floor the attacker cannot displace.

Each round the view is rebuilt from three slices -- recent push
senders, pulled ids, sampler history -- only when both push and pull
evidence exists and the quota held; shortfall is topped up from the old
view so the view size stays exactly ``view_size``.

:class:`BrahmsNode` implements the same exchange interface as
:class:`~repro.core.protocol.GossipNode`, so the object engines drive
it unchanged; the registry pins it to the ``cycle`` engine like the
other extension samplers.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional

from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ConfigurationError
from repro.core.protocol import Exchange
from repro.core.view import PartialView
from repro.defenses.sampling import SamplerGroup
from repro.simulation.engine import CycleEngine

__all__ = ["BrahmsConfig", "BrahmsNode", "brahms_engine"]

_SAMPLER_SEED = 0x42AA_11C5
"""Base key-derivation constant for the sampler banks."""


def _sampler_seed(address: Address) -> int:
    """Per-node sampler key seed, derived from the node's address.

    Each node needs *independent* min-hash keys -- with a shared key
    every node's samplers would converge to the same global hash minima
    and concentrate the whole overlay's in-degree on a handful of ids.
    Hashing the address keeps the derivation deterministic (reproducible
    runs) without consuming any engine RNG draws.
    """
    from hashlib import blake2b

    material = b"%d:%r" % (_SAMPLER_SEED, address)
    return int.from_bytes(
        blake2b(material, digest_size=8).digest(), "little"
    )


@dataclasses.dataclass(frozen=True)
class BrahmsConfig:
    """Brahms parameters.

    Parameters
    ----------
    view_size:
        View capacity ``c`` (the union of the three slices).
    push_quota:
        Per-round weighted push budget.  Every received push costs
        ``max(1, len(payload))`` -- a correct Brahms push carries one
        descriptor, so bloated poison payloads burn quota fast -- and a
        round whose total exceeds the quota keeps the old view.
    sampler_count:
        Size of the min-wise sampler bank (Brahms' ``l2``).  ``None``
        defaults to ``view_size``.
    sample_slice:
        Number of view slots rebuilt from sampler history each round
        (Brahms' ``gamma * c``).  ``None`` defaults to
        ``max(1, view_size // 5)``; the remainder is split evenly
        between push and pull slices.
    pull_per_peer:
        Cap on how many ids a *single* pull reply may contribute to the
        round's pull evidence.  Brahms issues ``beta * l1`` pulls per
        round so no one responder dominates the pull pool; the engines
        drive one exchange per cycle, so without a cap a single
        poisoned reply fills the whole pull slice.  Capped ids are
        sampled uniformly from the reply (unbiased for honest peers);
        the full reply still feeds the samplers, which repetition
        cannot displace.  ``None`` defaults to
        ``max(1, view_size // 6)``.
    """

    view_size: int = 30
    push_quota: int = 8
    sampler_count: Optional[int] = None
    sample_slice: Optional[int] = None
    pull_per_peer: Optional[int] = None

    def __post_init__(self) -> None:
        if self.view_size < 1:
            raise ConfigurationError(
                f"view_size must be >= 1, got {self.view_size}"
            )
        if self.push_quota < 1:
            raise ConfigurationError(
                f"push_quota must be >= 1, got {self.push_quota}"
            )
        if self.sampler_count is not None and self.sampler_count < 1:
            raise ConfigurationError(
                f"sampler_count must be >= 1, got {self.sampler_count}"
            )
        if self.sample_slice is not None and not (
            0 <= self.sample_slice <= self.view_size
        ):
            raise ConfigurationError(
                "sample_slice must be in [0, view_size], got "
                f"{self.sample_slice}"
            )
        if self.pull_per_peer is not None and self.pull_per_peer < 1:
            raise ConfigurationError(
                f"pull_per_peer must be >= 1, got {self.pull_per_peer}"
            )

    # engine/adversary interface parity with ProtocolConfig: exchanges
    # carry a (one-entry) push and always pull a reply.
    @property
    def push(self) -> bool:
        return True

    @property
    def pull(self) -> bool:
        return True

    @property
    def pull_accept(self) -> int:
        """Resolved per-reply pull contribution cap."""
        return (
            self.pull_per_peer
            if self.pull_per_peer is not None
            else max(1, self.view_size // 6)
        )

    @property
    def samplers(self) -> int:
        """Resolved sampler bank size."""
        return (
            self.sampler_count
            if self.sampler_count is not None
            else self.view_size
        )

    @property
    def slices(self) -> "tuple[int, int, int]":
        """Resolved ``(push, pull, sampler)`` slice sizes (sum = c)."""
        c = self.view_size
        n_samp = (
            self.sample_slice
            if self.sample_slice is not None
            else max(1, c // 5)
        )
        n_samp = min(n_samp, c)
        n_push = (c - n_samp + 1) // 2
        n_pull = c - n_samp - n_push
        return n_push, n_pull, n_samp

    @property
    def label(self) -> str:
        """Display label, e.g. ``brahms(c=30,q=8,s=30)``."""
        return (
            f"brahms(c={self.view_size},q={self.push_quota},"
            f"s={self.samplers})"
        )


class BrahmsNode:
    """One Brahms participant, engine-compatible with ``GossipNode``."""

    __slots__ = (
        "address",
        "config",
        "view",
        "_rng",
        "liveness",
        "_samplers",
        "_push_pool",
        "_pull_pool",
        "_push_weight",
    )

    def __init__(
        self,
        address: Address,
        config: BrahmsConfig,
        rng: random.Random,
        view: Optional[PartialView] = None,
    ) -> None:
        self.address = address
        self.config = config
        self._rng = rng
        self.view = view if view is not None else PartialView(config.view_size)
        self.liveness = None
        self._samplers = SamplerGroup(config.samplers, _sampler_seed(address))
        self._push_pool: List[Address] = []  # push senders, this round
        self._pull_pool: List[Address] = []  # pulled ids, this round
        self._push_weight = 0  # weighted push volume against the quota

    def __repr__(self) -> str:
        return (
            f"BrahmsNode(address={self.address!r}, "
            f"{self.config.label}, view_size={len(self.view)})"
        )

    # -- peer sampling primitive -------------------------------------------

    def sample_peer(self) -> Optional[Address]:
        """``getPeer`` from the sampler bank (uniform over history).

        Falls back to a uniform view member while the samplers are still
        empty (before the first exchange evidence arrives).
        """
        values = self._samplers.values()
        if values:
            return values[self._rng.randrange(len(values))]
        entry = self.view.random_entry(self._rng)
        return None if entry is None else entry.address

    # -- active thread ------------------------------------------------------

    def begin_exchange(self) -> Optional[Exchange]:
        """Close the previous round, then push our id to a random peer.

        Round close-out first applies the quota rule and (when evidence
        allows) rebuilds the view from the push/pull/sampler slices;
        then the view ages and a uniformly random live member receives
        this node's limited push -- a single fresh self-descriptor.  The
        pull half of the exchange is the peer's reply.
        """
        self._finish_round()
        if self.liveness is not None:
            self._samplers.revalidate(self.liveness)
        self.view.increase_hop_counts()
        is_live = self.liveness
        if is_live is None:
            candidates = list(self.view)
        else:
            candidates = [d for d in self.view if is_live(d.address)]
        if not candidates:
            return None
        peer = candidates[self._rng.randrange(len(candidates))].address
        return Exchange(peer, [NodeDescriptor(self.address, 0)])

    def handle_response(self, peer: Address, payload: List[NodeDescriptor]) -> None:
        """Collect the pulled ids; they feed this round's pull slice.

        Every distinct id feeds the samplers (min-hash minima cannot be
        displaced by volume), but at most ``pull_per_peer`` of them --
        sampled uniformly -- enter the pull evidence pool, so one
        poisoned reply cannot monopolise the round's pull slice.
        """
        own = self.address
        unique = list(
            dict.fromkeys(
                d.address for d in payload if d.address != own
            )
        )
        if not unique:
            return
        self._samplers.offer(unique)
        cap = self.config.pull_accept
        if len(unique) > cap:
            unique = self._rng.sample(unique, cap)
        self._pull_pool.extend(unique)

    # -- passive thread ------------------------------------------------------

    def handle_request(
        self, peer: Address, payload: List[NodeDescriptor]
    ) -> List[NodeDescriptor]:
        """Receive a push from ``peer``; reply with our view (the pull).

        Only the transport-level sender identity enters the push pool --
        payload contents are untrusted and cannot nominate third
        parties.  The push costs ``max(1, len(payload))`` quota, so
        oversized poison payloads trip the round-discard defence.
        """
        self._push_weight += max(1, len(payload))
        if peer != self.address:
            self._push_pool.append(peer)
            self._samplers.offer((peer,))
        reply = [NodeDescriptor(self.address, 0)]
        reply.extend(descriptor.copy() for descriptor in self.view)
        return reply

    # -- round close-out -----------------------------------------------------

    def _finish_round(self) -> None:
        """Apply Brahms' view-update rule for the evidence gathered since
        the previous active turn."""
        push_pool = self._push_pool
        pull_pool = self._pull_pool
        over_quota = self._push_weight > self.config.push_quota
        self._push_weight = 0
        if not push_pool and not pull_pool:
            return
        self._push_pool = []
        self._pull_pool = []
        if over_quota:
            # Suspected push flood: keep the old view untouched.
            return
        if not push_pool or not pull_pool:
            # Brahms updates only on rounds with both kinds of evidence;
            # one-sided rounds would let a pull-only attacker dominate.
            return
        rng = self._rng
        own = self.address
        n_push, n_pull, n_samp = self.config.slices
        chosen: List[Address] = []
        chosen_set = set()

        def take(pool: List[Address], budget: int) -> None:
            unique = [
                a
                for a in dict.fromkeys(pool)
                if a != own and a not in chosen_set
            ]
            picked = (
                rng.sample(unique, budget)
                if len(unique) > budget
                else unique
            )
            chosen.extend(picked)
            chosen_set.update(picked)

        take(push_pool, n_push)
        take(pull_pool, n_pull)
        take(self._samplers.values(), n_samp)
        old_entries = self.view.entries
        rebuilt = [NodeDescriptor(address, 0) for address in chosen]
        if len(rebuilt) < self.config.view_size:
            # top the shortfall up from the old view, freshest first,
            # so the view size (and the overlay's degree) stays stable.
            for descriptor in old_entries:
                if len(rebuilt) >= self.config.view_size:
                    break
                if descriptor.address in chosen_set:
                    continue
                chosen_set.add(descriptor.address)
                rebuilt.append(descriptor)
        self.view.replace(rebuilt)


def brahms_engine(
    config: Optional[BrahmsConfig] = None,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> CycleEngine:
    """A :class:`CycleEngine` whose nodes run Brahms.

    >>> engine = brahms_engine(BrahmsConfig(view_size=10))
    """
    brahms_config = config if config is not None else BrahmsConfig()

    def factory(address: Address, engine_rng: random.Random) -> BrahmsNode:
        return BrahmsNode(address, brahms_config, engine_rng)

    return CycleEngine(seed=seed, rng=rng, node_factory=factory)

"""SCAMP-style reactive membership (Ganesh, Kermarrec & Massoulie).

The paper's related work (Section 9) contrasts its proactive gossip
protocols with SCAMP, a *reactive* protocol: views change only when nodes
join or leave, and the protocol self-sizes views to about
``(c + 1) * log(N)`` without knowing N.  This module implements the core
subscription algorithm:

- a joiner sends a subscription to a contact;
- the contact forwards the new address to **all** members of its view plus
  ``c`` additional random members;
- a node receiving a forwarded subscription keeps it with probability
  ``1 / (1 + view size)``, otherwise forwards it to a random view member
  (bounded by a TTL to guarantee termination);
- graceful leavers hand their in-links replacement targets from their own
  view (unsubscription); crashed nodes simply leave dead links behind.

Messages are processed through an in-memory FIFO, so a join completes
before the next membership event -- adequate for the topological analyses
performed here (SCAMP is not cycle-driven, so the engines do not apply).
"""

from __future__ import annotations

import dataclasses
import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError, NodeNotFoundError


@dataclasses.dataclass(frozen=True)
class ScampConfig:
    """SCAMP parameters.

    ``c`` controls fault tolerance: the protocol aims at view sizes around
    ``(c + 1) * log(N)``; ``ttl`` bounds subscription forwarding.
    """

    c: int = 0
    ttl: int = 32

    def __post_init__(self) -> None:
        if self.c < 0:
            raise ConfigurationError(f"c must be >= 0, got {self.c}")
        if self.ttl < 1:
            raise ConfigurationError(f"ttl must be >= 1, got {self.ttl}")


class _ScampNode:
    __slots__ = ("address", "view", "in_view")

    def __init__(self, address: Address) -> None:
        self.address = address
        self.view: List[Address] = []   # out-links (PartialView in SCAMP terms)
        self.in_view: List[Address] = []  # who links to us (for unsubscription)


class ScampNetwork:
    """A population of SCAMP nodes with FIFO message processing."""

    def __init__(
        self, config: Optional[ScampConfig] = None, seed: Optional[int] = None
    ) -> None:
        self.config = config if config is not None else ScampConfig()
        self.rng = random.Random(seed)
        self._nodes: Dict[Address, _ScampNode] = {}
        self._queue: Deque[Tuple[Address, Address, int]] = deque()
        self._next_auto_address = 0

    # -- population -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, address: Address) -> bool:
        return address in self._nodes

    def addresses(self) -> List[Address]:
        """All live addresses."""
        return list(self._nodes)

    def view_of(self, address: Address) -> List[Address]:
        """The out-links (partial view) of ``address``."""
        return list(self._node(address).view)

    def views(self) -> Dict[Address, List[Address]]:
        """All views, for :class:`~repro.graph.snapshot.GraphSnapshot`."""
        return {a: list(n.view) for a, n in self._nodes.items()}

    def _node(self, address: Address) -> _ScampNode:
        try:
            return self._nodes[address]
        except KeyError:
            raise NodeNotFoundError(address) from None

    # -- membership operations ---------------------------------------------

    def add_node(
        self, address: Optional[Address] = None, contact: Optional[Address] = None
    ) -> Address:
        """Join a node, subscribing through ``contact`` when given."""
        if address is None:
            while self._next_auto_address in self._nodes:
                self._next_auto_address += 1
            address = self._next_auto_address
            self._next_auto_address += 1
        if address in self._nodes:
            raise ConfigurationError(f"node {address!r} already exists")
        node = _ScampNode(address)
        self._nodes[address] = node
        if contact is not None:
            if contact not in self._nodes:
                raise NodeNotFoundError(contact)
            self._subscribe(address, contact)
        return address

    def _subscribe(self, subscriber: Address, contact: Address) -> None:
        node = self._nodes[subscriber]
        if contact not in node.view:
            node.view.append(contact)
            self._nodes[contact].in_view.append(subscriber)
        contact_node = self._nodes[contact]
        # Forward to the whole view plus c extra random copies.
        targets = list(contact_node.view)
        extra = self.config.c
        pool = [a for a in contact_node.view if a != subscriber]
        if not pool:
            # Lone contact: keep the subscription itself (bootstrap case).
            self._keep(contact, subscriber)
        for _ in range(extra):
            if pool:
                targets.append(self.rng.choice(pool))
        for target in targets:
            if target != subscriber:
                self._queue.append((target, subscriber, self.config.ttl))
        self._drain()

    def _keep(self, keeper: Address, subscriber: Address) -> bool:
        node = self._nodes.get(keeper)
        sub = self._nodes.get(subscriber)
        if node is None or sub is None or keeper == subscriber:
            return False
        if subscriber in node.view:
            return False
        node.view.append(subscriber)
        sub.in_view.append(keeper)
        return True

    def _drain(self) -> None:
        while self._queue:
            holder, subscriber, ttl = self._queue.popleft()
            node = self._nodes.get(holder)
            if node is None or subscriber not in self._nodes:
                continue
            keep_probability = 1.0 / (1.0 + len(node.view))
            if ttl <= 0 or self.rng.random() < keep_probability:
                if self._keep(holder, subscriber):
                    continue
                # Duplicate: forward instead (unless TTL is exhausted).
                if ttl <= 0:
                    continue
            pool = [a for a in node.view if a != subscriber]
            if pool:
                self._queue.append(
                    (self.rng.choice(pool), subscriber, ttl - 1)
                )

    def remove_node(self, address: Address, graceful: bool = True) -> None:
        """Leave the network.

        Graceful leavers run SCAMP unsubscription: each of their in-links
        is rewired to one of the leaver's own view members, preserving
        connectivity.  Crashes just delete the node (dead links remain in
        other views until their holders notice).
        """
        node = self._node(address)
        if graceful:
            replacements = [a for a in node.view if a != address]
            for index, subscriber in enumerate(node.in_view):
                holder = self._nodes.get(subscriber)
                if holder is None or address not in holder.view:
                    continue
                holder.view.remove(address)
                if replacements:
                    candidate = replacements[index % len(replacements)]
                    self._keep(subscriber, candidate)
        del self._nodes[address]
        # Purge bookkeeping references to the departed node.
        for other in self._nodes.values():
            if not graceful:
                continue  # crash: dead links intentionally stay in views
            if address in other.in_view:
                other.in_view = [a for a in other.in_view if a != address]

    def dead_link_count(self) -> int:
        """View entries pointing at departed nodes."""
        return sum(
            1
            for node in self._nodes.values()
            for target in node.view
            if target not in self._nodes
        )

    # -- sampling -------------------------------------------------------------

    def get_peer(self, address: Address) -> Optional[Address]:
        """Uniform random view member of ``address`` (the ``getPeer`` call)."""
        view = self._node(address).view
        live = [a for a in view if a in self._nodes]
        if not live:
            return None
        return self.rng.choice(live)

    def mean_view_size(self) -> float:
        """Average out-view size (SCAMP targets ``(c+1) * ln N``)."""
        if not self._nodes:
            return 0.0
        return sum(len(n.view) for n in self._nodes.values()) / len(self._nodes)


def build_scamp_network(
    n_nodes: int,
    config: Optional[ScampConfig] = None,
    seed: Optional[int] = None,
) -> ScampNetwork:
    """Grow a SCAMP network node by node through random live contacts."""
    network = ScampNetwork(config=config, seed=seed)
    first = network.add_node()
    addresses: List[Address] = [first]
    for _ in range(n_nodes - 1):
        contact = network.rng.choice(addresses)
        addresses.append(network.add_node(contact=contact))
    return network

"""Cyclon: age-based view shuffling (Voulgaris, Gavidia & van Steen).

The paper's framework generalizes push/pull view exchange; Cyclon -- the
best-known follow-on design, referenced via the routing-table precursor
[29] -- differs in three ways:

1. the initiator contacts its **oldest** view entry (like ``tail`` peer
   selection) and *removes* it from the view;
2. only a small random **shuffle subset** of ``shuffle_length`` entries
   travels, not the whole view;
3. received entries *replace the entries that were sent* (empty slots
   first), so the view size is exactly preserved and in-degree stays
   tightly balanced.

:class:`CyclonNode` implements the same exchange interface as
:class:`~repro.core.protocol.GossipNode`, so both simulation engines can
drive it unchanged (use :func:`cyclon_engine`).  Descriptor ages reuse the
``hop_count`` field.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional

from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ConfigurationError
from repro.core.protocol import Exchange
from repro.core.view import PartialView
from repro.simulation.engine import CycleEngine


@dataclasses.dataclass(frozen=True)
class CyclonConfig:
    """Cyclon parameters: view capacity and shuffle subset size."""

    view_size: int = 30
    shuffle_length: int = 8

    def __post_init__(self) -> None:
        if self.view_size < 1:
            raise ConfigurationError(
                f"view_size must be >= 1, got {self.view_size}"
            )
        if not 1 <= self.shuffle_length <= self.view_size:
            raise ConfigurationError(
                "shuffle_length must be in [1, view_size], got "
                f"{self.shuffle_length}"
            )

    @property
    def label(self) -> str:
        """Display label, e.g. ``cyclon(c=30,l=8)``."""
        return f"cyclon(c={self.view_size},l={self.shuffle_length})"


class CyclonNode:
    """One Cyclon participant, engine-compatible with ``GossipNode``."""

    __slots__ = ("address", "config", "view", "_rng", "_sent", "liveness")

    def __init__(
        self,
        address: Address,
        config: CyclonConfig,
        rng: random.Random,
        view: Optional[PartialView] = None,
    ) -> None:
        self.address = address
        self.config = config
        self._rng = rng
        self.view = view if view is not None else PartialView(config.view_size)
        # Shuffle subsets sent to peers whose replies are still in flight,
        # keyed by peer address (the replacement rule needs them).
        self._sent: Dict[Address, List[Address]] = {}
        # Engines install their membership oracle here for interface parity
        # with GossipNode, but Cyclon deliberately does NOT consult it when
        # selecting the shuffle target: contacting the oldest entry and
        # *removing it up front* is Cyclon's built-in failure detector -- if
        # the target is dead the node merely loses its turn, and one dead
        # link is purged.  (Voulgaris et al. call this the protocol's
        # self-cleaning property.)
        self.liveness = None

    def __repr__(self) -> str:
        return (
            f"CyclonNode(address={self.address!r}, "
            f"{self.config.label}, view_size={len(self.view)})"
        )

    def sample_peer(self) -> Optional[Address]:
        """Uniform random view member (the ``getPeer`` primitive)."""
        entry = self.view.random_entry(self._rng)
        return None if entry is None else entry.address

    # -- active thread ------------------------------------------------------

    def begin_exchange(self) -> Optional[Exchange]:
        """Start a shuffle: age the view, pick and remove the oldest entry.

        The request carries a fresh self-descriptor (age 0) plus up to
        ``shuffle_length - 1`` random other entries.  The oldest entry is
        removed from the view *before* the exchange: on success the peer
        answers with replacement entries, on timeout (dead peer) the node
        has purged one dead link -- Cyclon's failure detection.
        """
        self.view.increase_hop_counts()
        oldest = self.view.tail()
        if oldest is None:
            return None
        peer = oldest.address
        self.view.remove(peer)
        others = self._rng.sample(
            self.view.entries,
            min(self.config.shuffle_length - 1, len(self.view)),
        )
        payload = [NodeDescriptor(self.address, 0)]
        payload.extend(entry.copy() for entry in others)
        self._sent[peer] = [entry.address for entry in others]
        return Exchange(peer, payload)

    def handle_response(self, peer: Address, payload: List[NodeDescriptor]) -> None:
        """Merge the shuffle reply, replacing the entries sent to ``peer``."""
        sent = self._sent.pop(peer, [])
        self._integrate(payload, replaceable=sent)

    # -- passive thread ---------------------------------------------------------

    def handle_request(
        self, peer: Address, payload: List[NodeDescriptor]
    ) -> List[NodeDescriptor]:
        """Answer a shuffle with a random subset of the own view.

        The reply is selected *before* the received entries are merged, and
        the replied entries become the replaceable slots.
        """
        replied = self._rng.sample(
            self.view.entries,
            min(self.config.shuffle_length, len(self.view)),
        )
        reply = [entry.copy() for entry in replied]
        self._integrate(payload, replaceable=[e.address for e in replied])
        return reply

    # -- shared merge rule -----------------------------------------------------------

    def _integrate(
        self,
        received: List[NodeDescriptor],
        replaceable: List[Address],
    ) -> None:
        """Cyclon's merge: keep own entry on duplicates, fill empty slots
        first, then overwrite entries that were part of the shuffle."""
        replace_queue = [
            address for address in replaceable if address in self.view
        ]
        for descriptor in received:
            if descriptor.address == self.address:
                continue
            if descriptor.address in self.view:
                continue  # keep the existing (possibly fresher local) entry
            if not self.view.is_full():
                entries = self.view.entries
                entries.append(descriptor)
                self.view.replace(entries)
            elif replace_queue:
                victim = replace_queue.pop()
                self.view.remove(victim)
                entries = self.view.entries
                entries.append(descriptor)
                self.view.replace(entries)
            # View full and nothing replaceable left: drop the descriptor.


def cyclon_engine(
    config: Optional[CyclonConfig] = None,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> CycleEngine:
    """A :class:`CycleEngine` whose nodes run Cyclon.

    >>> engine = cyclon_engine(CyclonConfig(view_size=10, shuffle_length=4))
    """
    cyclon_config = config if config is not None else CyclonConfig()

    def factory(address: Address, engine_rng: random.Random) -> CyclonNode:
        return CyclonNode(address, cyclon_config, engine_rng)

    return CycleEngine(seed=seed, rng=rng, node_factory=factory)

"""Plan-addressable extension protocols.

:class:`~repro.workloads.plan.ExperimentPlan` protocol labels are
normally parsed by ``ProtocolConfig.from_label`` into the paper's
generic design space.  This registry makes the extension samplers
addressable by *name* instead, so a plan (or ``repro-experiments
run-spec``) can put ``"cyclon"`` or ``"peerswap"`` next to
``"(rand,head,pushpull)"`` in its ``protocols`` axis without
constructing engines by hand.

Each entry scales its subset parameter with the ambient view size the
same way the examples did by hand (``min(8, view_size)``), keeping the
per-exchange message cost comparable to the generic protocols at every
scale preset.

Extension protocols run on the plain :class:`CycleEngine` only: they are
bespoke node implementations without flat-array kernels, so plans must
pin ``engines=("cycle",)`` for these labels (``plan_cells`` enforces
this eagerly).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict

from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError
from repro.extensions.brahms import BrahmsConfig, BrahmsNode
from repro.extensions.cyclon import CyclonConfig, CyclonNode
from repro.extensions.peerswap import PeerSwapConfig, PeerSwapNode

NodeFactory = Callable[[Address, random.Random], object]


@dataclasses.dataclass(frozen=True)
class ExtensionProtocol:
    """One named extension sampler: config builder + node factory."""

    name: str
    description: str
    make_config: Callable[[int], object]
    """Build the protocol config for a given ambient view size."""

    def make_factory(self, config: object) -> NodeFactory:
        """An engine ``node_factory`` running this protocol."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class _CyclonProtocol(ExtensionProtocol):
    def make_factory(self, config: object) -> NodeFactory:
        def factory(address: Address, rng: random.Random) -> CyclonNode:
            return CyclonNode(address, config, rng)

        return factory


@dataclasses.dataclass(frozen=True)
class _BrahmsProtocol(ExtensionProtocol):
    def make_factory(self, config: object) -> NodeFactory:
        def factory(address: Address, rng: random.Random) -> BrahmsNode:
            return BrahmsNode(address, config, rng)

        return factory


@dataclasses.dataclass(frozen=True)
class _PeerSwapProtocol(ExtensionProtocol):
    def make_factory(self, config: object) -> NodeFactory:
        def factory(address: Address, rng: random.Random) -> PeerSwapNode:
            return PeerSwapNode(address, config, rng)

        return factory


EXTENSION_PROTOCOLS: Dict[str, ExtensionProtocol] = {
    "brahms": _BrahmsProtocol(
        name="brahms",
        description=(
            "Brahms Byzantine-resilient sampling (Bortnikov et al.); "
            "limited pushes, per-round quotas, min-wise samplers"
        ),
        make_config=lambda view_size: BrahmsConfig(view_size=view_size),
    ),
    "cyclon": _CyclonProtocol(
        name="cyclon",
        description=(
            "Cyclon age-based shuffling (Voulgaris et al.); "
            "shuffle_length=min(8, view_size)"
        ),
        make_config=lambda view_size: CyclonConfig(
            view_size=view_size, shuffle_length=min(8, view_size)
        ),
    ),
    "peerswap": _PeerSwapProtocol(
        name="peerswap",
        description=(
            "PeerSwap swap-based sampling (Guerraoui et al., "
            "arXiv 2408.03829); swap_size=min(8, view_size)"
        ),
        make_config=lambda view_size: PeerSwapConfig(
            view_size=view_size, swap_size=min(8, view_size)
        ),
    ),
}
"""Extension samplers addressable from ``ExperimentPlan.protocols``."""


def is_extension_protocol(label: str) -> bool:
    """True when ``label`` names a registered extension protocol."""
    return label.strip().lower() in EXTENSION_PROTOCOLS


def extension_protocol(label: str) -> ExtensionProtocol:
    """Resolve a protocol label to its registry entry, eagerly validated."""
    entry = EXTENSION_PROTOCOLS.get(label.strip().lower())
    if entry is None:
        known = ", ".join(sorted(EXTENSION_PROTOCOLS))
        raise ConfigurationError(
            f"unknown extension protocol {label!r}; registered: {known}"
        )
    return entry

"""The control-plane message vocabulary.

Every message travels in one control frame (:func:`repro.core.codec.
encode_control`): a versioned header carrying the message *kind* and a
request id, plus a JSON object body.  This module assigns the kinds and
provides build/parse helpers that validate bodies eagerly -- a malformed
body is a :class:`~repro.core.codec.CodecError` at the endpoint, counted
and dropped, never an exception that kills a receive loop.

Request/response pairs:

- ``JOIN`` -> ``SAMPLE``: a daemon registers its gossip address and asks
  for a bootstrap sample of live peers.  Registration is idempotent; the
  reply mirrors the request id.
- ``STATUS`` -> ``STATUS_REPLY``: an operator (the supervisor, a human
  with a UDP socket) asks the seed for its registry snapshot and the
  cluster-wide stats aggregation.

Fire-and-forget:

- ``HEARTBEAT``: refreshes the sender's TTL; optionally carries the
  daemon's counters snapshot for cluster-wide aggregation at the seed.
- ``LEAVE``: graceful deregistration on shutdown (best effort -- a
  crashed daemon simply stops heartbeating and expires).
"""

from __future__ import annotations

import random
import socket
from typing import Dict, List, Optional, Tuple

from repro.core.codec import CodecError, decode_control, encode_control
from repro.core.descriptor import Address

__all__ = [
    "KIND_JOIN",
    "KIND_SAMPLE",
    "KIND_HEARTBEAT",
    "KIND_LEAVE",
    "KIND_STATUS",
    "KIND_STATUS_REPLY",
    "KIND_NAMES",
    "join_body",
    "sample_body",
    "heartbeat_body",
    "leave_body",
    "parse_address_body",
    "parse_join",
    "parse_sample",
    "query_status",
]

KIND_JOIN = 1
KIND_SAMPLE = 2
KIND_HEARTBEAT = 3
KIND_LEAVE = 4
KIND_STATUS = 5
KIND_STATUS_REPLY = 6

KIND_NAMES: Dict[int, str] = {
    KIND_JOIN: "join",
    KIND_SAMPLE: "sample",
    KIND_HEARTBEAT: "heartbeat",
    KIND_LEAVE: "leave",
    KIND_STATUS: "status",
    KIND_STATUS_REPLY: "status-reply",
}
"""Kind byte -> human-readable name (reports, error messages)."""

MAX_SAMPLE = 128
"""Upper bound on the peer count a single JOIN may request."""


def _check_address(address: object) -> str:
    if not isinstance(address, str) or not address:
        raise CodecError(
            f"control body needs a non-empty string address, got {address!r}"
        )
    return address


# -- body builders -------------------------------------------------------------


def join_body(address: Address, count: int) -> dict:
    """Body of a JOIN request: the joiner's gossip address + sample size."""
    return {"address": _check_address(address), "count": int(count)}


def sample_body(peers: List[Address], ttl: float) -> dict:
    """Body of a SAMPLE reply: live peer addresses + the registry TTL
    (so the client knows how often it must heartbeat)."""
    return {"peers": [_check_address(p) for p in peers], "ttl": float(ttl)}


def heartbeat_body(address: Address, stats: Optional[Dict[str, int]] = None) -> dict:
    """Body of a HEARTBEAT: sender address, optional counters snapshot."""
    body: dict = {"address": _check_address(address)}
    if stats is not None:
        body["stats"] = stats
    return body


def leave_body(address: Address) -> dict:
    """Body of a LEAVE: the departing gossip address."""
    return {"address": _check_address(address)}


# -- body parsers (endpoint side; raise CodecError on any defect) --------------


def parse_address_body(body: dict) -> str:
    """Extract the mandatory ``address`` field (heartbeat/leave bodies)."""
    return _check_address(body.get("address"))


def parse_join(body: dict) -> Tuple[str, int]:
    """Validate a JOIN body; returns ``(address, clamped sample count)``."""
    address = _check_address(body.get("address"))
    count = body.get("count", MAX_SAMPLE)
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise CodecError(f"join count must be a positive int, got {count!r}")
    return address, min(count, MAX_SAMPLE)


def parse_sample(body: dict) -> Tuple[List[str], float]:
    """Validate a SAMPLE body; returns ``(peers, ttl)``."""
    peers = body.get("peers")
    if not isinstance(peers, list):
        raise CodecError(f"sample body needs a peers list, got {peers!r}")
    ttl = body.get("ttl")
    if not isinstance(ttl, (int, float)) or isinstance(ttl, bool) or ttl <= 0:
        raise CodecError(f"sample ttl must be a positive number, got {ttl!r}")
    return [_check_address(p) for p in peers], float(ttl)


def parse_stats(body: dict) -> Optional[Dict[str, int]]:
    """Extract a heartbeat's optional counters snapshot (validated)."""
    stats = body.get("stats")
    if stats is None:
        return None
    if not isinstance(stats, dict):
        raise CodecError(f"heartbeat stats must be an object, got {stats!r}")
    cleaned: Dict[str, int] = {}
    for key, value in stats.items():
        if not isinstance(key, str):
            raise CodecError(f"stats key must be a string, got {key!r}")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise CodecError(f"stats[{key!r}] must be a number, got {value!r}")
        cleaned[key] = int(value)
    return cleaned


# -- synchronous operator query -------------------------------------------------


def query_status(
    seed_address: Address,
    timeout: float = 2.0,
    retries: int = 3,
    rng: Optional[random.Random] = None,
) -> dict:
    """Ask a live seed for its STATUS snapshot over a plain UDP socket.

    Synchronous on purpose: this is the operator/orchestrator path
    (:class:`~repro.control.supervisor.ClusterSupervisor`, scripts,
    humans) which runs outside any event loop.  Each attempt waits
    ``timeout`` seconds; the datagram is re-sent ``retries`` times before
    :class:`TimeoutError` propagates (UDP loses packets, by design).
    """
    from repro.net.transport import parse_address

    host, port = parse_address(seed_address)
    rng = rng if rng is not None else random.Random()
    request_id = rng.randrange(1 << 32)
    request = encode_control(KIND_STATUS, {}, request_id)
    last_error: Optional[Exception] = None
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
        sock.settimeout(timeout)
        for _ in range(max(1, retries)):
            sock.sendto(request, (host, port))
            try:
                data, _ = sock.recvfrom(1 << 16)
                frame = decode_control(data)
            except socket.timeout as exc:
                last_error = exc
                continue
            except CodecError as exc:
                last_error = exc
                continue
            if frame.kind == KIND_STATUS_REPLY and frame.request_id == request_id:
                return frame.body
    raise TimeoutError(
        f"seed {seed_address} did not answer a status query "
        f"({retries} attempts of {timeout}s)"
    ) from last_error

"""The daemon side of the control plane: join, heartbeat, leave.

:class:`IntroducerClient` attaches to one
:class:`~repro.net.daemon.GossipDaemon` and talks to one or more seed
endpoints over its *own* datagram socket -- control traffic never mixes
with gossip frames, so the data-plane receive path stays untouched.

Joining is where deployments actually fail, so it is the hardened path:
the client cycles through every configured introducer, retries
unreachable ones with **capped exponential backoff plus jitter** (an
introducer that is down at daemon boot and comes up minutes later is
still joined -- no "contact the server once, then give up"), and adopts
the returned bootstrap sample into the daemon's view under the service
lock.  After the first successful join a background task heartbeats
every ``ttl / 3`` (carrying the daemon's counters snapshot for
cluster-wide aggregation) and :meth:`stop` deregisters gracefully.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Optional, Sequence

from repro.core.codec import CodecError, decode_control, encode_control
from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ConfigurationError, ReproError
from repro.control.messages import (
    KIND_HEARTBEAT,
    KIND_JOIN,
    KIND_LEAVE,
    KIND_SAMPLE,
    heartbeat_body,
    join_body,
    leave_body,
    parse_sample,
)
from repro.net.daemon import GossipDaemon
from repro.net.transport import DatagramTransport, UdpTransport

__all__ = ["IntroducerClient", "JoinError", "daemon_stats_snapshot"]

_ID_SPACE = 1 << 32


class JoinError(ReproError):
    """The client exhausted its join attempts without a SAMPLE reply."""


def daemon_stats_snapshot(daemon: GossipDaemon) -> Dict[str, int]:
    """The counters a daemon gossips to the seed in heartbeats.

    Plain ints only (the body is JSON): every
    :class:`~repro.net.daemon.DaemonStats` field plus the service's
    ``getPeer()`` serve counter and the current view fill.
    """
    snapshot = dict(vars(daemon.stats))
    snapshot["peers_served"] = daemon.service.samples_served
    with daemon.service.lock:
        snapshot["view_fill"] = len(daemon.node.view)
    return snapshot


class IntroducerClient:
    """Registers one daemon with the seed(s) and keeps its lease alive.

    Parameters
    ----------
    daemon:
        The gossip daemon to bootstrap and report for.
    introducers:
        One or more seed addresses, tried in rotation.
    transport:
        Control-plane endpoint; defaults to a fresh ephemeral
        :class:`~repro.net.transport.UdpTransport` on the daemon's bind
        host (tests pass a loopback transport instead).
    sample_size:
        Peers requested at join; defaults to the daemon's view capacity.
    heartbeat_interval:
        Seconds between heartbeats; default ``None`` derives ``ttl / 3``
        from the SAMPLE reply -- three missed heartbeats kill the lease.
    retry_base / retry_cap:
        First retry delay and its exponential cap, in seconds.  Each
        failed round over all introducers doubles the delay (up to the
        cap) and adds up to 50% uniform jitter so a rebooting cluster
        does not stampede the seed in lockstep.
    attempt_timeout:
        Seconds one JOIN waits for its SAMPLE before the next attempt.
    """

    def __init__(
        self,
        daemon: GossipDaemon,
        introducers: Sequence[Address],
        transport: Optional[DatagramTransport] = None,
        sample_size: Optional[int] = None,
        heartbeat_interval: Optional[float] = None,
        retry_base: float = 0.2,
        retry_cap: float = 5.0,
        attempt_timeout: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        introducers = list(introducers)
        if not introducers:
            raise ConfigurationError("need at least one introducer address")
        if retry_base <= 0 or retry_cap < retry_base:
            raise ConfigurationError(
                f"need 0 < retry_base <= retry_cap, got "
                f"{retry_base} / {retry_cap}"
            )
        if attempt_timeout <= 0:
            raise ConfigurationError(
                f"attempt_timeout must be > 0, got {attempt_timeout}"
            )
        self.daemon = daemon
        self.introducers = introducers
        if transport is None:
            # Own socket: control replies must not hit the gossip codec.
            transport = UdpTransport(daemon.network.bind_host, 0)
        self.transport = transport
        self.sample_size = (
            sample_size
            if sample_size is not None
            else daemon.node.view.capacity
        )
        self.heartbeat_interval = heartbeat_interval
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.attempt_timeout = attempt_timeout
        self._rng = rng if rng is not None else random.Random()
        self._next_id = self._rng.randrange(_ID_SPACE)
        self._pending: Dict[int, asyncio.Future] = {}
        self._heartbeat_task: Optional[asyncio.Task] = None
        self.joined = False
        self.join_attempts = 0
        self.heartbeats_sent = 0
        self.ttl: Optional[float] = None
        """The seed's lease TTL, learned from the SAMPLE reply."""
        transport.receiver = self._on_datagram

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start the control endpoint (idempotent)."""
        await self.transport.start()

    async def stop(self) -> None:
        """Deregister (best effort) and release the control endpoint."""
        task, self._heartbeat_task = self._heartbeat_task, None
        try:
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        finally:
            if self.joined:
                # Fire and forget: a lost LEAVE just means TTL expiry.
                leave = encode_control(
                    KIND_LEAVE, leave_body(self.daemon.address)
                )
                for introducer in self.introducers:
                    self.transport.send(introducer, leave)
            for future in self._pending.values():
                if not future.done():
                    future.cancel()
            self._pending.clear()
            await self.transport.close()

    # -- joining ---------------------------------------------------------------

    async def join(
        self, max_attempts: Optional[int] = None
    ) -> List[Address]:
        """Register with an introducer and adopt its bootstrap sample.

        Cycles through the configured introducers until one answers,
        sleeping between full rounds with capped exponential backoff +
        jitter.  ``max_attempts`` bounds the total JOIN datagrams sent
        (``None`` retries forever -- the daemon keeps answering gossip
        meanwhile, so waiting is free); exhausting it raises
        :class:`JoinError`.

        On success the sample is merged into the daemon's view (under
        the service lock, hop count 0, existing entries kept up to
        capacity), heartbeats start, and the peer list is returned --
        possibly empty when this node is the first to register, which
        is not a failure: the *next* joiner will be pointed here.
        """
        delay = self.retry_base
        attempts = 0
        while True:
            for introducer in self.introducers:
                attempts += 1
                self.join_attempts += 1
                try:
                    peers, ttl = await self._join_once(introducer)
                except asyncio.TimeoutError:
                    peers = None
                    ttl = None
                if peers is not None:
                    self.ttl = ttl
                    self._adopt(peers)
                    self.joined = True
                    self._start_heartbeats()
                    return peers
                if max_attempts is not None and attempts >= max_attempts:
                    raise JoinError(
                        f"no introducer of {self.introducers} answered "
                        f"within {attempts} attempt(s)"
                    )
            # Full round failed: back off (capped, jittered), try again.
            await asyncio.sleep(delay * (1.0 + 0.5 * self._rng.random()))
            delay = min(delay * 2.0, self.retry_cap)

    async def _join_once(self, introducer: Address):
        request_id = self._allocate_id()
        request = encode_control(
            KIND_JOIN,
            join_body(self.daemon.address, self.sample_size),
            request_id,
        )
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self.transport.send(introducer, request)
        try:
            return await asyncio.wait_for(future, self.attempt_timeout)
        finally:
            self._pending.pop(request_id, None)

    def _adopt(self, peers: List[Address]) -> None:
        """Merge the bootstrap sample into the daemon's view (front-loaded,
        hop count 0 -- the same contract as ``PeerSamplingService.init``,
        but unconditional so re-joins refresh an already-seeded view)."""
        own = self.daemon.address
        entries = [NodeDescriptor(peer, 0) for peer in peers if peer != own]
        if not entries:
            return
        service = self.daemon.service
        with service.lock:
            view = self.daemon.node.view
            held = {entry.address for entry in entries}
            entries.extend(
                d for d in view if d.address not in held and d.address != own
            )
            view.replace(entries[: view.capacity])

    # -- heartbeats --------------------------------------------------------------

    def _start_heartbeats(self) -> None:
        if self._heartbeat_task is not None and not self._heartbeat_task.done():
            return
        interval = self.heartbeat_interval
        if interval is None:
            interval = (self.ttl or 10.0) / 3.0
        self._heartbeat_task = asyncio.get_running_loop().create_task(
            self._heartbeat_loop(interval)
        )

    async def _heartbeat_loop(self, interval: float) -> None:
        while True:
            # Jitter desynchronizes a cluster started in lockstep.
            await asyncio.sleep(interval * (0.9 + 0.2 * self._rng.random()))
            self.send_heartbeat()

    def send_heartbeat(self) -> None:
        """Send one heartbeat (with the counters snapshot) to every
        introducer.  Fire and forget -- a lost heartbeat is absorbed by
        the TTL slack; exposed so lockstep tests can pump liveness
        without wall-clock sleeps."""
        body = heartbeat_body(
            self.daemon.address, daemon_stats_snapshot(self.daemon)
        )
        frame = encode_control(KIND_HEARTBEAT, body)
        for introducer in self.introducers:
            self.transport.send(introducer, frame)
        self.heartbeats_sent += 1

    # -- receive path --------------------------------------------------------------

    def _allocate_id(self) -> int:
        allocated = self._next_id
        self._next_id = (self._next_id + 1) % _ID_SPACE
        return allocated

    def _on_datagram(self, data: bytes, sender: Address) -> None:
        try:
            frame = decode_control(data)
        except CodecError:
            return
        if frame.kind != KIND_SAMPLE:
            return
        future = self._pending.get(frame.request_id)
        if future is None or future.done():
            return  # late or duplicate reply; the join already moved on
        try:
            future.set_result(parse_sample(frame.body))
        except CodecError:
            return

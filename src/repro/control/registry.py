"""TTL-based liveness registry: the state behind the seed node.

:class:`SeedRegistry` maps gossip addresses to leases.  A registration
or heartbeat renews the lease for one TTL; entries whose lease has
lapsed are expired *lazily* -- every read/write sweeps first -- so
behavior is fully deterministic under an injectable clock (tests hand in
a fake ``clock`` and advance it explicitly; production uses
``time.monotonic``).

The registry also stores the most recent counters snapshot each daemon
gossiped in its heartbeats, which is what the seed aggregates into the
cluster-wide metrics view (:func:`repro.control.metrics.seed_metrics`).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError

__all__ = ["SeedRegistry"]


class _Lease:
    __slots__ = ("deadline", "registered_at", "heartbeats", "stats")

    def __init__(self, deadline: float, registered_at: float) -> None:
        self.deadline = deadline
        self.registered_at = registered_at
        self.heartbeats = 0
        self.stats: Optional[Dict[str, int]] = None


class SeedRegistry:
    """Liveness table with per-entry TTL leases (injectable clock).

    Parameters
    ----------
    ttl:
        Lease length in clock units (seconds under the default clock).
        A daemon that neither re-registers nor heartbeats within one TTL
        is considered dead and silently expired.
    clock:
        Monotonic time source.  Tests inject a controllable fake; the
        registry never calls anything else, so expiry is deterministic.
    rng:
        Source of sampling randomness for :meth:`sample` (seeded in
        tests for reproducible bootstrap hand-outs).
    """

    def __init__(
        self,
        ttl: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ) -> None:
        if ttl <= 0:
            raise ConfigurationError(f"registry ttl must be > 0, got {ttl}")
        self.ttl = ttl
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()
        self._leases: Dict[Address, _Lease] = {}
        self.registrations = 0
        """JOIN registrations accepted (renewals of known entries included)."""
        self.heartbeats = 0
        """Heartbeats applied (unknown senders count as registrations too)."""
        self.departures = 0
        """Graceful LEAVE deregistrations."""
        self.expirations = 0
        """Entries dropped because their lease lapsed."""

    def __len__(self) -> int:
        self.expire()
        return len(self._leases)

    def __contains__(self, address: Address) -> bool:
        self.expire()
        return address in self._leases

    # -- mutation ----------------------------------------------------------

    def register(self, address: Address) -> bool:
        """Register (or renew) one address; returns whether it was new.

        Re-registration is idempotent: a daemon that retries its JOIN --
        because the SAMPLE reply was lost, or after a restart -- simply
        renews its lease; nothing is duplicated and nothing errors.
        """
        now = self._clock()
        self._sweep(now)
        self.registrations += 1
        lease = self._leases.get(address)
        if lease is None:
            self._leases[address] = _Lease(now + self.ttl, now)
            return True
        lease.deadline = now + self.ttl
        return False

    def heartbeat(
        self, address: Address, stats: Optional[Dict[str, int]] = None
    ) -> bool:
        """Renew one lease (registering unknown senders); returns whether
        the address was already known.

        Unknown heartbeaters are (re-)registered rather than rejected:
        after a seed restart the surviving daemons' next heartbeats
        repopulate the registry without any re-join round.
        """
        now = self._clock()
        self._sweep(now)
        self.heartbeats += 1
        lease = self._leases.get(address)
        known = lease is not None
        if lease is None:
            lease = _Lease(now + self.ttl, now)
            self._leases[address] = lease
        lease.deadline = now + self.ttl
        lease.heartbeats += 1
        if stats is not None:
            lease.stats = dict(stats)
        return known

    def deregister(self, address: Address) -> bool:
        """Remove one address (graceful LEAVE); returns whether it existed."""
        self._sweep(self._clock())
        if self._leases.pop(address, None) is not None:
            self.departures += 1
            return True
        return False

    def expire(self) -> List[Address]:
        """Drop every lapsed lease; returns the expired addresses."""
        return self._sweep(self._clock())

    def _sweep(self, now: float) -> List[Address]:
        expired = [
            address
            for address, lease in self._leases.items()
            if lease.deadline <= now
        ]
        for address in expired:
            del self._leases[address]
        self.expirations += len(expired)
        return expired

    # -- queries -----------------------------------------------------------

    def live(self) -> List[Address]:
        """Live addresses in registration order (after expiry sweep)."""
        self.expire()
        return list(self._leases)

    def remaining(self, address: Address) -> Optional[float]:
        """Seconds of lease left for ``address`` (``None`` if unknown)."""
        self.expire()
        lease = self._leases.get(address)
        if lease is None:
            return None
        return lease.deadline - self._clock()

    def sample(
        self, count: int, exclude: Sequence[Address] = ()
    ) -> List[Address]:
        """A uniform sample (without replacement) of live addresses.

        Returns fewer than ``count`` entries when the registry holds
        fewer -- honest shortfall, like
        :meth:`~repro.core.service.PeerSamplingService.get_peers`.
        """
        self.expire()
        pool = [a for a in self._leases if a not in set(exclude)]
        if count >= len(pool):
            return pool
        return self._rng.sample(pool, count)

    def stats_of(self, address: Address) -> Optional[Dict[str, int]]:
        """The most recent counters snapshot gossiped by ``address``."""
        self.expire()
        lease = self._leases.get(address)
        if lease is None or lease.stats is None:
            return None
        return dict(lease.stats)

    def stats_totals(self) -> Dict[str, int]:
        """Sum of the latest per-daemon counters over all live entries."""
        self.expire()
        totals: Dict[str, int] = {}
        for lease in self._leases.values():
            if lease.stats is None:
                continue
            for key, value in lease.stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def snapshot(self) -> dict:
        """A JSON-ready view of the registry (the STATUS reply body)."""
        self.expire()
        now = self._clock()
        nodes = {
            str(address): {
                "remaining": round(lease.deadline - now, 6),
                "heartbeats": lease.heartbeats,
                "stats": lease.stats,
            }
            for address, lease in self._leases.items()
        }
        return {
            "live": len(self._leases),
            "ttl": self.ttl,
            "nodes": nodes,
            "totals": self.stats_totals(),
            "counters": {
                "registrations": self.registrations,
                "heartbeats": self.heartbeats,
                "departures": self.departures,
                "expirations": self.expirations,
            },
        }

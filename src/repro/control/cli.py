"""``repro-seed``: run the cluster's introduction endpoint.

Boot the seed first, then point every ``repro-node`` at it::

    repro-seed --bind 127.0.0.1:9900 --ttl 10
    repro-node --bind 127.0.0.1:0 --introducer 127.0.0.1:9900

The seed hands joining daemons a bootstrap sample of live peers and
tracks liveness through TTL leases renewed by heartbeats.  It carries
control traffic only -- gossip never traverses it, so the overlay keeps
running if the seed dies (restart it and the survivors' next heartbeats
repopulate the registry).

``--metrics-port`` additionally serves the seed's counters -- including
the cluster-wide aggregation of the stats daemons gossip in their
heartbeats -- in Prometheus text format on ``/metrics`` (and as JSON on
``/metrics.json``).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from repro.core.errors import ReproError
from repro.control.metrics import MetricsServer, seed_metrics
from repro.control.seed import SeedService
from repro.net.cli import _parse_bind
from repro.net.transport import UdpTransport

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-seed",
        description="Run the introduction/liveness seed for a live "
        "peer-sampling cluster (control plane only; gossip never "
        "traverses the seed).",
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="host:port to bind (port 0 = ephemeral; default %(default)s)",
    )
    parser.add_argument(
        "--ttl", type=float, default=10.0, metavar="SECONDS",
        help="liveness lease length; daemons heartbeat at ttl/3 "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus metrics over HTTP on this port "
        "(0 = ephemeral; default: no metrics endpoint)",
    )
    parser.add_argument(
        "--report-every", type=float, default=10.0, metavar="SECONDS",
        help="status line interval (default %(default)s; 0 disables)",
    )
    parser.add_argument(
        "--advertise", default=None, metavar="HOST",
        help="host to advertise (required when binding 0.0.0.0)",
    )
    return parser


def _status_line(seed: SeedService) -> str:
    stats = seed.stats
    return (
        f"[{seed.address}] live={len(seed.registry)} "
        f"joins={stats.joins} heartbeats={stats.heartbeats} "
        f"leaves={stats.leaves} expired={seed.registry.expirations} "
        f"bad={stats.invalid_messages}"
    )


async def _run_seed(args: argparse.Namespace) -> int:
    host, port = _parse_bind(args.bind)
    transport = UdpTransport(host, port, advertise_host=args.advertise)
    seed = SeedService(transport, ttl=args.ttl)
    await seed.start()
    print(f"repro-seed listening on {seed.address} (ttl={args.ttl}s)")
    metrics_server: Optional[MetricsServer] = None
    if args.metrics_port is not None:
        metrics_server = MetricsServer(
            seed_metrics(seed), host=host, port=args.metrics_port
        )
        metrics_server.start()
        print(f"metrics on {metrics_server.url}")
    loop = asyncio.get_running_loop()
    next_report = loop.time() + args.report_every
    try:
        while True:
            await asyncio.sleep(0.25)
            if args.report_every > 0 and loop.time() >= next_report:
                print(_status_line(seed))
                next_report += args.report_every
    finally:
        if metrics_server is not None:
            metrics_server.stop()
        await seed.stop()
        print(_status_line(seed))
        print("seed stopped (a bootstrapped overlay keeps gossiping)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_run_seed(args))
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

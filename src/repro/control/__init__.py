"""Control plane: seed-node bootstrap, liveness and metrics for live clusters.

:mod:`repro.net` is the *data plane* -- daemons gossiping views over
datagrams.  This package is the control plane that turns those daemons
into an operable cluster:

- :mod:`repro.control.messages` -- the control-plane message vocabulary
  (join / sample / heartbeat / leave / status), framed by the versioned
  control codec in :mod:`repro.core.codec`;
- :mod:`repro.control.registry` -- :class:`SeedRegistry`, the TTL-based
  liveness table behind the seed node (injectable clock, deterministic
  in tests);
- :mod:`repro.control.seed` -- :class:`SeedService`, the introduction
  endpoint: joining daemons register and receive a bootstrap sample of
  live peers; heartbeats keep entries alive; gossiped stats aggregate
  cluster-wide;
- :mod:`repro.control.client` -- :class:`IntroducerClient`, the daemon
  side: join with capped exponential backoff + jitter, periodic
  heartbeats carrying counters, graceful deregistration;
- :mod:`repro.control.metrics` -- the observability plane: a counters
  registry per daemon (and per seed) served over a plaintext HTTP
  endpoint in Prometheus text format (plus JSON);
- :mod:`repro.control.supervisor` -- :class:`ClusterSupervisor`, booting
  N ``repro-node`` subprocesses against a ``repro-seed`` process,
  monitoring liveness through the seed and restarting crashed daemons;
- :mod:`repro.control.cli` -- the ``repro-seed`` console entry point.

The division of labor follows the classic control-plane/data-plane
split: gossip exchanges never traverse the seed (it hands out
*introductions*, not routes), so the seed is not a bandwidth bottleneck
and an overlay that has bootstrapped survives the seed's death.
"""

from repro.control.client import IntroducerClient
from repro.control.messages import (
    KIND_HEARTBEAT,
    KIND_JOIN,
    KIND_LEAVE,
    KIND_SAMPLE,
    KIND_STATUS,
    KIND_STATUS_REPLY,
    query_status,
)
from repro.control.metrics import (
    MetricsRegistry,
    MetricsServer,
    daemon_metrics,
    seed_metrics,
)
from repro.control.registry import SeedRegistry
from repro.control.seed import SeedService
from repro.control.supervisor import ClusterSupervisor

__all__ = [
    "ClusterSupervisor",
    "IntroducerClient",
    "KIND_HEARTBEAT",
    "KIND_JOIN",
    "KIND_LEAVE",
    "KIND_SAMPLE",
    "KIND_STATUS",
    "KIND_STATUS_REPLY",
    "MetricsRegistry",
    "MetricsServer",
    "SeedRegistry",
    "SeedService",
    "daemon_metrics",
    "query_status",
    "seed_metrics",
]

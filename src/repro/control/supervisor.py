"""Process-level cluster orchestration: one seed, N gossip daemons.

:class:`ClusterSupervisor` boots a ``repro-seed`` process and N
``repro-node`` processes (real subprocesses, real UDP sockets) that
bootstrap **only** through the seed -- no daemon is handed another
daemon's address.  It then plays the operator:

- :meth:`status` asks the seed for its registry snapshot (live nodes,
  lease remainders, cluster-wide counter totals);
- :meth:`wait_for_live` blocks until the seed sees N live leases;
- :meth:`kill` hard-kills daemons (SIGKILL -- no LEAVE, no goodbye),
  which is how liveness expiry and overlay self-healing are exercised;
- :meth:`restart_crashed` respawns every exited daemon on a fresh
  ephemeral port; the replacement re-joins through the seed like any
  newcomer.

Each subprocess runs ``python -u -m repro...`` with ``PYTHONPATH``
derived from the imported :mod:`repro` package, so the supervisor works
from a source checkout and an installed package alike.  A reader thread
per process drains stdout into a bounded deque (a full pipe would stall
the child) and parses the ``... listening on HOST:PORT`` banner for the
child's address.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

import repro
from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError, ReproError
from repro.control.messages import query_status

__all__ = ["ClusterSupervisor", "SupervisorError"]

_BANNER = " listening on "


class SupervisorError(ReproError):
    """A managed process failed to start or the cluster never converged."""


def _repro_pythonpath() -> str:
    """PYTHONPATH entry that makes ``-m repro...`` importable in children."""
    package_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    if existing:
        return package_root + os.pathsep + existing
    return package_root


class _ManagedProcess:
    """One supervised child: process handle + stdout drain + banner parse."""

    def __init__(self, name: str, argv: Sequence[str], env: Dict[str, str]) -> None:
        self.name = name
        self.argv = list(argv)
        self.process = subprocess.Popen(
            self.argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.lines: Deque[str] = deque(maxlen=400)
        self.address: Optional[Address] = None
        self._address_ready = threading.Event()
        self._reader = threading.Thread(
            target=self._drain, name=f"repro-drain:{name}", daemon=True
        )
        self._reader.start()

    def _drain(self) -> None:
        stream = self.process.stdout
        assert stream is not None
        for line in stream:
            line = line.rstrip()
            self.lines.append(line)
            if self.address is None and _BANNER in line:
                self.address = line.split(_BANNER, 1)[1].split()[0]
                self._address_ready.set()
        # EOF: unblock address waiters even if the banner never came.
        self._address_ready.set()

    def wait_address(self, timeout: float) -> Address:
        self._address_ready.wait(timeout)
        if self.address is None:
            raise SupervisorError(
                f"{self.name} printed no listening banner within {timeout}s "
                f"(exit={self.process.poll()}); last output: "
                f"{list(self.lines)[-5:]}"
            )
        return self.address

    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL: simulate a crash -- no LEAVE, no cleanup."""
        if self.alive():
            self.process.kill()
        self.process.wait()

    def terminate(self, grace: float = 5.0) -> None:
        if self.alive():
            self.process.terminate()
            try:
                self.process.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        self._reader.join(timeout=2.0)


class ClusterSupervisor:
    """Boot and babysit a live gossip cluster (seed + N daemons).

    Parameters
    ----------
    daemons:
        Number of gossip daemons to boot.
    ttl:
        Seed lease TTL in seconds (daemons heartbeat at ``ttl / 3``).
    cycle / view_size / protocol:
        Forwarded to every ``repro-node``.
    host:
        Interface everything binds (ports are always ephemeral).
    metrics:
        When true, every daemon and the seed serve a ``/metrics``
        endpoint on an ephemeral HTTP port.
    startup_timeout:
        Seconds to wait for each child's listening banner.
    """

    def __init__(
        self,
        daemons: int = 4,
        ttl: float = 3.0,
        cycle: float = 0.2,
        view_size: int = 8,
        protocol: str = "(rand,head,pushpull)",
        host: str = "127.0.0.1",
        metrics: bool = False,
        python: str = sys.executable,
        startup_timeout: float = 15.0,
        extra_node_args: Sequence[str] = (),
    ) -> None:
        if daemons < 1:
            raise ConfigurationError(f"need at least 1 daemon, got {daemons}")
        if ttl <= 0.0:
            raise ConfigurationError(f"ttl must be positive, got {ttl}")
        if cycle <= 0.0:
            raise ConfigurationError(f"cycle must be positive, got {cycle}")
        self.n_daemons = daemons
        self.ttl = ttl
        self.cycle = cycle
        self.view_size = view_size
        self.protocol = protocol
        self.host = host
        self.metrics = metrics
        self.python = python
        self.startup_timeout = startup_timeout
        self.extra_node_args = list(extra_node_args)
        self.seed: Optional[_ManagedProcess] = None
        self.daemons: List[_ManagedProcess] = []
        self.restarts = 0
        self._env = dict(os.environ, PYTHONPATH=_repro_pythonpath())
        self._sequence = 0

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def seed_address(self) -> Address:
        if self.seed is None or self.seed.address is None:
            raise SupervisorError("seed not started")
        return self.seed.address

    def start(self) -> Address:
        """Boot the seed, then every daemon; returns the seed address."""
        if self.seed is not None:
            return self.seed_address
        argv = [
            self.python, "-u", "-m", "repro.control.cli",
            "--bind", f"{self.host}:0",
            "--ttl", str(self.ttl),
            "--report-every", "0",
        ]
        if self.metrics:
            argv += ["--metrics-port", "0"]
        self.seed = _ManagedProcess("seed", argv, self._env)
        try:
            self.seed.wait_address(self.startup_timeout)
        except SupervisorError:
            self.stop()
            raise
        for _ in range(self.n_daemons):
            self.daemons.append(self._spawn_daemon())
        return self.seed_address

    def _spawn_daemon(self) -> _ManagedProcess:
        self._sequence += 1
        name = f"node-{self._sequence}"
        argv = [
            self.python, "-u", "-m", "repro.net.cli",
            "--bind", f"{self.host}:0",
            "--introducer", self.seed_address,
            "--cycle", str(self.cycle),
            "--view-size", str(self.view_size),
            "--protocol", self.protocol,
            "--timeout", str(max(0.1, self.cycle / 2)),
            "--report-every", "0",
        ]
        if self.metrics:
            argv += ["--metrics-port", "0"]
        argv += self.extra_node_args
        return _ManagedProcess(name, argv, self._env)

    def stop(self) -> None:
        """Terminate every daemon, then the seed (idempotent)."""
        for proc in self.daemons:
            proc.terminate()
        self.daemons = []
        seed, self.seed = self.seed, None
        if seed is not None:
            seed.terminate()

    # -- operator actions ------------------------------------------------------

    def daemon_addresses(
        self, timeout: Optional[float] = None
    ) -> List[Address]:
        """The gossip addresses of the managed daemons (banner-parsed)."""
        deadline = timeout if timeout is not None else self.startup_timeout
        return [proc.wait_address(deadline) for proc in self.daemons]

    def status(self, timeout: float = 2.0, retries: int = 5) -> dict:
        """The seed's registry snapshot (see ``SeedRegistry.snapshot``)."""
        return query_status(self.seed_address, timeout=timeout, retries=retries)

    def live_count(self) -> int:
        """Live leases at the seed right now (0 if the query times out)."""
        try:
            return int(self.status(timeout=0.5, retries=2)["live"])
        except TimeoutError:
            return 0

    def wait_for_live(self, count: int, deadline: float = 30.0) -> dict:
        """Block until the seed reports ``count`` live leases.

        Polls STATUS every ~quarter TTL; raises :class:`SupervisorError`
        with the last snapshot when the deadline passes.
        """
        poll = max(0.05, min(self.ttl / 4.0, 0.5))
        end = time.monotonic() + deadline
        last: dict = {}
        while time.monotonic() < end:
            try:
                last = self.status(timeout=poll, retries=1)
            except TimeoutError:
                time.sleep(poll)
                continue
            if int(last.get("live", -1)) == count:
                return last
            time.sleep(poll)
        raise SupervisorError(
            f"seed never reported {count} live nodes within {deadline}s "
            f"(last snapshot: live={last.get('live')!r})"
        )

    def kill(self, count: int = 1) -> List[Address]:
        """Hard-kill ``count`` daemons (SIGKILL, newest first).

        A killed daemon sends no LEAVE: its lease must *expire* at the
        seed, and its descriptors must age out of the overlay's views --
        the paper's failure model, reproduced at process granularity.
        Returns the killed gossip addresses.
        """
        victims = [proc for proc in reversed(self.daemons) if proc.alive()]
        victims = victims[:count]
        killed = []
        for proc in victims:
            address = proc.address
            proc.kill()
            if address is not None:
                killed.append(address)
        return killed

    def restart_crashed(self) -> List[str]:
        """Respawn every exited daemon; returns the new process names.

        Replacements bind fresh ephemeral ports and bootstrap through
        the seed exactly like first-time joiners -- the overlay heals by
        the same mechanism it grew.
        """
        restarted = []
        for index, proc in enumerate(self.daemons):
            if proc.alive():
                continue
            replacement = self._spawn_daemon()
            self.daemons[index] = replacement
            self.restarts += 1
            restarted.append(replacement.name)
        return restarted

    def alive_daemons(self) -> int:
        """Managed daemon processes currently running."""
        return sum(1 for proc in self.daemons if proc.alive())

    def tail(self, name: str, lines: int = 20) -> List[str]:
        """The last stdout lines of one managed process (diagnostics)."""
        if self.seed is not None and name == self.seed.name:
            return list(self.seed.lines)[-lines:]
        for proc in self.daemons:
            if proc.name == name:
                return list(proc.lines)[-lines:]
        raise SupervisorError(f"no managed process named {name!r}")

"""The seed/introduction service: the cluster's bootstrap endpoint.

A :class:`SeedService` listens on one datagram endpoint (UDP in
production, loopback in tests) and speaks the control-plane vocabulary
of :mod:`repro.control.messages`:

- a **JOIN** registers the joiner and answers with a **SAMPLE** of live
  peers -- the out-of-band bootstrap the paper assumes ("to bootstrap
  the service, we assume that there is a server whose address is known",
  Section 5.1's growing scenario makes it a single contact; the seed
  generalizes it to a random sample so the contact is not a hub);
- **HEARTBEAT**s renew the sender's TTL lease and may carry its counters
  snapshot, which the seed aggregates cluster-wide;
- **LEAVE** deregisters gracefully; crashed daemons simply expire;
- **STATUS** answers with the registry snapshot (the supervisor's and
  the metrics plane's source of truth).

The seed is *introduction only*: gossip exchanges never traverse it, so
a bootstrapped overlay keeps running if the seed dies -- the control
plane/data plane split.  All state lives in a
:class:`~repro.control.registry.SeedRegistry` with an injectable clock,
so every liveness decision is deterministic in tests.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Callable, Optional

from repro.core.codec import (
    CodecError,
    decode_control,
    encode_control,
)
from repro.core.descriptor import Address
from repro.control.messages import (
    KIND_HEARTBEAT,
    KIND_JOIN,
    KIND_LEAVE,
    KIND_SAMPLE,
    KIND_STATUS,
    KIND_STATUS_REPLY,
    parse_address_body,
    parse_join,
    parse_stats,
    sample_body,
)
from repro.control.registry import SeedRegistry
from repro.net.transport import DatagramTransport

__all__ = ["SeedService", "SeedStats"]


@dataclasses.dataclass
class SeedStats:
    """Operational counters of one seed endpoint (monotonic)."""

    joins: int = 0
    samples_sent: int = 0
    heartbeats: int = 0
    leaves: int = 0
    status_queries: int = 0
    invalid_messages: int = 0
    """Datagrams the control codec or body validation rejected."""


class SeedService:
    """One introduction endpoint over a datagram transport.

    Parameters
    ----------
    transport:
        A startable :class:`~repro.net.transport.DatagramTransport`; the
        seed takes over its receive callback.
    ttl:
        Liveness lease length handed to the registry (and echoed to
        joiners in SAMPLE replies so clients derive their heartbeat
        period from it).
    clock / rng:
        Forwarded to the :class:`SeedRegistry` -- injectable for
        deterministic tests.
    """

    def __init__(
        self,
        transport: DatagramTransport,
        ttl: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.transport = transport
        self.registry = SeedRegistry(ttl=ttl, clock=clock, rng=rng)
        self.stats = SeedStats()
        transport.receiver = self._on_datagram

    @property
    def address(self) -> Address:
        """The endpoint's address (known after :meth:`start` for UDP)."""
        return self.transport.local_address

    async def start(self) -> None:
        """Bind/register the endpoint (idempotent)."""
        await self.transport.start()

    async def stop(self) -> None:
        """Release the endpoint.  Registry state is kept: a restarted
        seed on the same state would keep its leases (callers that want
        a cold restart build a fresh service)."""
        await self.transport.close()

    # -- receive path --------------------------------------------------------

    def _on_datagram(self, data: bytes, sender: Address) -> None:
        try:
            frame = decode_control(data)
        except CodecError:
            self.stats.invalid_messages += 1
            return
        try:
            self._dispatch(frame, sender)
        except CodecError:
            # Malformed body of a well-framed message: count, drop, live on.
            self.stats.invalid_messages += 1

    def _dispatch(self, frame, sender: Address) -> None:
        if frame.kind == KIND_JOIN:
            address, count = parse_join(frame.body)
            self.stats.joins += 1
            self.registry.register(address)
            # The joiner never appears in its own bootstrap sample.
            peers = self.registry.sample(count, exclude=(address,))
            reply = encode_control(
                KIND_SAMPLE,
                sample_body(peers, self.registry.ttl),
                frame.request_id,
            )
            self.transport.send(sender, reply)
            self.stats.samples_sent += 1
        elif frame.kind == KIND_HEARTBEAT:
            address = parse_address_body(frame.body)
            stats = parse_stats(frame.body)
            self.stats.heartbeats += 1
            self.registry.heartbeat(address, stats)
        elif frame.kind == KIND_LEAVE:
            address = parse_address_body(frame.body)
            self.stats.leaves += 1
            self.registry.deregister(address)
        elif frame.kind == KIND_STATUS:
            self.stats.status_queries += 1
            snapshot = self.registry.snapshot()
            snapshot["seed"] = {
                "joins": self.stats.joins,
                "heartbeats": self.stats.heartbeats,
                "leaves": self.stats.leaves,
                "status_queries": self.stats.status_queries,
                "invalid_messages": self.stats.invalid_messages,
            }
            try:
                reply = encode_control(
                    KIND_STATUS_REPLY, snapshot, frame.request_id
                )
            except CodecError:
                # Very large clusters: drop the per-node detail rather
                # than the whole answer (totals still fit).
                snapshot["nodes"] = {}
                snapshot["truncated"] = True
                reply = encode_control(
                    KIND_STATUS_REPLY, snapshot, frame.request_id
                )
            self.transport.send(sender, reply)
        else:
            self.stats.invalid_messages += 1

"""The observability plane: scrape-time metrics over plain HTTP.

A :class:`MetricsRegistry` holds *callbacks*, not values: every metric
is read at scrape time from the live object that owns it (a daemon's
:class:`~repro.net.daemon.DaemonStats`, a seed's
:class:`~repro.control.registry.SeedRegistry`), so instrumenting the hot
path costs nothing -- the counters the data plane already maintains ARE
the metrics.  :class:`MetricsServer` serves the registry from a stdlib
``ThreadingHTTPServer`` on a daemon thread:

- ``GET /metrics`` -- Prometheus text exposition format (version 0.0.4),
  scrapeable by a stock Prometheus;
- ``GET /metrics.json`` -- the same numbers as one JSON object, for
  scripts and tests.

:func:`daemon_metrics` and :func:`seed_metrics` build the standard
registries for the two endpoint types; the cluster-wide view at the seed
aggregates the counter snapshots daemons gossip in their heartbeats.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError

__all__ = [
    "MetricsRegistry",
    "MetricsServer",
    "daemon_metrics",
    "seed_metrics",
]

_COUNTER = "counter"
_GAUGE = "gauge"
_HISTOGRAM = "histogram"

DEFAULT_AGE_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
"""Histogram buckets for view-entry age in hops (powers of two: ages are
bounded by gossip round counts, not wall time)."""


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Series:
    __slots__ = ("labels", "callback")

    def __init__(self, labels: Dict[str, str], callback: Callable) -> None:
        self.labels = dict(labels)
        self.callback = callback


class _Metric:
    __slots__ = ("name", "kind", "help", "series", "buckets", "label_name")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Sequence[float]] = None,
        label_name: Optional[str] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.series: List[_Series] = []
        self.buckets = tuple(buckets) if buckets is not None else None
        self.label_name = label_name


class MetricsRegistry:
    """Named metrics resolved through callbacks at scrape time.

    Three kinds, mirroring the Prometheus model:

    - ``counter(name, help, callback)`` -- monotonic; callback returns
      the current total;
    - ``gauge(name, help, callback)`` -- point-in-time value;
    - ``histogram(name, help, callback, buckets)`` -- callback returns
      the *current observations* (e.g. the hop count of every view
      entry); bucketing happens at render time.

    ``labeled_counter`` registers a whole family in one call: its
    callback returns a ``{label_value: total}`` dict, rendered as
    ``name{label="key"} total`` per entry -- how the seed exposes the
    cluster-wide aggregation without knowing daemon counter names ahead
    of time.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------------

    def _add(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if existing.kind != metric.kind:
                    raise ConfigurationError(
                        f"metric {metric.name!r} already registered as "
                        f"{existing.kind}, cannot re-register as {metric.kind}"
                    )
                return existing
            self._metrics[metric.name] = metric
            self._order.append(metric.name)
            return metric

    def counter(
        self,
        name: str,
        help_text: str,
        callback: Callable[[], float],
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Register one counter series (optionally labeled)."""
        metric = self._add(_Metric(name, _COUNTER, help_text))
        metric.series.append(_Series(labels or {}, callback))

    def gauge(
        self,
        name: str,
        help_text: str,
        callback: Callable[[], float],
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Register one gauge series (optionally labeled)."""
        metric = self._add(_Metric(name, _GAUGE, help_text))
        metric.series.append(_Series(labels or {}, callback))

    def histogram(
        self,
        name: str,
        help_text: str,
        callback: Callable[[], Iterable[float]],
        buckets: Sequence[float] = DEFAULT_AGE_BUCKETS,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Register a histogram; ``callback`` yields current observations."""
        buckets = tuple(sorted(set(float(b) for b in buckets)))
        if not buckets:
            raise ConfigurationError("histogram needs at least one bucket")
        metric = self._add(_Metric(name, _HISTOGRAM, help_text, buckets))
        metric.series.append(_Series(labels or {}, callback))

    def labeled_counter(
        self,
        name: str,
        help_text: str,
        label_name: str,
        callback: Callable[[], Dict[str, float]],
    ) -> None:
        """Register a counter *family*: ``callback`` returns a mapping of
        label value -> total, one series per key at scrape time."""
        metric = self._add(
            _Metric(name, _COUNTER, help_text, label_name=label_name)
        )
        metric.label_name = label_name
        metric.series.append(_Series({}, callback))

    # -- rendering -----------------------------------------------------------

    def _snapshot(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in self._order]

    def render_text(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for metric in self._snapshot():
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for series in metric.series:
                if metric.label_name is not None:
                    family = series.callback()
                    for key in sorted(family):
                        labels = _format_labels({metric.label_name: key})
                        lines.append(
                            f"{metric.name}{labels} "
                            f"{_format_value(family[key])}"
                        )
                elif metric.kind == _HISTOGRAM:
                    lines.extend(self._render_histogram(metric, series))
                else:
                    labels = _format_labels(series.labels)
                    lines.append(
                        f"{metric.name}{labels} "
                        f"{_format_value(series.callback())}"
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_histogram(metric: _Metric, series: _Series) -> List[str]:
        observations = [float(v) for v in series.callback()]
        lines: List[str] = []
        cumulative = 0
        remaining = sorted(observations)
        index = 0
        for bound in metric.buckets or ():
            while index < len(remaining) and remaining[index] <= bound:
                index += 1
            cumulative = index
            labels = dict(series.labels)
            labels["le"] = _format_value(bound)
            lines.append(
                f"{metric.name}_bucket{_format_labels(labels)} {cumulative}"
            )
        labels = dict(series.labels)
        labels["le"] = "+Inf"
        lines.append(
            f"{metric.name}_bucket{_format_labels(labels)} "
            f"{len(observations)}"
        )
        base = _format_labels(series.labels)
        lines.append(
            f"{metric.name}_sum{base} {_format_value(sum(observations))}"
        )
        lines.append(f"{metric.name}_count{base} {len(observations)}")
        return lines

    def render_json(self) -> dict:
        """The same numbers as one JSON object (scripts and tests)."""
        out: dict = {}
        for metric in self._snapshot():
            entry: dict = {"type": metric.kind, "help": metric.help}
            if metric.label_name is not None:
                entry["label"] = metric.label_name
                entry["values"] = {
                    key: value
                    for series in metric.series
                    for key, value in sorted(series.callback().items())
                }
            elif metric.kind == _HISTOGRAM:
                series = metric.series[0]
                observations = [float(v) for v in series.callback()]
                entry["count"] = len(observations)
                entry["sum"] = sum(observations)
                entry["buckets"] = {
                    _format_value(bound): sum(
                        1 for v in observations if v <= bound
                    )
                    for bound in metric.buckets or ()
                }
            elif len(metric.series) == 1 and not metric.series[0].labels:
                entry["value"] = metric.series[0].callback()
            else:
                entry["values"] = [
                    {"labels": series.labels, "value": series.callback()}
                    for series in metric.series
                ]
            out[metric.name] = entry
        return out


# -- the HTTP endpoint -----------------------------------------------------------


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # set by the server subclass

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler signature)
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            payload = self.server.registry.render_text().encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            payload = json.dumps(
                self.server.registry.render_json(), sort_keys=True
            ).encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr chatter (scrapes are periodic)."""


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    registry: MetricsRegistry


class MetricsServer:
    """Serves one :class:`MetricsRegistry` over HTTP on a daemon thread.

    ``port=0`` (the default) binds an ephemeral port -- read it back
    from :attr:`port` after :meth:`start`.  The server thread is a
    daemon thread and every handler runs on a daemon thread, so a
    crashing process never hangs on the metrics plane.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (0 until :meth:`start`)."""
        if self._server is None:
            return 0
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """The scrape URL (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> int:
        """Bind and start serving; returns the bound port (idempotent)."""
        if self._server is not None:
            return self.port
        server = _Server(
            (self.host, self._requested_port), _MetricsHandler
        )
        server.registry = self.registry
        thread = threading.Thread(
            target=server.serve_forever,
            name=f"repro-metrics:{server.server_address[1]}",
            daemon=True,
        )
        thread.start()
        self._server = server
        self._thread = thread
        return self.port

    def stop(self) -> None:
        """Shut the endpoint down and join the server thread (idempotent)."""
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)


# -- standard registries -----------------------------------------------------------


def daemon_metrics(daemon, client=None) -> MetricsRegistry:
    """The standard metrics registry for one gossip daemon.

    Exposes every :class:`~repro.net.daemon.DaemonStats` counter, the
    service's ``getPeer()`` serve counter, the current view fill and a
    histogram of view-entry age in hops.  Pass the daemon's
    :class:`~repro.control.client.IntroducerClient` to add the
    control-plane counters (join attempts, heartbeats sent).
    """
    registry = MetricsRegistry()
    stats = daemon.stats
    registry.counter(
        "repro_cycles_total",
        "Active-thread wakeups of the gossip daemon.",
        lambda: stats.cycles,
    )
    registry.counter(
        "repro_exchanges_initiated_total",
        "Gossip exchanges started (peer selected, request shipped).",
        lambda: stats.exchanges_initiated,
    )
    registry.counter(
        "repro_exchanges_completed_total",
        "Initiated exchanges that ran to completion.",
        lambda: stats.exchanges_completed,
    )
    registry.counter(
        "repro_pull_timeouts_total",
        "Initiated pull exchanges whose reply missed the timeout.",
        lambda: stats.timeouts,
    )
    registry.counter(
        "repro_requests_received_total",
        "Gossip requests answered by the passive thread.",
        lambda: stats.requests_received,
    )
    registry.counter(
        "repro_replies_received_total",
        "Gossip replies accepted and merged.",
        lambda: stats.replies_received,
    )
    registry.counter(
        "repro_late_replies_dropped_total",
        "Replies dropped because their exchange had already timed out.",
        lambda: stats.late_replies,
    )
    registry.counter(
        "repro_codec_errors_total",
        "Datagrams the codec or envelope parser rejected.",
        lambda: stats.invalid_messages,
    )
    registry.counter(
        "repro_getpeer_served_total",
        "Successful getPeer() draws served by the sampling service.",
        lambda: daemon.service.samples_served,
    )

    def view_fill() -> int:
        with daemon.service.lock:
            return len(daemon.node.view)

    registry.gauge(
        "repro_view_size",
        "Descriptors currently held in the partial view.",
        view_fill,
    )

    def view_ages() -> List[int]:
        with daemon.service.lock:
            return [d.hop_count for d in daemon.node.view]

    registry.histogram(
        "repro_view_age_hops",
        "Age (hop count) of each descriptor in the partial view.",
        view_ages,
        buckets=DEFAULT_AGE_BUCKETS,
    )
    if client is not None:
        registry.counter(
            "repro_join_attempts_total",
            "JOIN datagrams sent to introducers.",
            lambda: client.join_attempts,
        )
        registry.counter(
            "repro_heartbeats_sent_total",
            "Heartbeats sent to introducers.",
            lambda: client.heartbeats_sent,
        )
    return registry


def seed_metrics(seed) -> MetricsRegistry:
    """The standard metrics registry for one seed endpoint.

    Exposes the seed's own operational counters, the registry's liveness
    counters, the current live-node gauge -- and, as the labeled family
    ``repro_cluster_daemon_counter_total{counter=...}``, the sum of the
    most recent counters snapshot each live daemon gossiped in its
    heartbeats: the cluster-wide aggregation.
    """
    registry = MetricsRegistry()
    stats = seed.stats
    reg = seed.registry
    registry.counter(
        "repro_seed_joins_total",
        "JOIN requests handled.",
        lambda: stats.joins,
    )
    registry.counter(
        "repro_seed_samples_sent_total",
        "Bootstrap SAMPLE replies sent.",
        lambda: stats.samples_sent,
    )
    registry.counter(
        "repro_seed_heartbeats_total",
        "Heartbeats handled.",
        lambda: stats.heartbeats,
    )
    registry.counter(
        "repro_seed_leaves_total",
        "Graceful LEAVE deregistrations handled.",
        lambda: stats.leaves,
    )
    registry.counter(
        "repro_seed_status_queries_total",
        "STATUS queries answered.",
        lambda: stats.status_queries,
    )
    registry.counter(
        "repro_seed_invalid_messages_total",
        "Control datagrams rejected by codec or body validation.",
        lambda: stats.invalid_messages,
    )
    registry.counter(
        "repro_seed_expirations_total",
        "Leases dropped because the daemon stopped heartbeating.",
        lambda: reg.expirations,
    )
    registry.counter(
        "repro_seed_registrations_total",
        "JOIN registrations accepted (renewals included).",
        lambda: reg.registrations,
    )
    registry.gauge(
        "repro_seed_live_nodes",
        "Daemons currently holding a live lease.",
        lambda: len(reg),
    )
    registry.labeled_counter(
        "repro_cluster_daemon_counter_total",
        "Cluster-wide sum of the latest per-daemon counters "
        "(gossiped in heartbeats).",
        "counter",
        lambda: {k: float(v) for k, v in reg.stats_totals().items()},
    )
    return registry

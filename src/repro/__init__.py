"""Gossip-based peer sampling service.

A faithful, fully-featured reproduction of

    Jelasity, Guerraoui, Kermarrec, van Steen:
    "The Peer Sampling Service: Experimental Evaluation of Unstructured
    Gossip-Based Implementations", Middleware 2004 (LNCS 3231, pp. 79-98).

The package provides:

- :mod:`repro.core` -- the generic gossip protocol skeleton (paper Fig. 1),
  its three policy dimensions (peer selection, view selection, view
  propagation) and the two-method peer sampling API (``init`` / ``get_peer``).
- :mod:`repro.simulation` -- cycle-driven, event-driven and array-backed
  fast simulation engines, network models, churn injection and the paper's
  three bootstrap scenarios.
- :mod:`repro.graph` -- graph snapshots of the overlay and the metrics the
  paper evaluates (degree distribution, clustering coefficient, average path
  length, connectivity).
- :mod:`repro.stats` -- time-series statistics (autocorrelation, summaries).
- :mod:`repro.baselines` -- the ideal uniform random sampler and the random
  view topology the paper compares against.
- :mod:`repro.extensions` -- protocols from the paper's related/future work
  (Cyclon shuffling, SCAMP-style reactive membership, combined second-view
  services).
- :mod:`repro.experiments` -- one module per paper table/figure, regenerating
  the reported rows and series.
- :mod:`repro.net` -- the deployment layer: asyncio UDP daemons running the
  service as real networked processes (``repro-node`` CLI, local-cluster
  harness, deterministic loopback transport, the ``live`` engine).
- :mod:`repro.workloads` -- the declarative workload API: serializable
  :class:`~repro.workloads.spec.ScenarioSpec` /
  :class:`~repro.workloads.plan.ExperimentPlan` documents compiled onto
  any engine (``repro-experiments run-spec``), the layer every artefact
  module builds its runs through.

Quickstart::

    from repro import CycleEngine, newscast
    from repro.simulation.scenarios import random_bootstrap

    engine = CycleEngine(newscast(view_size=30), seed=42)
    random_bootstrap(engine, n_nodes=1000)
    engine.run(cycles=50)
    service = engine.service(engine.addresses()[0])
    print(service.get_peer())

or declaratively, on any engine of the registry::

    from repro import ScenarioSpec, newscast, prepare_run

    runtime = prepare_run(
        ScenarioSpec(bootstrap="random", cycles=50),
        newscast(view_size=30), n_nodes=1000, seed=42, engine="fast",
    )
    runtime.run_to_end()
"""

from repro.core.config import (
    ALL_PROTOCOLS,
    STUDIED_PROTOCOLS,
    ProtocolConfig,
    lpbcast,
    newscast,
)
from repro.core.descriptor import NodeDescriptor
from repro.core.policies import PeerSelection, Propagation, ViewSelection
from repro.core.protocol import GossipNode
from repro.core.service import PeerSamplingService
from repro.core.view import PartialView
from repro.simulation.engine import CycleEngine
from repro.simulation.event_engine import EventEngine
from repro.simulation.fast import FastCycleEngine
from repro.simulation.fast_event import FastEventEngine
from repro.simulation.sharded import ShardedCycleEngine
from repro.workloads import (
    ExperimentPlan,
    ScenarioSpec,
    prepare_run,
    run_plan,
    run_plans,
)

__version__ = "1.9.0"

__all__ = [
    "ALL_PROTOCOLS",
    "STUDIED_PROTOCOLS",
    "CycleEngine",
    "EventEngine",
    "ExperimentPlan",
    "FastCycleEngine",
    "FastEventEngine",
    "GossipNode",
    "NodeDescriptor",
    "PartialView",
    "PeerSamplingService",
    "PeerSelection",
    "Propagation",
    "ProtocolConfig",
    "ScenarioSpec",
    "ShardedCycleEngine",
    "lpbcast",
    "newscast",
    "prepare_run",
    "run_plan",
    "run_plans",
    "ViewSelection",
    "__version__",
]

"""The ideal peer sampling service: uniform draws from full membership.

Analytical studies of gossip protocols assume peers are selected
"uniformly at random from the set of all nodes" (paper Section 1), which in
practice requires every node to know every other node.  :class:`OracleGroup`
implements exactly that -- a global membership registry -- and
:class:`OracleSamplingService` exposes the standard two-method API backed
by it.  The examples use the oracle as the gold standard that gossip-based
implementations are measured against.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError, NodeNotFoundError, NotInitializedError


class OracleGroup:
    """A global membership registry with uniform sampling.

    This plays the role of the full membership tables of traditional
    gossip implementations; its maintenance cost (every join/leave touches
    one central table) is exactly the scalability problem the paper's
    gossip-based services avoid.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._members: Dict[Address, int] = {}
        self._order: List[Address] = []
        self.rng = random.Random(seed)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, address: Address) -> bool:
        return address in self._members

    def members(self) -> List[Address]:
        """All current members."""
        return list(self._order)

    def join(self, address: Address) -> None:
        """Register a member (idempotent)."""
        if address in self._members:
            return
        self._members[address] = len(self._order)
        self._order.append(address)

    def leave(self, address: Address) -> None:
        """Deregister a member (O(1): swap-remove)."""
        index = self._members.pop(address, None)
        if index is None:
            raise NodeNotFoundError(address)
        last = self._order.pop()
        if last != address:
            self._order[index] = last
            self._members[last] = index

    def sample(self, exclude: Optional[Address] = None) -> Optional[Address]:
        """One uniform member, optionally excluding one address."""
        size = len(self._order)
        if size == 0 or (size == 1 and self._order[0] == exclude):
            return None
        while True:
            candidate = self._order[self.rng.randrange(size)]
            if candidate != exclude:
                return candidate

    def service(self, address: Address) -> "OracleSamplingService":
        """A service handle for ``address`` (joins it if necessary)."""
        self.join(address)
        return OracleSamplingService(self, address)


class OracleSamplingService:
    """The two-method peer sampling API backed by global membership.

    Drop-in comparable to :class:`~repro.core.service.PeerSamplingService`:
    same ``init`` / ``get_peer`` surface, but returns *independent uniform*
    samples -- the paper's idealized baseline.
    """

    __slots__ = ("_group", "_address", "_initialized")

    def __init__(self, group: OracleGroup, address: Address) -> None:
        if address not in group:
            raise ConfigurationError(
                f"{address!r} must join the group before creating a service"
            )
        self._group = group
        self._address = address
        self._initialized = True

    @property
    def address(self) -> Address:
        """The member this service belongs to."""
        return self._address

    @property
    def initialized(self) -> bool:
        """Always ``True`` -- construction requires membership."""
        return self._initialized

    def init(self, contacts: object = ()) -> None:
        """No-op: the oracle needs no bootstrap contacts."""

    def get_peer(self) -> Optional[Address]:
        """An independent uniform sample of the other group members."""
        if self._address not in self._group:
            raise NotInitializedError(
                f"{self._address!r} is no longer a group member"
            )
        return self._group.sample(exclude=self._address)

    def get_peers(self, count: int) -> List[Address]:
        """``count`` independent uniform samples (with repetition)."""
        samples: List[Address] = []
        for _ in range(count):
            peer = self.get_peer()
            if peer is None:
                break
            samples.append(peer)
        return samples

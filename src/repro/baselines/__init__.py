"""Baselines the paper compares against.

- :mod:`repro.baselines.oracle` -- the *ideal* peer sampling service:
  independent uniform random draws from full global membership (what the
  theoretical gossip literature assumes);
- :mod:`repro.baselines.random_topology` -- the uniform random view
  topology whose metrics appear as horizontal reference lines in the
  paper's figures.
"""

from repro.baselines.oracle import OracleGroup, OracleSamplingService
from repro.baselines.random_topology import random_baseline_metrics

__all__ = [
    "OracleGroup",
    "OracleSamplingService",
    "random_baseline_metrics",
]

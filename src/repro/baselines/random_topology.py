"""Metrics of the uniform random view topology (the figures' baselines).

The horizontal lines in paper Figures 2 and 3 mark the properties of the
topology in which every view is an independent uniform random sample.
:func:`random_baseline_metrics` measures them on a generated instance (and
caches per ``(n, c)``, since experiment modules ask repeatedly).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.graph.generators import random_view_topology
from repro.graph.metrics import (
    average_degree,
    average_path_length,
    clustering_coefficient,
)

_cache: Dict[Tuple[int, int, int], Dict[str, float]] = {}


def random_baseline_metrics(
    n: int,
    c: int,
    seed: int = 0,
    clustering_sample: Optional[int] = 1000,
    path_sources: Optional[int] = 50,
) -> Dict[str, float]:
    """Average degree, clustering and path length of the random baseline.

    Parameters mirror the measurement settings of
    :class:`~repro.simulation.trace.MetricsRecorder`, so baseline and
    overlay numbers are directly comparable.

    Returns a dict with keys ``average_degree``, ``clustering`` and
    ``average_path_length``.
    """
    key = (n, c, seed)
    cached = _cache.get(key)
    if cached is not None:
        return dict(cached)
    rng = random.Random(seed)
    snapshot = random_view_topology(n, c, rng)
    metrics = {
        "average_degree": average_degree(snapshot),
        "clustering": clustering_coefficient(
            snapshot, sample=clustering_sample, rng=rng
        ),
        "average_path_length": average_path_length(
            snapshot, n_sources=path_sources, rng=rng
        ),
    }
    _cache[key] = dict(metrics)
    return metrics


def expected_average_degree(n: int, c: int) -> float:
    """Analytic expectation of the random baseline's average degree.

    Each node has ``c`` out-links; an undirected edge merges reciprocal
    pairs, so the expectation is ``2c - c^2/(n-1)`` for ``c < n``.
    """
    if n <= 1:
        return 0.0
    fill = min(c, n - 1)
    return 2.0 * fill - fill * fill / (n - 1)

"""live-control: Figure-2-style convergence of a seed-bootstrapped cluster.

The paper's experiments initialize views by construction; a deployed
cluster cannot -- nodes find each other through the out-of-band bootstrap
the paper assumes ("there is a server whose address is known", Section
5.1).  This experiment validates exactly that path: it boots a
:class:`~repro.control.seed.SeedService` and N *free-running* gossip
daemons over real localhost UDP sockets whose views start **empty** --
every daemon learns its first peers only from the seed's bootstrap
SAMPLE, via :class:`~repro.control.client.IntroducerClient` (the
``repro-node --introducer`` path, in process).

While the cluster gossips on its own wall-clock timers, the experiment
snapshots every view and re-derives the Figure 2 metrics (clustering
coefficient, in-degree statistics, average path length) against the
uniform random baseline -- the same analysis pipeline the simulation
experiments use, now fed by an overlay that self-organized from nothing
but one known address.  The closing seed-registry snapshot pins the
control plane's liveness accounting: every daemon joined, heartbeated
and is still leased.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
from typing import Dict, List, Optional, Sequence

from repro.baselines.random_topology import random_baseline_metrics
from repro.control.client import IntroducerClient
from repro.control.seed import SeedService
from repro.core.config import NetworkConfig, ProtocolConfig
from repro.core.protocol import GossipNode
from repro.experiments.common import Scale, current_scale
from repro.experiments.reporting import format_series
from repro.net.cluster import summarize_views
from repro.net.daemon import GossipDaemon
from repro.net.transport import UdpTransport

__all__ = ["LiveControlResult", "run", "report", "main"]

SESSION_DEADLINE = 120.0
"""Hard wall-clock cap on one experiment session."""


@dataclasses.dataclass(frozen=True)
class LiveControlResult:
    """Convergence samples of one seed-bootstrapped live cluster."""

    scale: Scale
    nodes: int
    view_size: int
    cycle_seconds: float
    observed_cycles: List[int]
    """Nominal cycle number of each sample (elapsed / cycle length)."""
    samples: List[Dict[str, float]]
    """Figure-2-style metrics per observation (see ``summarize_views``)."""
    baseline: Dict[str, float]
    """Uniform random topology values at the same (N, c)."""
    seed_snapshot: dict
    """The seed registry's closing snapshot (liveness accounting)."""
    bootstrap_peers: List[int]
    """Peers each daemon received in its bootstrap SAMPLE, in join order."""
    converged: bool
    """Whether the final overlay is connected with a well-filled view."""


def _live_parameters(scale: Scale) -> Dict[str, float]:
    """Shrink the scale preset to live-cluster size: real sockets and
    wall-clock cycles cap practical N far below the simulators'."""
    nodes = max(12, min(32, scale.n_nodes // 30))
    return {
        "nodes": nodes,
        "view_size": min(scale.view_size, max(4, nodes // 3)),
        "cycle_seconds": 0.05,
        "observe_cycles": max(12, min(30, scale.cycles // 10)),
    }


async def _session(
    scale: Scale, seed: int, params: Dict[str, float]
) -> LiveControlResult:
    nodes = int(params["nodes"])
    view_size = int(params["view_size"])
    cycle_seconds = float(params["cycle_seconds"])
    observe_cycles = int(params["observe_cycles"])
    master = random.Random(seed)
    protocol = ProtocolConfig.from_label("(rand,head,pushpull)", view_size)
    network = NetworkConfig(
        cycle_seconds=cycle_seconds,
        jitter=0.1,
        request_timeout=max(0.2, cycle_seconds * 4),
    )
    ttl = max(1.0, cycle_seconds * 40)

    seed_service = SeedService(
        UdpTransport("127.0.0.1", 0),
        ttl=ttl,
        rng=random.Random(master.getrandbits(64)),
    )
    await seed_service.start()
    daemons: List[GossipDaemon] = []
    clients: List[IntroducerClient] = []
    bootstrap_peers: List[int] = []
    try:
        for _ in range(nodes):
            transport = UdpTransport("127.0.0.1", 0)
            await transport.start()
            node_rng = random.Random(master.getrandbits(64))
            node = GossipNode(transport.local_address, protocol, node_rng)
            daemon = GossipDaemon(node, transport, network, rng=node_rng)
            # Empty view, free-running gossip: the daemon has nothing to
            # say until the seed introduces it to somebody.
            await daemon.start(run_loop=True)
            client = IntroducerClient(
                daemon,
                [seed_service.address],
                rng=random.Random(master.getrandbits(64)),
                attempt_timeout=2.0,
            )
            await client.start()
            peers = await client.join()
            bootstrap_peers.append(len(peers))
            daemons.append(daemon)
            clients.append(client)

        observed_cycles: List[int] = []
        samples: List[Dict[str, float]] = []
        for cycle in range(1, observe_cycles + 1):
            await asyncio.sleep(cycle_seconds)
            views = {}
            for daemon in daemons:
                with daemon.service.lock:
                    views[daemon.address] = [d.copy() for d in daemon.node.view]
            observed_cycles.append(cycle)
            samples.append(
                summarize_views(views, rng=random.Random(seed))
            )
        snapshot = seed_service.registry.snapshot()
        snapshot["seed"] = dataclasses.asdict(seed_service.stats)
    finally:
        for client in clients:
            await client.stop()
        for daemon in daemons:
            await daemon.stop()
        await seed_service.stop()

    final = samples[-1]
    converged = (
        final["average_path_length"] == final["average_path_length"]  # not NaN
        and final["average_path_length"] != float("inf")
        and final["in_degree_mean"] >= 0.6 * view_size
    )
    baseline = random_baseline_metrics(
        nodes,
        view_size,
        clustering_sample=scale.clustering_sample,
        path_sources=scale.path_sources,
    )
    return LiveControlResult(
        scale=scale,
        nodes=nodes,
        view_size=view_size,
        cycle_seconds=cycle_seconds,
        observed_cycles=observed_cycles,
        samples=samples,
        baseline=baseline,
        seed_snapshot=snapshot,
        bootstrap_peers=bootstrap_peers,
        converged=converged,
    )


def run(scale: Optional[Scale] = None, seed: int = 0) -> LiveControlResult:
    """Boot seed + N UDP daemons (empty views), join through the seed
    only, free-run, and sample Figure-2-style convergence metrics."""
    if scale is None:
        scale = current_scale()
    params = _live_parameters(scale)
    return asyncio.run(
        asyncio.wait_for(_session(scale, seed, params), SESSION_DEADLINE)
    )


def report(result: LiveControlResult) -> str:
    """Render the convergence series plus the control-plane accounting."""
    columns = [
        ("clustering", [s["clustering"] for s in result.samples]),
        ("in-deg mean", [s["in_degree_mean"] for s in result.samples]),
        ("in-deg std", [s["in_degree_std"] for s in result.samples]),
        ("path len", [s["average_path_length"] for s in result.samples]),
    ]
    table = format_series(
        "cycle",
        result.observed_cycles,
        columns,
        precision=3,
        title=(
            f"live-control ({result.scale.name} scale) -- "
            f"{result.nodes} free-running UDP daemons "
            f"(c={result.view_size}), bootstrapped ONLY through the seed; "
            f"random baseline: clustering="
            f"{result.baseline['clustering']:.3f}, path length="
            f"{result.baseline['average_path_length']:.3f}"
        ),
        max_rows=12,
    )
    counters = result.seed_snapshot.get("counters", {})
    seed_stats = result.seed_snapshot.get("seed", {})
    lines = [
        table,
        "",
        f"seed registry at shutdown: live={result.seed_snapshot.get('live')}"
        f"/{result.nodes}, registrations={counters.get('registrations')}, "
        f"heartbeats={counters.get('heartbeats')}, "
        f"expirations={counters.get('expirations')}",
        f"seed endpoint: joins={seed_stats.get('joins')}, "
        f"samples_sent={seed_stats.get('samples_sent')}, "
        f"invalid={seed_stats.get('invalid_messages')}",
        f"bootstrap sample sizes (join order): {result.bootstrap_peers}",
        f"converged: {result.converged}",
    ]
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print at the ambient scale."""
    print(report(run()))


if __name__ == "__main__":
    main()

"""Figure 2: topology dynamics in the growing scenario.

The overlay grows from one node while the protocol runs; the figure tracks
(a) the clustering coefficient, (b) the average node degree and (c) the
average path length over 300 cycles for the six stable protocols, against
the uniform random topology's values (horizontal lines).

Qualitative shape to reproduce:

- pushpull variants converge quickly to stable values once growth ends;
- push-only variants converge very slowly (the star-like bootstrap is a
  bottleneck for push);
- ``(*,rand,pushpull)`` lands closest to the random baseline on these
  three metrics (but see Figure 4: its degree distribution is the least
  random).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.baselines.random_topology import random_baseline_metrics
from repro.experiments.common import (
    Scale,
    current_scale,
    growing_plot_protocols,
)
from repro.experiments.reporting import format_series
from repro.simulation.trace import MetricsRecorder
from repro.workloads import named_scenario, prepare_run


@dataclasses.dataclass(frozen=True)
class MetricSeries:
    """Per-cycle topology metrics of one protocol run."""

    label: str
    cycles: List[int]
    clustering: List[float]
    average_degree: List[float]
    average_path_length: List[float]


@dataclasses.dataclass(frozen=True)
class Figure2Result:
    """All protocol series plus the random baseline."""

    scale: Scale
    series: List[MetricSeries]
    baseline: Dict[str, float]
    growth_end_cycle: int


def _run_one(config, scale: Scale, seed: int) -> MetricSeries:
    runtime = prepare_run(
        named_scenario("growing-overlay", scale),
        config,
        scale=scale,
        seed=seed,
    )
    recorder = MetricsRecorder(
        every=scale.metrics_every,
        clustering_sample=scale.clustering_sample,
        path_sources=scale.path_sources,
        record_initial=False,
    )
    runtime.add_observer(recorder)
    runtime.run_to_end()
    return MetricSeries(
        label=config.label,
        cycles=recorder.cycles,
        clustering=recorder.clustering,
        average_degree=recorder.average_degree,
        average_path_length=recorder.average_path_length,
    )


def run(scale: Optional[Scale] = None, seed: int = 0) -> Figure2Result:
    """Reproduce Figure 2 at the given scale (single run per protocol,
    as in the paper)."""
    if scale is None:
        scale = current_scale()
    series = [
        _run_one(config, scale, seed * 7_919 + index)
        for index, config in enumerate(growing_plot_protocols(scale.view_size))
    ]
    baseline = random_baseline_metrics(
        scale.n_nodes,
        scale.view_size,
        clustering_sample=scale.clustering_sample,
        path_sources=scale.path_sources,
    )
    return Figure2Result(
        scale=scale,
        series=series,
        baseline=baseline,
        growth_end_cycle=scale.growth_cycles,
    )


def _metric_block(
    result: Figure2Result, attribute: str, metric_title: str, baseline_key: str
) -> str:
    columns = [
        (s.label, getattr(s, attribute)) for s in result.series
    ]
    body = format_series(
        "cycle",
        result.series[0].cycles,
        columns,
        precision=3,
        title=(
            f"Figure 2 ({metric_title}) -- growing scenario, "
            f"scale={result.scale.name}; random baseline = "
            f"{result.baseline[baseline_key]:.3f}; growth ends at cycle "
            f"{result.growth_end_cycle}"
        ),
        max_rows=12,
    )
    return body


def report(result: Figure2Result) -> str:
    """Render the three sub-figures as thinned series tables."""
    blocks = [
        _metric_block(result, "clustering", "a: clustering coefficient", "clustering"),
        _metric_block(result, "average_degree", "b: average node degree", "average_degree"),
        _metric_block(
            result, "average_path_length", "c: average path length", "average_path_length"
        ),
    ]
    return "\n\n".join(blocks)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print at the ambient scale."""
    print(report(run()))


if __name__ == "__main__":
    main()

"""Figure 5: autocorrelation of a fixed node's degree over time.

For the four rand-peer-selection protocols the paper plots the
autocorrelation of a node's degree time series (300 cycles) against the
time lag, with a 99% confidence band for an i.i.d. series.

Qualitative shape to reproduce:

- ``(rand,head,pushpull)`` stays essentially inside the band --
  "practically random";
- ``(rand,head,push)`` shows weak high-frequency structure;
- ``(*,rand,*)`` shows strong short-term correlation and slow oscillation
  (large positive values at small lags decaying slowly).

To tame single-node noise at reduced scales, the autocorrelation is
averaged over ``traced_nodes`` independent nodes of the same run (each
node's series is an identically distributed sample of the same process;
the paper uses a single node at K = 300).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import (
    Scale,
    autocorrelation_protocols,
    current_scale,
)
from repro.experiments.reporting import format_series
from repro.simulation.trace import DegreeTracer
from repro.stats.autocorrelation import autocorrelation, confidence_band
from repro.workloads import named_scenario, prepare_run


@dataclasses.dataclass(frozen=True)
class Figure5Result:
    """Autocorrelation curves and the i.i.d. confidence band."""

    scale: Scale
    max_lag: int
    lags: List[int]
    curves: Dict[str, List[float]]
    """Protocol label -> mean autocorrelation per lag."""
    band: float
    """99% confidence half-width for a single series of length K."""
    fraction_outside: Dict[str, float]
    """Protocol label -> fraction of lags outside the band."""


def _run_one(config, scale: Scale, max_lag: int, seed: int) -> np.ndarray:
    runtime = prepare_run(
        named_scenario("random-convergence", scale),
        config,
        scale=scale,
        seed=seed,
    )
    tracer = DegreeTracer(
        runtime.bootstrap_addresses[: scale.traced_nodes]
    )
    runtime.add_observer(tracer)
    runtime.run_to_end()
    curves = [
        autocorrelation(series, max_lag) for series in tracer.matrix()
    ]
    return np.mean(np.stack(curves), axis=0)


def run(scale: Optional[Scale] = None, seed: int = 0) -> Figure5Result:
    """Reproduce Figure 5 at the given scale.

    ``max_lag`` follows the paper's 140-of-300 proportion, bounded by half
    the scaled cycle count.
    """
    if scale is None:
        scale = current_scale()
    max_lag = min(140, scale.cycles // 2)
    band = confidence_band(scale.cycles, level=0.99)
    curves: Dict[str, List[float]] = {}
    outside: Dict[str, float] = {}
    for index, config in enumerate(autocorrelation_protocols(scale.view_size)):
        curve = _run_one(config, scale, max_lag, seed * 49_999 + index)
        curves[config.label] = curve.tolist()
        tail = np.abs(curve[1:])
        outside[config.label] = float((tail > band).mean())
    return Figure5Result(
        scale=scale,
        max_lag=max_lag,
        lags=list(range(max_lag + 1)),
        curves=curves,
        band=band,
        fraction_outside=outside,
    )


def report(result: Figure5Result) -> str:
    """Render the curves (thinned) and the band-violation summary."""
    columns = list(result.curves.items())
    series = format_series(
        "lag",
        result.lags,
        columns,
        precision=3,
        title=(
            f"Figure 5 -- degree autocorrelation vs lag "
            f"(scale={result.scale.name}, K={result.scale.cycles}); "
            f"99% i.i.d. band = +-{result.band:.3f}"
        ),
        max_rows=15,
    )
    summary_lines = ["", "fraction of lags outside the 99% band:"]
    for label, fraction in result.fraction_outside.items():
        verdict = "practically random" if fraction < 0.10 else "structured"
        summary_lines.append(f"  {label:24s} {fraction:6.1%}  ({verdict})")
    return series + "\n" + "\n".join(summary_lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print at the ambient scale."""
    print(report(run()))


if __name__ == "__main__":
    main()

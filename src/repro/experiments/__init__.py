"""Experiment harness: one module per paper table/figure.

Every module exposes

- ``run(scale=None, seed=0)`` returning a result dataclass, and
- ``report(result)`` rendering the paper's rows/series as plain text.

Scales (``quick`` / ``default`` / ``full``) are defined in
:mod:`repro.experiments.common`; ``full`` matches the paper's parameters
(N = 10^4, c = 30, 300 cycles, 100 runs), the others shrink the network
while preserving all qualitative results.  Select via the ``REPRO_SCALE``
environment variable or the ``--scale`` CLI flag of
``python -m repro.experiments.runner``.
"""

from repro.experiments.common import (
    SCALES,
    Scale,
    current_scale,
)

__all__ = ["SCALES", "Scale", "current_scale"]

EXPERIMENT_IDS = (
    "table1",
    "figure2",
    "figure3",
    "figure4",
    "table2",
    "figure5",
    "figure6",
    "figure7",
    "services",
    "live-control",
    "attack",
)
"""All reproducible paper artefacts, in paper order (plus ``services``,
the Section 1 applications run over a churned overlay, ``live-control``,
Figure-2-style convergence of a real UDP cluster bootstrapped only
through the control plane's seed node, and ``attack``, the adversarial
hub-poisoning sweep over the studied protocols and the extension
samplers)."""

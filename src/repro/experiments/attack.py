"""``attack``: which peer sampling designs resist hub capture?

The paper's evaluation assumes honest nodes; this artefact re-runs the
random-convergence workload with a fraction ``f`` of **hub-poisoning**
attackers (every exchanged buffer replaced by fresh hop-0 descriptors of
the attacker set -- the strongest in-degree grab expressible on the
exchange contract) and reports, per protocol and fraction:

- ``attacker share``: the fraction of all view entries pointing at
  attackers (``indegree-concentration``);
- ``max indeg share``: the single most-referenced node's share of all
  links -- hub capture in one number even at ``f = 0``;
- ``TV``, ``chi^2/df``: how far honest nodes' pooled ``getPeer()``
  streams drift from uniform (``sampling-distance``).

Swept designs: the generic ``(rand,head,pushpull)`` instance, its
healer variant (does H > 0 age out the forged descriptors, or does the
attacker's hop-0 freshness defeat it?), the Cyclon and PeerSwap
extension samplers (do swap-style exchanges, which conserve pointers,
blunt the in-degree grab?), the Brahms defended sampler (limited
pushes, per-round quotas and min-wise sampler history -- the purpose-
built Byzantine defence), and the generic instance with descriptor
validation enabled (``;V``: does the cheap stateless sanitizer alone
already help?).

The ``f = 0`` generic run is *the* table2 ``(rand,head,pushpull)`` cell
-- same scenario, scale, engine and seed -- so its degree statistics
reproduce the existing randomness numbers exactly (asserted by
``tests/experiments/test_attack.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    Scale,
    current_scale,
    studied_protocols,
)
from repro.experiments.reporting import format_table
from repro.workloads import (
    AdversarySpec,
    ExperimentPlan,
    named_scenario,
    run_plans,
)

FRACTIONS = (0.0, 0.01, 0.1)
"""Attacker fractions swept per protocol."""

GENERIC_LABEL = "(rand,head,pushpull)"
"""The generic design the attack sweep anchors on (a table2 protocol)."""

ATTACK_MEASUREMENTS = (
    "degree-trace",
    "degrees",
    "sampling-distance",
    "indegree-concentration",
)
"""Per-cell measurements: table2's degree statistics plus the two attack
metrics (both extracted after the run, so the degree numbers of the
``f = 0`` generic cell equal table2's bit for bit)."""


@dataclasses.dataclass(frozen=True)
class AttackRow:
    """One (protocol, fraction) cell of the sweep."""

    protocol: str
    fraction: float
    engine: str
    attacker_share: float
    max_indegree_share: float
    total_variation: Optional[float]
    chi_square: Optional[float]
    mean_degree: float


@dataclasses.dataclass(frozen=True)
class AttackResult:
    """All rows plus the scale the sweep ran at."""

    scale: Scale
    rows: List[AttackRow]


def _protocol_axes(scale: Scale) -> List[Tuple[str, Optional[str], int]]:
    """``(label, engine, seed_index)`` per swept protocol.

    The generic protocol reuses its table2 seed index so the honest run
    reproduces the table2 record; extension protocols take indices past
    the table2 range and are pinned to the ``cycle`` engine (bespoke
    node factories).
    """
    table2_labels = [
        config.label for config in studied_protocols(scale.view_size)
    ]
    generic_index = table2_labels.index(GENERIC_LABEL)
    healer = max(1, min(8, scale.view_size // 2))
    return [
        (GENERIC_LABEL, None, generic_index),
        (f"{GENERIC_LABEL};h{healer}s0", None, len(table2_labels)),
        ("cyclon", "cycle", len(table2_labels) + 1),
        ("peerswap", "cycle", len(table2_labels) + 2),
        ("brahms", "cycle", len(table2_labels) + 3),
        (f"{GENERIC_LABEL};v", None, len(table2_labels) + 4),
    ]


def _scenario_for(scale: Scale, fraction: float) -> Any:
    """The plan scenario at one fraction (named = honest table2 cell)."""
    if fraction == 0.0:
        return "random-convergence"
    base = named_scenario("random-convergence", scale)
    return dataclasses.replace(
        base,
        name=f"{base.name}+hub{fraction:g}",
        adversary=AdversarySpec(kind="hub", fraction=fraction),
    )


def _row_from_record(record, fraction: float) -> AttackRow:
    concentration = record.measurements["indegree-concentration"]
    distance = record.measurements["sampling-distance"]
    return AttackRow(
        protocol=record.protocol,
        fraction=fraction,
        engine=record.engine,
        attacker_share=concentration["attacker_share"],
        max_indegree_share=concentration["max_indegree_share"],
        total_variation=distance["total_variation"],
        chi_square=distance["normalized_chi_square"],
        mean_degree=record.measurements["degrees"]["mean"],
    )


def run(
    scale: Optional[Scale] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> AttackResult:
    """Sweep ``fraction x protocol`` at the given scale.

    One single-cell plan per (protocol, fraction) -- per-protocol seeds,
    shared across fractions so ``f`` is the only moving part -- all
    executed through one pool (byte-identical at any worker count).
    """
    if scale is None:
        scale = current_scale()
    plans = []
    fractions: List[float] = []
    for label, engine, index in _protocol_axes(scale):
        for fraction in FRACTIONS:
            plans.append(
                ExperimentPlan(
                    name=f"attack {label} f={fraction:g}",
                    scenario=_scenario_for(scale, fraction),
                    protocols=(label,),
                    scales=(scale,),
                    engines=(engine,),
                    seeds=(seed * 65_537 + index,),
                    measurements=ATTACK_MEASUREMENTS,
                )
            )
            fractions.append(fraction)
    results = run_plans(plans, workers=workers)
    rows = [
        _row_from_record(result.records[0], fraction)
        for result, fraction in zip(results, fractions)
    ]
    return AttackResult(scale=scale, rows=rows)


def report(result: AttackResult) -> str:
    """Render the sweep as one table, protocols grouped, f ascending."""
    headers = [
        "protocol",
        "f",
        "engine",
        "attacker share",
        "max indeg share",
        "TV",
        "chi^2/df",
        "mean degree",
    ]
    rows: List[Sequence[object]] = [
        [
            row.protocol,
            row.fraction,
            row.engine,
            row.attacker_share,
            row.max_indegree_share,
            row.total_variation,
            row.chi_square,
            row.mean_degree,
        ]
        for row in result.rows
    ]
    title = (
        f"Attack sweep -- hub poisoning at f in {list(FRACTIONS)} "
        f"(scale={result.scale.name}, N={result.scale.n_nodes}, "
        f"c={result.scale.view_size}, K={result.scale.cycles})"
    )
    return format_table(headers, rows, precision=3, title=title)


def summary_dict(result: AttackResult) -> Dict[str, Any]:
    """JSON-ready summary (what ``BENCH_attack.json`` uploads)."""
    return {
        "scale": result.scale.name,
        "n_nodes": result.scale.n_nodes,
        "fractions": list(FRACTIONS),
        "rows": [dataclasses.asdict(row) for row in result.rows],
    }


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print at the ambient scale."""
    print(report(run()))


if __name__ == "__main__":
    main()

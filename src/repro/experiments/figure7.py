"""Figure 7: self-healing after a massive failure.

At cycle 300 of the random scenario, half of all nodes crash; on average
half of every surviving view now consists of *dead links*.  The paper
tracks the total number of dead links per cycle afterwards, in two panels:

- the four head-view-selection protocols drop from tens of thousands of
  dead links to zero within a few dozen cycles (exponentially fast,
  pushpull fastest -- the ``(*,head,pushpull)`` curves "fully overlap");
- the four rand-view-selection protocols decay linearly at best;
  ``(tail,rand,push)`` even *increases* its dead-link count.

The report adds a decay classification (cycles to halve the initial count
and residual fraction at the end of the window) that makes the exponential
vs linear distinction explicit.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.experiments.common import (
    Scale,
    current_scale,
    studied_protocols,
)
from repro.experiments.reporting import format_series, format_table
from repro.workloads import (
    CatastrophicFailure,
    ExperimentPlan,
    ScenarioSpec,
    run_plans,
)

FAILURE_FRACTION = 0.5
"""The paper's failure size: 50% of all nodes."""


@dataclasses.dataclass(frozen=True)
class HealingSeries:
    """Dead-link counts per cycle after the failure, for one protocol."""

    label: str
    cycles: List[int]
    """Cycle indices relative to the failure (1 = first cycle after)."""
    dead_links: List[int]
    initial_dead_links: int
    """Dead links immediately after the crash, before any healing cycle."""

    @property
    def half_life(self) -> Optional[int]:
        """First cycle when dead links fell below half the initial count."""
        threshold = self.initial_dead_links / 2
        for cycle, count in zip(self.cycles, self.dead_links):
            if count <= threshold:
                return cycle
        return None

    @property
    def residual_fraction(self) -> float:
        """Dead links at the end of the window / initial dead links."""
        if not self.dead_links or self.initial_dead_links == 0:
            return 0.0
        return self.dead_links[-1] / self.initial_dead_links


@dataclasses.dataclass(frozen=True)
class Figure7Result:
    """Healing series for all protocols."""

    scale: Scale
    healing_cycles: int
    series: List[HealingSeries]


def _build_plan(config, scale: Scale, healing_cycles: int, seed: int) -> ExperimentPlan:
    spec = ScenarioSpec(
        name="catastrophic-failure",
        bootstrap="random",
        cycles=scale.cycles + healing_cycles,
        events=(
            CatastrophicFailure(
                at_cycle=scale.cycles, fraction=FAILURE_FRACTION
            ),
        ),
    )
    return ExperimentPlan(
        name=f"figure7 {config.label}",
        scenario=spec,
        protocols=(config.label,),
        scales=(scale,),
        engines=(None,),
        seeds=(seed,),
        measurements=("dead-links-healing", "dead-links-initial"),
    )


def _healing_series(record, scale: Scale) -> HealingSeries:
    # The windowed census starts at the crash (its window is the
    # measurement's contract), so the series only needs rebasing onto
    # crash-relative cycle numbers.
    series = record.measurements["dead-links-healing"]
    initial = record.measurements["dead-links-initial"]
    return HealingSeries(
        label=record.protocol,
        cycles=[cycle - scale.cycles for cycle in series["cycles"]],
        dead_links=list(series["dead_links"]),
        initial_dead_links=initial if initial is not None else 0,
    )


def run(
    scale: Optional[Scale] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Figure7Result:
    """Reproduce Figure 7 at the given scale.

    The eight protocol runs are independent plans executed through one
    shared (optionally parallel) pool -- ``workers`` / ``$REPRO_WORKERS``
    select the process count, with byte-identical results at any value.
    """
    if scale is None:
        scale = current_scale()
    healing_cycles = max(30, scale.cycles // 2)
    plans = [
        _build_plan(config, scale, healing_cycles, seed * 6_700_417 + index)
        for index, config in enumerate(studied_protocols(scale.view_size))
    ]
    results = run_plans(plans, workers=workers)
    series = [
        _healing_series(result.records[0], scale) for result in results
    ]
    # Present the paper's two panels: head protocols first, then rand.
    head = [s for s in series if ",head," in s.label]
    rand = [s for s in series if ",rand," in s.label]
    return Figure7Result(
        scale=scale, healing_cycles=healing_cycles, series=head + rand
    )


def report(result: Figure7Result) -> str:
    """Render both panels plus the decay classification."""
    head = [s for s in result.series if ",head," in s.label]
    rand = [s for s in result.series if ",rand," in s.label]
    blocks: List[str] = []
    for panel, name in ((head, "head view selection"), (rand, "rand view selection")):
        columns = [(s.label, s.dead_links) for s in panel]
        blocks.append(
            format_series(
                "cycle",
                panel[0].cycles,
                columns,
                precision=0,
                title=(
                    f"Figure 7 ({name}) -- dead links after a "
                    f"{FAILURE_FRACTION:.0%} crash "
                    f"(scale={result.scale.name})"
                ),
                max_rows=12,
            )
        )
    rows: List[Sequence[object]] = []
    for s in result.series:
        rows.append(
            [
                s.label,
                s.initial_dead_links,
                s.half_life if s.half_life is not None else "never",
                f"{s.residual_fraction:.1%}",
            ]
        )
    blocks.append(
        format_table(
            ["protocol", "initial dead links", "half-life (cycles)", "residual"],
            rows,
            title="healing summary",
        )
    )
    return "\n\n".join(blocks)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print at the ambient scale."""
    print(report(run()))


if __name__ == "__main__":
    main()

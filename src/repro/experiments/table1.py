"""Table 1: partitioning of push protocols in the growing scenario.

The paper grows the overlay from a single node (100 joins per cycle up to
10^4, each joiner knowing only the oldest node) and reports, for the four
push-only protocols, the percentage of partitioned runs at cycle 300, and
-- over the partitioned runs -- the average number of clusters and the
average size of the largest cluster.

Paper values (Table 1)::

    protocol            partitioned  avg clusters  avg largest cluster
    (rand,head,push)    100%         58.36         4112.09
    (rand,rand,push)    33%          2.27          9572.18
    (tail,head,push)    100%         38.19         7150.52
    (tail,rand,push)    1%           2.00          9941.00

The qualitative claims to reproduce: head view selection partitions (into
many clusters) essentially always, rand view selection only occasionally
(into two clusters, one huge); pushpull never partitions (checked by the
companion assertion in the integration tests).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.experiments.common import (
    Scale,
    current_scale,
    push_protocols,
)
from repro.experiments.reporting import format_table
from repro.workloads import ExperimentPlan, run_plans

PAPER_REFERENCE = {
    "(rand,head,push)": (1.00, 58.36, 4112.09),
    "(rand,rand,push)": (0.33, 2.27, 9572.18),
    "(tail,head,push)": (1.00, 38.19, 7150.52),
    "(tail,rand,push)": (0.01, 2.00, 9941.00),
}
"""Paper Table 1: ``label -> (partitioned fraction, clusters, largest)``."""


@dataclasses.dataclass(frozen=True)
class Table1Row:
    """Measured statistics for one protocol."""

    label: str
    runs: int
    partitioned_fraction: float
    avg_num_clusters: Optional[float]
    """Average cluster count over partitioned runs (None if none)."""
    avg_largest_cluster: Optional[float]
    """Average largest-cluster size over partitioned runs (None if none)."""


@dataclasses.dataclass(frozen=True)
class Table1Result:
    """All rows plus the scale they were measured at."""

    scale: Scale
    rows: List[Table1Row]


def run(
    scale: Optional[Scale] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Table1Result:
    """Reproduce Table 1 at the given scale.

    Each protocol's repetitions form one plan (the per-run seeds differ
    per protocol, so the four plans share a single -- optionally
    parallel -- executor: ``workers`` / ``$REPRO_WORKERS``, byte-identical
    results at any worker count).
    """
    if scale is None:
        scale = current_scale()
    configs = push_protocols(scale.view_size)
    plans = [
        ExperimentPlan(
            name=f"table1 {config.label}",
            scenario="growing-overlay",
            protocols=(config.label,),
            scales=(scale,),
            engines=(None,),
            seeds=tuple(
                seed * 1_000_003 + index * 1_009 + run_index
                for run_index in range(scale.runs)
            ),
            measurements=("components",),
        )
        for index, config in enumerate(configs)
    ]
    results = run_plans(plans, workers=workers)
    rows: List[Table1Row] = []
    for config, result in zip(configs, results):
        partitioned_clusters: List[int] = []
        partitioned_largest: List[int] = []
        partitioned = 0
        for record in result.records:
            sizes = record.measurements["components"]
            if len(sizes) > 1:
                partitioned += 1
                partitioned_clusters.append(len(sizes))
                partitioned_largest.append(sizes[0])
        rows.append(
            Table1Row(
                label=config.label,
                runs=scale.runs,
                partitioned_fraction=partitioned / scale.runs,
                avg_num_clusters=(
                    sum(partitioned_clusters) / partitioned
                    if partitioned
                    else None
                ),
                avg_largest_cluster=(
                    sum(partitioned_largest) / partitioned
                    if partitioned
                    else None
                ),
            )
        )
    return Table1Result(scale=scale, rows=rows)


def report(result: Table1Result) -> str:
    """Render the measured table next to the paper's values."""
    headers = [
        "protocol",
        "partitioned",
        "avg clusters",
        "avg largest",
        "paper part.",
        "paper clusters",
        "paper largest",
    ]
    table_rows: List[Sequence[object]] = []
    for row in result.rows:
        paper = PAPER_REFERENCE.get(row.label)
        table_rows.append(
            [
                row.label,
                f"{row.partitioned_fraction:.0%}",
                row.avg_num_clusters,
                row.avg_largest_cluster,
                f"{paper[0]:.0%}" if paper else "-",
                paper[1] if paper else None,
                paper[2] if paper else None,
            ]
        )
    title = (
        f"Table 1 -- partitioning in the growing scenario "
        f"(scale={result.scale.name}, N={result.scale.n_nodes}, "
        f"c={result.scale.view_size}, {result.rows[0].runs} runs, "
        f"cycle {result.scale.cycles})"
    )
    return format_table(headers, table_rows, precision=2, title=title)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print at the ambient scale."""
    print(report(run()))


if __name__ == "__main__":
    main()

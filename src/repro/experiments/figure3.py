"""Figure 3: convergence from lattice and random initial topologies.

For all eight studied protocols, the paper tracks average path length,
clustering coefficient and average node degree over the first 100 cycles
starting from (i) a ring lattice (structured, large diameter) and (ii) a
uniform random topology.

Qualitative shape to reproduce:

- from the lattice, the initially huge path length collapses within a few
  cycles to near the random value (paper plots it on a log scale);
- from both starts, every protocol converges to the *same* per-protocol
  values -- self-organization independent of initial conditions;
- clustering converges above the random baseline for every protocol,
  lowest for ``(*,rand,pushpull)``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.baselines.random_topology import random_baseline_metrics
from repro.experiments.common import (
    Scale,
    current_scale,
    studied_protocols,
)
from repro.experiments.figure2 import MetricSeries
from repro.experiments.reporting import format_series
from repro.simulation.trace import MetricsRecorder
from repro.workloads import ScenarioSpec, prepare_run

SCENARIOS = ("lattice", "random")
"""The two initializations of Figure 3 (spec bootstrap kinds)."""


@dataclasses.dataclass(frozen=True)
class Figure3Result:
    """Metric series per scenario per protocol, plus the baseline."""

    scale: Scale
    series: Dict[str, List[MetricSeries]]
    """Scenario name -> one series per protocol."""
    baseline: Dict[str, float]


def _run_one(config, scenario: str, scale: Scale, seed: int) -> MetricSeries:
    runtime = prepare_run(
        ScenarioSpec(name=f"{scenario}-convergence", bootstrap=scenario),
        config,
        scale=scale,
        seed=seed,
        # The paper ran 300 cycles but plots the first 100 (the
        # interesting transient); we mirror that 1/3 proportion.
        cycles=max(scale.cycles // 3, 3 * scale.metrics_every),
    )
    recorder = MetricsRecorder(
        every=scale.metrics_every,
        clustering_sample=scale.clustering_sample,
        path_sources=scale.path_sources,
        record_initial=True,
    )
    runtime.add_observer(recorder)
    runtime.run_to_end()
    return MetricSeries(
        label=config.label,
        cycles=recorder.cycles,
        clustering=recorder.clustering,
        average_degree=recorder.average_degree,
        average_path_length=recorder.average_path_length,
    )


def run(scale: Optional[Scale] = None, seed: int = 0) -> Figure3Result:
    """Reproduce Figure 3 at the given scale."""
    if scale is None:
        scale = current_scale()
    series: Dict[str, List[MetricSeries]] = {}
    for scenario_index, scenario in enumerate(SCENARIOS):
        runs: List[MetricSeries] = []
        for index, config in enumerate(studied_protocols(scale.view_size)):
            run_seed = seed * 104_729 + scenario_index * 1_299_709 + index
            runs.append(_run_one(config, scenario, scale, run_seed))
        series[scenario] = runs
    baseline = random_baseline_metrics(
        scale.n_nodes,
        scale.view_size,
        clustering_sample=scale.clustering_sample,
        path_sources=scale.path_sources,
    )
    return Figure3Result(scale=scale, series=series, baseline=baseline)


_PANELS = (
    ("average_path_length", "average path length", "average_path_length"),
    ("clustering", "clustering coefficient", "clustering"),
    ("average_degree", "average node degree", "average_degree"),
)


def report(result: Figure3Result) -> str:
    """Render the six panels (two scenarios x three metrics)."""
    blocks: List[str] = []
    for scenario in SCENARIOS:
        runs = result.series[scenario]
        for attribute, metric_title, baseline_key in _PANELS:
            columns = [(s.label, getattr(s, attribute)) for s in runs]
            blocks.append(
                format_series(
                    "cycle",
                    runs[0].cycles,
                    columns,
                    precision=3,
                    title=(
                        f"Figure 3 ({scenario}, {metric_title}) -- "
                        f"scale={result.scale.name}; random baseline = "
                        f"{result.baseline[baseline_key]:.3f}"
                    ),
                    max_rows=10,
                )
            )
    return "\n\n".join(blocks)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print at the ambient scale."""
    print(report(run()))


if __name__ == "__main__":
    main()

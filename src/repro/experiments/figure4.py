"""Figure 4: evolution of the degree distribution (log-log).

Starting from the random topology, the paper plots the degree distribution
of each of the eight protocols at cycles 0, 3, 30 and 300 on log-log axes.

Qualitative shape to reproduce (the paper's "very important difference"):

- **head view selection**: the distribution stays narrow (comparable to or
  tighter than the random topology's binomial) and reaches its final shape
  within a few cycles;
- **rand view selection**: the distribution becomes markedly unbalanced --
  a long right tail with hub nodes of several times the mean degree --
  and keeps drifting for hundreds of cycles.

The report quantifies the plotted shape through distribution summaries
(std, max, span, tail weight) at each checkpoint; the raw histograms are
available on the result object.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import (
    Scale,
    current_scale,
    studied_protocols,
)
from repro.experiments.reporting import format_table
from repro.graph.snapshot import GraphSnapshot
from repro.workloads import named_scenario, prepare_run
from repro.stats.distributions import (
    distribution_span,
    histogram_dict,
    log_spaced_cycles,
    tail_weight,
)


@dataclasses.dataclass(frozen=True)
class DegreeSnapshot:
    """Degree distribution of one protocol at one checkpoint cycle."""

    cycle: int
    histogram: Dict[int, int]
    mean: float
    std: float
    minimum: int
    maximum: int
    span: int
    tail_weight: float
    """Fraction of nodes above twice the mean degree."""


@dataclasses.dataclass(frozen=True)
class Figure4Result:
    """Checkpointed degree distributions for every studied protocol."""

    scale: Scale
    checkpoints: List[int]
    snapshots: Dict[str, List[DegreeSnapshot]]
    """Protocol label -> one snapshot per checkpoint."""


def _summarize(cycle: int, degrees: np.ndarray) -> DegreeSnapshot:
    return DegreeSnapshot(
        cycle=cycle,
        histogram=histogram_dict(degrees.tolist()),
        mean=float(degrees.mean()),
        std=float(degrees.std()),
        minimum=int(degrees.min()),
        maximum=int(degrees.max()),
        span=distribution_span(degrees.tolist()),
        tail_weight=tail_weight(degrees.tolist()),
    )


def _run_one(config, scale: Scale, checkpoints: List[int], seed: int):
    runtime = prepare_run(
        named_scenario("random-convergence", scale),
        config,
        scale=scale,
        seed=seed,
    )
    result: List[DegreeSnapshot] = []
    for checkpoint in checkpoints:
        runtime.run_to_cycle(checkpoint)
        degrees = GraphSnapshot.from_engine(runtime.engine).degrees()
        result.append(_summarize(checkpoint, degrees))
    return result


def run(scale: Optional[Scale] = None, seed: int = 0) -> Figure4Result:
    """Reproduce Figure 4 at the given scale.

    Checkpoints follow the paper's exponential schedule, adapted to the
    scaled cycle count (``log_spaced_cycles(300) == [0, 3, 30, 300]``).
    """
    if scale is None:
        scale = current_scale()
    checkpoints = log_spaced_cycles(scale.cycles)
    snapshots = {
        config.label: _run_one(config, scale, checkpoints, seed * 31_337 + i)
        for i, config in enumerate(studied_protocols(scale.view_size))
    }
    return Figure4Result(
        scale=scale, checkpoints=checkpoints, snapshots=snapshots
    )


def report(result: Figure4Result) -> str:
    """Summaries per protocol per checkpoint (the log-log plots' shape)."""
    headers = [
        "protocol",
        "cycle",
        "mean",
        "std",
        "min",
        "max",
        "span",
        "tail>2x",
    ]
    rows: List[Sequence[object]] = []
    for label, snapshots in result.snapshots.items():
        for snapshot in snapshots:
            rows.append(
                [
                    label,
                    snapshot.cycle,
                    snapshot.mean,
                    snapshot.std,
                    snapshot.minimum,
                    snapshot.maximum,
                    snapshot.span,
                    f"{snapshot.tail_weight:.1%}",
                ]
            )
    title = (
        f"Figure 4 -- degree distributions from the random start "
        f"(scale={result.scale.name}, checkpoints={result.checkpoints}); "
        "head view selection stays narrow, rand grows a heavy tail"
    )
    return format_table(headers, rows, precision=2, title=title)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print at the ambient scale."""
    print(report(run()))


if __name__ == "__main__":
    main()

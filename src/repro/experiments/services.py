"""Services artefact: near-uniform sampling is good enough -- even churned.

The paper's evaluation shows the gossip-based service's samples are
close to, but not, uniform (Sections 4-6).  This artefact closes the
loop the way Section 1 motivates the service in the first place: it runs
the three canonical gossip *applications* -- anti-entropy broadcast,
push-pull averaging, TTL random-walk search (:mod:`repro.services`) --
over an overlay churned throughout its whole history, side by side with
the ideal uniform oracle, and shows the application-level numbers are
essentially indistinguishable:

- broadcast reaches full coverage in the same number of rounds;
- averaging variance shrinks by the same per-round factor;
- random-walk hit rates match at equal TTL.

The overlay is produced by the ``continuous-churn`` scenario, so the
gossip services additionally pay for stale descriptors (dead links);
the stale-sample counters quantify that tax.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence

from repro.core.config import ProtocolConfig
from repro.experiments.common import Scale, current_scale
from repro.experiments.reporting import format_series, format_table
from repro.services import (
    AntiEntropyBroadcast,
    AveragingResult,
    BroadcastResult,
    PushPullAveraging,
    RandomWalkSearch,
    SearchResult,
    sampling_services,
    scatter_key,
)
from repro.workloads import named_scenario, prepare_run

PROTOCOL_LABEL = "(rand,head,pushpull)"
"""The service substrate under test: the paper's Newscast-like instance."""

AVERAGING_ROUNDS = 15
SEARCH_QUERIES = 64


@dataclasses.dataclass(frozen=True)
class ServicesResult:
    """Gossip-vs-oracle results for all three services."""

    scale: Scale
    n_nodes: int
    """Live nodes of the churned overlay the services ran over."""
    broadcast: Dict[str, BroadcastResult]
    averaging: Dict[str, AveragingResult]
    search: Dict[str, SearchResult]
    """Each keyed by sampler name: ``"gossip"`` / ``"oracle"``."""


def run(scale: Optional[Scale] = None, seed: int = 0) -> ServicesResult:
    """Run the three services over a churned overlay and the oracle."""
    if scale is None:
        scale = current_scale()
    config = ProtocolConfig.from_label(
        PROTOCOL_LABEL, view_size=scale.view_size
    )
    runtime = prepare_run(
        named_scenario("continuous-churn", scale),
        config,
        scale=scale,
        seed=seed,
    )
    runtime.run_to_end()
    engine = runtime.engine

    from repro.baselines.oracle import OracleGroup

    gossip = sampling_services(engine)
    group = OracleGroup(seed=seed * 7_368_787 + 1)
    oracle = {address: group.service(address) for address in gossip}

    # Shared inputs: both samplers average the same initial values and
    # search the same replica placement, so every difference in the
    # tables below is attributable to sampling quality alone.
    seeder = random.Random(seed * 2_147_483_629 + 5)
    values = {address: seeder.uniform(0, 100) for address in gossip}
    copies = max(1, len(gossip) // 100)
    holders = scatter_key(list(gossip), copies, seeder)
    ttl = min(256, 4 * max(1, len(gossip) // copies))

    broadcast: Dict[str, BroadcastResult] = {}
    averaging: Dict[str, AveragingResult] = {}
    search: Dict[str, SearchResult] = {}
    for name, services in (("gossip", gossip), ("oracle", oracle)):
        broadcast[name] = AntiEntropyBroadcast(
            services, fanout=2, mode="push"
        ).run()
        averaging[name] = PushPullAveraging(
            services,
            values=values,
            rounds=AVERAGING_ROUNDS,
            rng=random.Random(seed * 48_271 + 11),
        ).run()
        search[name] = RandomWalkSearch(
            services, holders, ttl=ttl, rng=random.Random(seed * 69_621 + 23)
        ).run(queries=min(SEARCH_QUERIES, len(services)))
    return ServicesResult(
        scale=scale,
        n_nodes=len(gossip),
        broadcast=broadcast,
        averaging=averaging,
        search=search,
    )


def report(result: ServicesResult) -> str:
    """Render the gossip-vs-oracle comparison tables."""
    blocks: List[str] = []
    names = list(result.broadcast)

    longest = max(len(result.broadcast[n].coverage) for n in names)
    columns = []
    for name in names:
        series = list(result.broadcast[name].coverage)
        series += [series[-1]] * (longest - len(series))
        columns.append((name, series))
    blocks.append(
        format_series(
            "round",
            list(range(longest)),
            columns,
            precision=0,
            title=(
                f"broadcast coverage under continuous churn "
                f"(N={result.n_nodes} live, fanout 2, "
                f"scale={result.scale.name})"
            ),
            max_rows=12,
        )
    )

    rows: List[Sequence[object]] = []
    for name in names:
        b = result.broadcast[name]
        a = result.averaging[name]
        s = result.search[name]
        factor = a.reduction_factor
        rows.append(
            [
                name,
                b.summary(),
                "-" if factor is None else f"{1 / factor:.2f}x/round",
                f"{s.hit_rate:.0%} (ttl {s.ttl})",
                b.stale_samples + a.stale_samples + s.stale_samples,
            ]
        )
    blocks.append(
        format_table(
            [
                "sampler",
                "broadcast",
                "variance shrink",
                "search hits",
                "stale draws",
            ],
            rows,
            title="services summary (gossip vs ideal uniform oracle)",
        )
    )
    blocks.append(_verdict(result))
    return "\n\n".join(blocks)


def _verdict(result: ServicesResult) -> str:
    """State the honest conclusion the numbers actually support.

    The punchline -- near-uniform sampling is good enough -- only holds
    while the churned overlay stays connected.  At small view sizes the
    overlay can partition under sustained churn (the paper's Section 4
    observation that partitioning risk grows as the view shrinks), and
    then the gossip services *expose* the partition: broadcast stalls at
    the component boundary and walks cannot leave it.  Claiming success
    there would repeat the dishonest-coverage bug this package fixed.
    """
    gossip_b = result.broadcast["gossip"]
    gossip_s = result.search["gossip"]
    oracle_s = result.search["oracle"]
    kept_pace = gossip_b.covered and (
        gossip_s.hit_rate >= 0.8 * oracle_s.hit_rate
    )
    if kept_pace:
        return (
            "near-uniform sampling is good enough: the gossip-backed\n"
            "services match the oracle's dissemination speed, aggregation\n"
            "convergence and lookup hit rate -- while paying only the\n"
            "stale draws churn leaves in the views."
        )
    return (
        f"the gossip services fell short of the oracle at this scale:\n"
        f"broadcast reached {gossip_b.informed}/{gossip_b.n_nodes} nodes, "
        f"search hit {gossip_s.hit_rate:.0%} vs {oracle_s.hit_rate:.0%}.\n"
        f"that is the overlay partitioning under sustained churn at\n"
        f"view size c={result.scale.view_size} -- small views trade the "
        f"paper's punchline for partition\n"
        f"risk; rerun at --scale default or full (c>=15) to re-derive it."
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print at the ambient scale."""
    print(report(run()))


if __name__ == "__main__":
    main()

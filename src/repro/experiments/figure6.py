"""Figure 6: robustness of converged overlays to massive node removal.

From the converged overlay (cycle 300 of the random scenario) the paper
removes a growing fraction of random nodes and plots the average number of
nodes left *outside the largest connected cluster* (log scale), averaged
over 100 repetitions, for all eight protocols.

Qualitative shape to reproduce:

- no partitioning at all below roughly 70% removal (the paper observed
  none in 800 experiments up to 69%);
- beyond that, the curves rise steeply but stay small relative to the
  surviving population: even when partitioning occurs, almost all nodes
  remain in one giant cluster (classic random-graph behaviour);
- all eight protocols behave consistently (no dramatic outlier).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    Scale,
    current_scale,
    studied_protocols,
)
from repro.experiments.reporting import format_series
from repro.graph.components import component_sizes
from repro.graph.snapshot import GraphSnapshot
from repro.workloads import named_scenario, run_scenario

REMOVAL_FRACTIONS = (0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95)
"""The x-axis of Figure 6."""


@dataclasses.dataclass(frozen=True)
class Figure6Result:
    """Mean nodes-outside-largest-cluster per removal fraction."""

    scale: Scale
    fractions: List[float]
    outside: Dict[str, List[float]]
    """Protocol label -> mean count per fraction."""
    first_partition_fraction: Dict[str, Optional[float]]
    """Smallest tested fraction at which any repetition partitioned."""


def _run_one(
    config, scale: Scale, seed: int
) -> tuple:
    import random as random_module

    # Converge through the declarative workload API; the removal
    # resampling below is pure graph analysis on the final snapshot.
    runtime = run_scenario(
        named_scenario("random-convergence", scale),
        config,
        scale=scale,
        seed=seed,
    )
    snapshot = GraphSnapshot.from_engine(runtime.engine)
    rng = random_module.Random(seed + 1)
    means: List[float] = []
    first_partition: Optional[float] = None
    for fraction in REMOVAL_FRACTIONS:
        removals = int(round(snapshot.n * fraction))
        total_outside = 0
        for _ in range(scale.removal_repeats):
            victims = rng.sample(snapshot.addresses, removals)
            remaining = snapshot.remove_nodes(victims)
            sizes = component_sizes(remaining)
            outside = sum(sizes[1:]) if sizes else 0
            total_outside += outside
            if outside > 0 and first_partition is None:
                first_partition = fraction
        means.append(total_outside / scale.removal_repeats)
    return means, first_partition


def run(scale: Optional[Scale] = None, seed: int = 0) -> Figure6Result:
    """Reproduce Figure 6 at the given scale."""
    if scale is None:
        scale = current_scale()
    outside: Dict[str, List[float]] = {}
    first: Dict[str, Optional[float]] = {}
    for index, config in enumerate(studied_protocols(scale.view_size)):
        means, first_partition = _run_one(
            config, scale, seed * 27_644_437 + index
        )
        outside[config.label] = means
        first[config.label] = first_partition
    return Figure6Result(
        scale=scale,
        fractions=list(REMOVAL_FRACTIONS),
        outside=outside,
        first_partition_fraction=first,
    )


def report(result: Figure6Result) -> str:
    """Render the curves plus the first-partition summary."""
    columns = list(result.outside.items())
    series = format_series(
        "removed",
        [f"{f:.0%}" for f in result.fractions],
        columns,
        precision=2,
        title=(
            f"Figure 6 -- avg nodes outside the largest cluster after "
            f"random removal (scale={result.scale.name}, "
            f"{result.scale.removal_repeats} repeats)"
        ),
    )
    lines = ["", "first removal fraction with any partitioning:"]
    for label, fraction in result.first_partition_fraction.items():
        rendered = f"{fraction:.0%}" if fraction is not None else "never"
        lines.append(f"  {label:24s} {rendered}")
    return series + "\n" + "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print at the ambient scale."""
    print(report(run()))


if __name__ == "__main__":
    main()

"""CLI runner: regenerate any paper artefact from the command line.

Usage::

    repro-experiments list
    repro-experiments run table1 --scale quick
    repro-experiments run all --scale full --seed 7
    python -m repro.experiments.runner run figure7

``--scale`` overrides the ``REPRO_SCALE`` environment variable; ``full``
is the paper's parameterization (slow in pure Python -- expect hours).
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import List, Optional, Sequence

from repro.experiments import EXPERIMENT_IDS
from repro.experiments.common import SCALES, current_scale

_DESCRIPTIONS = {
    "table1": "partitioning of push protocols in the growing scenario",
    "figure2": "topology dynamics while the overlay grows",
    "figure3": "convergence from lattice and random starts",
    "figure4": "degree distribution evolution (log-log)",
    "table2": "degree dynamics of individual nodes",
    "figure5": "autocorrelation of a node's degree",
    "figure6": "connectivity under massive node removal",
    "figure7": "self-healing after a 50% crash",
}


def run_experiment(experiment_id: str, scale_name: Optional[str], seed: int) -> str:
    """Run one experiment and return its text report."""
    module = importlib.import_module(f"repro.experiments.{experiment_id}")
    scale = current_scale(scale_name)
    result = module.run(scale=scale, seed=seed)
    return module.report(result)


def _cmd_list() -> int:
    print("available experiments (paper artefacts):")
    for experiment_id in EXPERIMENT_IDS:
        print(f"  {experiment_id:10s} {_DESCRIPTIONS[experiment_id]}")
    print(f"\nscales: {', '.join(SCALES)} (select with --scale or $REPRO_SCALE)")
    return 0


def _cmd_run(ids: List[str], scale_name: Optional[str], seed: int) -> int:
    if ids == ["all"]:
        ids = list(EXPERIMENT_IDS)
    unknown = [i for i in ids if i not in EXPERIMENT_IDS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENT_IDS)} or 'all'", file=sys.stderr)
        return 2
    for experiment_id in ids:
        started = time.perf_counter()
        report = run_experiment(experiment_id, scale_name, seed)
        elapsed = time.perf_counter() - started
        print(report)
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the peer "
        "sampling paper (Jelasity et al., Middleware 2004).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "ids",
        nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENT_IDS)}) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="scale preset (default: $REPRO_SCALE or 'quick')",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="base random seed (default 0)"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(args.ids, args.scale, args.seed)


if __name__ == "__main__":
    sys.exit(main())

"""CLI runner: regenerate any paper artefact from the command line.

Usage::

    repro-experiments list
    repro-experiments run table1 --scale quick
    repro-experiments run all --scale full --seed 7
    repro-experiments run figure7 --engine fast
    python -m repro.experiments.runner run figure7

``--scale`` overrides the ``REPRO_SCALE`` environment variable; ``full``
is the paper's parameterization (hours on the reference ``cycle`` engine;
pass ``--engine fast`` to run the array-backed engine instead -- same
results for the same seed, far faster).
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time
from typing import List, Optional, Sequence

from repro.experiments import EXPERIMENT_IDS
from repro.experiments.common import (
    ENGINE_ENV_VAR,
    ENGINES,
    SCALES,
    current_scale,
)

_DESCRIPTIONS = {
    "table1": "partitioning of push protocols in the growing scenario",
    "figure2": "topology dynamics while the overlay grows",
    "figure3": "convergence from lattice and random starts",
    "figure4": "degree distribution evolution (log-log)",
    "table2": "degree dynamics of individual nodes",
    "figure5": "autocorrelation of a node's degree",
    "figure6": "connectivity under massive node removal",
    "figure7": "self-healing after a 50% crash",
}


def run_experiment(
    experiment_id: str,
    scale_name: Optional[str],
    seed: int,
    engine: Optional[str] = None,
) -> str:
    """Run one experiment and return its text report.

    ``engine`` selects the simulation engine for every helper that honors
    ``$REPRO_ENGINE`` (see :mod:`repro.experiments.common`).
    """
    module = importlib.import_module(f"repro.experiments.{experiment_id}")
    scale = current_scale(scale_name)
    previous = os.environ.get(ENGINE_ENV_VAR)
    if engine is not None:
        os.environ[ENGINE_ENV_VAR] = engine
    try:
        result = module.run(scale=scale, seed=seed)
    finally:
        if engine is not None:
            if previous is None:
                os.environ.pop(ENGINE_ENV_VAR, None)
            else:
                os.environ[ENGINE_ENV_VAR] = previous
    return module.report(result)


def _cmd_list() -> int:
    print("available experiments (paper artefacts):")
    for experiment_id in EXPERIMENT_IDS:
        print(f"  {experiment_id:10s} {_DESCRIPTIONS[experiment_id]}")
    print(f"\nscales: {', '.join(SCALES)} (select with --scale or $REPRO_SCALE)")
    print(f"engines: {', '.join(ENGINES)} (select with --engine or $REPRO_ENGINE)")
    return 0


def _cmd_run(
    ids: List[str],
    scale_name: Optional[str],
    seed: int,
    engine: Optional[str] = None,
) -> int:
    if ids == ["all"]:
        ids = list(EXPERIMENT_IDS)
    unknown = [i for i in ids if i not in EXPERIMENT_IDS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENT_IDS)} or 'all'", file=sys.stderr)
        return 2
    for experiment_id in ids:
        started = time.perf_counter()
        report = run_experiment(experiment_id, scale_name, seed, engine)
        elapsed = time.perf_counter() - started
        print(report)
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the peer "
        "sampling paper (Jelasity et al., Middleware 2004).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "ids",
        nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENT_IDS)}) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="scale preset (default: $REPRO_SCALE or 'quick')",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="base random seed (default 0)"
    )
    run_parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="simulation engine (default: $REPRO_ENGINE or 'cycle'); "
        "'fast' gives identical results, much faster at scale",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(args.ids, args.scale, args.seed, args.engine)


if __name__ == "__main__":
    sys.exit(main())

"""CLI runner: regenerate any paper artefact from the command line.

Usage::

    repro-experiments list
    repro-experiments run table1 --scale quick
    repro-experiments run all --scale full --seed 7
    repro-experiments run figure7 --engine fast
    repro-experiments run figure7 --engine fast-event --latency 0.1 --loss 0.01
    python -m repro.experiments.runner run figure7

``--scale`` overrides the ``REPRO_SCALE`` environment variable; ``full``
is the paper's parameterization (hours on the reference ``cycle`` engine;
pass ``--engine fast`` to run the array-backed engine instead -- same
results for the same seed, far faster).  ``--engine event`` /
``--engine fast-event`` re-derive an artefact under the asynchronous
execution model; only those engines accept ``--latency`` / ``--loss``
(constant per-message delay in gossip periods, Bernoulli drop
probability), and the selection -- including ``$REPRO_ENGINE`` -- is
validated eagerly before any experiment starts.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time
from typing import List, Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.experiments import EXPERIMENT_IDS
from repro.experiments.common import (
    ENGINE_ENV_VAR,
    ENGINES,
    EVENT_ENGINE_NAMES,
    LATENCY_ENV_VAR,
    LOSS_ENV_VAR,
    SCALES,
    current_scale,
    resolve_engine_name,
    resolve_message_models,
)

_DESCRIPTIONS = {
    "table1": "partitioning of push protocols in the growing scenario",
    "figure2": "topology dynamics while the overlay grows",
    "figure3": "convergence from lattice and random starts",
    "figure4": "degree distribution evolution (log-log)",
    "table2": "degree dynamics of individual nodes",
    "figure5": "autocorrelation of a node's degree",
    "figure6": "connectivity under massive node removal",
    "figure7": "self-healing after a 50% crash",
}


def run_experiment(
    experiment_id: str,
    scale_name: Optional[str],
    seed: int,
    engine: Optional[str] = None,
    latency: Optional[float] = None,
    loss: Optional[float] = None,
) -> str:
    """Run one experiment and return its text report.

    ``engine`` selects the simulation engine for every helper that honors
    ``$REPRO_ENGINE`` (see :mod:`repro.experiments.common`); ``latency``
    and ``loss`` are forwarded the same way (``$REPRO_LATENCY`` /
    ``$REPRO_LOSS``) and only apply to event-driven engines.
    """
    module = importlib.import_module(f"repro.experiments.{experiment_id}")
    scale = current_scale(scale_name)
    overrides = [
        (ENGINE_ENV_VAR, engine),
        (LATENCY_ENV_VAR, None if latency is None else repr(latency)),
        (LOSS_ENV_VAR, None if loss is None else repr(loss)),
    ]
    previous = {var: os.environ.get(var) for var, _ in overrides}
    for var, value in overrides:
        if value is not None:
            os.environ[var] = value
    try:
        result = module.run(scale=scale, seed=seed)
    finally:
        for var, value in overrides:
            if value is not None:
                if previous[var] is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = previous[var]
    return module.report(result)


def _cmd_list() -> int:
    print("available experiments (paper artefacts):")
    for experiment_id in EXPERIMENT_IDS:
        print(f"  {experiment_id:10s} {_DESCRIPTIONS[experiment_id]}")
    print(f"\nscales: {', '.join(SCALES)} (select with --scale or $REPRO_SCALE)")
    print(f"engines: {', '.join(ENGINES)} (select with --engine or $REPRO_ENGINE)")
    return 0


def _cmd_run(
    ids: List[str],
    scale_name: Optional[str],
    seed: int,
    engine: Optional[str] = None,
    latency: Optional[float] = None,
    loss: Optional[float] = None,
) -> int:
    if ids == ["all"]:
        ids = list(EXPERIMENT_IDS)
    unknown = [i for i in ids if i not in EXPERIMENT_IDS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENT_IDS)} or 'all'", file=sys.stderr)
        return 2
    # Validate the engine and latency/loss selection eagerly --
    # including the $REPRO_ENGINE / $REPRO_LATENCY / $REPRO_LOSS
    # environment fallbacks, NaN, and out-of-range values -- so a typo
    # or a knob/engine mismatch fails in milliseconds with a clear
    # message instead of a traceback (or a silently meaningless report)
    # mid-way through a long run.  resolve_message_models is the same
    # validator make_engine applies, so nothing can pass here and fail
    # there.
    try:
        scale = current_scale(scale_name)
        effective_engine = resolve_engine_name(
            engine, default=scale.default_engine
        )
        latency_model, loss_model = resolve_message_models(latency, loss)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    active_knobs = [
        flag if value is not None else env_label
        for flag, value, env_label, model in (
            ("--latency", latency, f"${LATENCY_ENV_VAR}", latency_model),
            ("--loss", loss, f"${LOSS_ENV_VAR}", loss_model),
        )
        if model is not None
    ]
    if active_knobs and effective_engine not in EVENT_ENGINE_NAMES:
        print(
            f"error: {', '.join(active_knobs)} only applies to the "
            f"event-driven engines "
            f"({', '.join(sorted(EVENT_ENGINE_NAMES))}); engine "
            f"{effective_engine!r} runs the synchronous cycle model "
            "without message timing -- add --engine event/fast-event or "
            "drop the option",
            file=sys.stderr,
        )
        return 2
    for experiment_id in ids:
        started = time.perf_counter()
        report = run_experiment(
            experiment_id, scale_name, seed, engine, latency, loss
        )
        elapsed = time.perf_counter() - started
        print(report)
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the peer "
        "sampling paper (Jelasity et al., Middleware 2004).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "ids",
        nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENT_IDS)}) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="scale preset (default: $REPRO_SCALE or 'quick')",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="base random seed (default 0)"
    )
    run_parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="simulation engine (default: $REPRO_ENGINE or 'cycle'); "
        "'fast' gives identical results, much faster at scale; "
        "'event'/'fast-event' run the asynchronous latency/loss model",
    )
    run_parser.add_argument(
        "--latency",
        type=float,
        default=None,
        metavar="PERIODS",
        help="constant per-message latency in gossip periods "
        "(event-driven engines only; also $REPRO_LATENCY)",
    )
    run_parser.add_argument(
        "--loss",
        type=float,
        default=None,
        metavar="PROB",
        help="per-message Bernoulli loss probability "
        "(event-driven engines only; also $REPRO_LOSS)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(
        args.ids, args.scale, args.seed, args.engine, args.latency, args.loss
    )


if __name__ == "__main__":
    sys.exit(main())

"""CLI runner: regenerate any paper artefact from the command line.

Usage::

    repro-experiments list
    repro-experiments list-scenarios
    repro-experiments run table1 --scale quick
    repro-experiments run all --scale full --seed 7
    repro-experiments run figure7 --engine fast
    repro-experiments run figure7 --engine fast-event --latency 0.1 --loss 0.01
    repro-experiments run-spec my_study.json --out results.json
    python -m repro.experiments.runner run figure7

``--scale`` overrides the ``REPRO_SCALE`` environment variable; ``full``
is the paper's parameterization (hours on the reference ``cycle`` engine;
pass ``--engine fast`` to run the array-backed engine instead -- same
results for the same seed, far faster).  ``--engine event`` /
``--engine fast-event`` re-derive an artefact under the asynchronous
execution model; only those engines accept ``--latency`` / ``--loss``
(constant per-message delay in gossip periods, Bernoulli drop
probability), and the selection -- including ``$REPRO_ENGINE`` -- is
validated eagerly before any experiment starts.

``run-spec`` executes a declarative workload document
(:mod:`repro.workloads`): either a full
:class:`~repro.workloads.plan.ExperimentPlan` (``protocols x scenario x
scales x engines x seeds``) or a bare
:class:`~repro.workloads.spec.ScenarioSpec`, which is wrapped into a
single-cell plan parameterized by the same ``--scale`` / ``--engine`` /
``--seed`` flags the artefact runner takes.  The document is validated
eagerly -- unknown event kinds, engines, scales or out-of-range
parameters exit 2 before any simulation starts -- and ``--out`` writes
the machine-readable records (final-overlay digests plus measurement
series) as JSON.

Multi-cell plans (``run-spec``, and the plan-driven artefacts table1 /
table2 / figure7) execute on ``--workers N`` processes (``0`` = one per
core; also ``$REPRO_WORKERS``); the ``full`` scale preset parallelizes
automatically.  Parallel execution is byte-identical to serial -- same
records, ordering and overlay digests -- pinned by
``tests/workloads/test_parallel.py``.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time
from typing import List, Optional, Sequence

from repro.core.errors import ConfigurationError, PlanExecutionError
from repro.experiments import EXPERIMENT_IDS
from repro.experiments.common import (
    ENGINE_ENV_VAR,
    ENGINES,
    EVENT_ENGINE_NAMES,
    LATENCY_ENV_VAR,
    LOSS_ENV_VAR,
    SCALES,
    SHARDED_ENGINE_NAMES,
    SHARDS_ENV_VAR,
    WORKERS_ENV_VAR,
    current_scale,
    resolve_engine_name,
    resolve_message_models,
    resolve_shards,
    resolve_workers,
)

_DESCRIPTIONS = {
    "table1": "partitioning of push protocols in the growing scenario",
    "figure2": "topology dynamics while the overlay grows",
    "figure3": "convergence from lattice and random starts",
    "figure4": "degree distribution evolution (log-log)",
    "table2": "degree dynamics of individual nodes",
    "figure5": "autocorrelation of a node's degree",
    "figure6": "connectivity under massive node removal",
    "figure7": "self-healing after a 50% crash",
    "services": "gossip services (broadcast/averaging/search) vs oracle",
    "live-control": "live UDP cluster bootstrapped only through the seed "
    "node (control plane)",
    "attack": "hub-poisoning sweep: attacker fraction x protocol "
    "(generic, healer, cyclon, peerswap, brahms, generic+validation)",
}


def run_experiment(
    experiment_id: str,
    scale_name: Optional[str],
    seed: int,
    engine: Optional[str] = None,
    latency: Optional[float] = None,
    loss: Optional[float] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
) -> str:
    """Run one experiment and return its text report.

    ``engine`` selects the simulation engine for every helper that honors
    ``$REPRO_ENGINE`` (see :mod:`repro.experiments.common`); ``latency``,
    ``loss``, ``workers`` and ``shards`` are forwarded the same way
    (``$REPRO_LATENCY`` / ``$REPRO_LOSS`` / ``$REPRO_WORKERS`` /
    ``$REPRO_SHARDS``) -- latency/loss only apply to event-driven
    engines, ``workers`` to the artefacts that execute multi-cell plans,
    ``shards`` to the ``fast-sharded`` engine.
    """
    # Experiment ids are user-facing (hyphenated); modules are importable.
    module_name = experiment_id.replace("-", "_")
    module = importlib.import_module(f"repro.experiments.{module_name}")
    scale = current_scale(scale_name)
    overrides = [
        (ENGINE_ENV_VAR, engine),
        (LATENCY_ENV_VAR, None if latency is None else repr(latency)),
        (LOSS_ENV_VAR, None if loss is None else repr(loss)),
        (WORKERS_ENV_VAR, None if workers is None else str(workers)),
        (SHARDS_ENV_VAR, None if shards is None else str(shards)),
    ]
    previous = {var: os.environ.get(var) for var, _ in overrides}
    for var, value in overrides:
        if value is not None:
            os.environ[var] = value
    try:
        result = module.run(scale=scale, seed=seed)
    finally:
        for var, value in overrides:
            if value is not None:
                if previous[var] is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = previous[var]
    return module.report(result)


def _cmd_list() -> int:
    from repro.workloads import MEASUREMENTS, SCENARIOS
    from repro.workloads.spec import BOOTSTRAP_KINDS, EVENT_KINDS

    print("available experiments (paper artefacts):")
    for experiment_id in EXPERIMENT_IDS:
        print(f"  {experiment_id:10s} {_DESCRIPTIONS[experiment_id]}")
    print(f"\nscales: {', '.join(SCALES)} (select with --scale or $REPRO_SCALE)")
    print(f"engines: {', '.join(ENGINES)} (select with --engine or $REPRO_ENGINE)")
    print(
        f"scenarios: {', '.join(SCENARIOS)} "
        "(details: repro-experiments list-scenarios)"
    )
    print(f"scenario event kinds: {', '.join(sorted(EVENT_KINDS))}")
    print(f"bootstrap kinds: {', '.join(BOOTSTRAP_KINDS)}")
    print(f"measurements: {', '.join(sorted(MEASUREMENTS))}")
    return 0


def _cmd_list_scenarios() -> int:
    from repro.workloads import MEASUREMENTS
    from repro.workloads.library import scenario_descriptions
    from repro.workloads.spec import BOOTSTRAP_KINDS, EVENT_KINDS

    print("built-in scenarios (usable by name in run-spec plans):")
    for name, description in scenario_descriptions().items():
        print(f"  {name:22s} {description}")
    print("\nschedule event kinds (for inline scenario specs):")
    for kind, cls in sorted(EVENT_KINDS.items()):
        summary = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"  {kind:22s} {summary}")
    print(f"\nbootstrap kinds: {', '.join(BOOTSTRAP_KINDS)}")
    print("\nmeasurements (recordable per run):")
    for name, measurement in sorted(MEASUREMENTS.items()):
        print(f"  {name:22s} {measurement.description}")
    return 0


def _cmd_run_spec(
    path: str,
    out: Optional[str],
    scale_name: Optional[str],
    engine: Optional[str],
    seeds: Optional[List[int]],
    protocols: Optional[List[str]],
    workers: Optional[int] = None,
    shards: Optional[int] = None,
) -> int:
    import dataclasses
    import json
    import os

    from repro.experiments.reporting import format_table
    from repro.workloads import ExperimentPlan, ScenarioSpec, run_plan

    try:
        with open(path, encoding="utf-8") as handle:
            document = handle.read()
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return 2
    # A document with plan axes is a plan; anything else must parse as a
    # bare scenario spec, wrapped into a single-cell plan from the CLI
    # flags.  Both paths validate eagerly (exit 2, no simulation).
    try:
        payload = json.loads(document)
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"spec document must be a JSON object, got {payload!r}"
            )
        if "protocols" in payload or "scenario" in payload:
            plan = ExperimentPlan.from_dict(payload)
        else:
            plan = ExperimentPlan(
                name=payload.get("name", "spec"),
                scenario=ScenarioSpec.from_dict(payload),
            )
        overrides = {}
        if scale_name is not None:
            overrides["scales"] = (scale_name,)
        if engine is not None:
            overrides["engines"] = (engine,)
        if seeds:
            overrides["seeds"] = tuple(seeds)
        if protocols:
            overrides["protocols"] = tuple(protocols)
        if overrides:
            plan = dataclasses.replace(plan, **overrides)
        # Eager workers validation: a typo'd --workers / $REPRO_WORKERS
        # exits 2 here, before any simulation starts.  effective_workers
        # is the executor's own resolution, so the printed count always
        # matches the PlanResult.workers provenance in --out records.
        from repro.workloads.plan import effective_workers

        resolved_workers = effective_workers([plan], workers)
        resolved_shards = resolve_shards(shards)
        if resolved_shards is not None:
            bad_engines = [
                name
                for name in plan.engines
                if name not in SHARDED_ENGINE_NAMES
            ]
            if bad_engines:
                knob = (
                    "--shards" if shards is not None else f"${SHARDS_ENV_VAR}"
                )
                raise ConfigurationError(
                    f"{knob} only applies to the sharded engine "
                    f"({', '.join(sorted(SHARDED_ENGINE_NAMES))}); the plan "
                    f"resolves engine(s) {bad_engines!r} -- add --engine "
                    "fast-sharded or drop the option"
                )
    except (ConfigurationError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"plan {plan.name!r}: {len(plan.protocols)} protocol(s) x "
        f"scenario x {len(plan.scales)} scale(s) x "
        f"{len(plan.engines)} engine(s) x {len(plan.seeds)} seed(s) "
        f"= {plan.total_runs} run(s) on {resolved_workers} worker(s)"
    )
    started = time.perf_counter()
    # The shard count travels to the plan cells (and any pool workers)
    # the same way every other knob does: through its environment
    # variable, restored afterwards.
    previous_shards = os.environ.get(SHARDS_ENV_VAR)
    if resolved_shards is not None:
        os.environ[SHARDS_ENV_VAR] = str(resolved_shards)
    try:
        result = run_plan(
            plan,
            on_record=lambda record: print(
                f"  [{record.scenario} | {record.protocol} | {record.engine} | "
                f"{record.scale} | seed {record.seed}] "
                f"{record.final_nodes} nodes, "
                f"{record.completed_exchanges} exchanges, "
                f"digest {record.views_digest[:12]}, "
                f"{record.elapsed_seconds:.1f}s"
            ),
            workers=resolved_workers,
        )
    except ConfigurationError as error:
        # Anything construction missed (defensive; axis entries are
        # validated eagerly above) still exits cleanly.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except PlanExecutionError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if resolved_shards is not None:
            if previous_shards is None:
                os.environ.pop(SHARDS_ENV_VAR, None)
            else:
                os.environ[SHARDS_ENV_VAR] = previous_shards
    elapsed = time.perf_counter() - started
    headers = [
        "scenario", "protocol", "engine", "scale", "seed",
        "cycles", "nodes", "exchanges", "digest",
    ]
    rows = [
        [
            record.scenario, record.protocol, record.engine, record.scale,
            record.seed, record.cycles, record.final_nodes,
            record.completed_exchanges, record.views_digest[:12],
        ]
        for record in result.records
    ]
    print()
    print(format_table(headers, rows, title=f"plan {plan.name!r} results"))
    print(f"\n[{plan.total_runs} run(s) completed in {elapsed:.1f}s]")
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
        print(f"records written to {out}")
    return 0


def _cmd_run(
    ids: List[str],
    scale_name: Optional[str],
    seed: int,
    engine: Optional[str] = None,
    latency: Optional[float] = None,
    loss: Optional[float] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
) -> int:
    if ids == ["all"]:
        ids = list(EXPERIMENT_IDS)
    unknown = [i for i in ids if i not in EXPERIMENT_IDS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(EXPERIMENT_IDS)} or 'all'", file=sys.stderr)
        return 2
    # Validate the engine and latency/loss selection eagerly --
    # including the $REPRO_ENGINE / $REPRO_LATENCY / $REPRO_LOSS
    # environment fallbacks, NaN, and out-of-range values -- so a typo
    # or a knob/engine mismatch fails in milliseconds with a clear
    # message instead of a traceback (or a silently meaningless report)
    # mid-way through a long run.  resolve_message_models is the same
    # validator make_engine applies, so nothing can pass here and fail
    # there.
    try:
        scale = current_scale(scale_name)
        effective_engine = resolve_engine_name(
            engine, default=scale.default_engine
        )
        latency_model, loss_model = resolve_message_models(latency, loss)
        resolve_workers(workers, scales=(scale,))
        resolved_shards = resolve_shards(shards)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    active_knobs = [
        flag if value is not None else env_label
        for flag, value, env_label, model in (
            ("--latency", latency, f"${LATENCY_ENV_VAR}", latency_model),
            ("--loss", loss, f"${LOSS_ENV_VAR}", loss_model),
        )
        if model is not None
    ]
    if active_knobs and effective_engine not in EVENT_ENGINE_NAMES:
        print(
            f"error: {', '.join(active_knobs)} only applies to the "
            f"event-driven engines "
            f"({', '.join(sorted(EVENT_ENGINE_NAMES))}); engine "
            f"{effective_engine!r} runs the synchronous cycle model "
            "without message timing -- add --engine event/fast-event or "
            "drop the option",
            file=sys.stderr,
        )
        return 2
    if (
        resolved_shards is not None
        and effective_engine not in SHARDED_ENGINE_NAMES
    ):
        knob = "--shards" if shards is not None else f"${SHARDS_ENV_VAR}"
        print(
            f"error: {knob} only applies to the sharded engine "
            f"({', '.join(sorted(SHARDED_ENGINE_NAMES))}); engine "
            f"{effective_engine!r} runs single-process -- add --engine "
            "fast-sharded or drop the option",
            file=sys.stderr,
        )
        return 2
    for experiment_id in ids:
        started = time.perf_counter()
        report = run_experiment(
            experiment_id, scale_name, seed, engine, latency, loss, workers,
            shards,
        )
        elapsed = time.perf_counter() - started
        print(report)
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the peer "
        "sampling paper (Jelasity et al., Middleware 2004).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser(
        "list",
        help="list experiments, scales, engines and the scenario "
        "vocabulary",
    )
    subparsers.add_parser(
        "list-scenarios",
        help="describe the built-in scenarios, event kinds and "
        "measurements of the workload API",
    )
    spec_parser = subparsers.add_parser(
        "run-spec",
        help="execute a declarative workload document (an ExperimentPlan "
        "or bare ScenarioSpec JSON file)",
    )
    spec_parser.add_argument(
        "path", help="JSON file holding the plan or scenario spec"
    )
    spec_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the machine-readable records as JSON",
    )
    spec_parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="override the plan's scale axis with one preset",
    )
    spec_parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="override the plan's engine axis with one engine",
    )
    spec_parser.add_argument(
        "--seed",
        type=int,
        action="append",
        default=None,
        metavar="N",
        help="override the plan's seeds (repeatable)",
    )
    spec_parser.add_argument(
        "--protocol",
        action="append",
        default=None,
        metavar="LABEL",
        help="override the plan's protocols, e.g. '(rand,head,pushpull)' "
        "or '(rand,head,pushpull);H1S1' (repeatable)",
    )
    spec_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for plan cells (0 = one per core; default: "
        "$REPRO_WORKERS, then the scale preset -- 'full' parallelizes "
        "automatically); results are byte-identical to serial execution",
    )
    spec_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="shard processes within each single run (0 = one per core; "
        "also $REPRO_SHARDS); fast-sharded engine only -- results are "
        "identical at any shard count",
    )
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "ids",
        nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENT_IDS)}) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="scale preset (default: $REPRO_SCALE or 'quick')",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="base random seed (default 0)"
    )
    run_parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="simulation engine (default: $REPRO_ENGINE or 'cycle'); "
        "'fast' gives identical results, much faster at scale; "
        "'event'/'fast-event' run the asynchronous latency/loss model",
    )
    run_parser.add_argument(
        "--latency",
        type=float,
        default=None,
        metavar="PERIODS",
        help="constant per-message latency in gossip periods "
        "(event-driven engines only; also $REPRO_LATENCY)",
    )
    run_parser.add_argument(
        "--loss",
        type=float,
        default=None,
        metavar="PROB",
        help="per-message Bernoulli loss probability "
        "(event-driven engines only; also $REPRO_LOSS)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the plan-driven artefacts "
        "(0 = one per core; also $REPRO_WORKERS); byte-identical results "
        "at any worker count",
    )
    run_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="shard processes within each single run (0 = one per core; "
        "also $REPRO_SHARDS); fast-sharded engine only -- results are "
        "identical at any shard count",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "list-scenarios":
        return _cmd_list_scenarios()
    if args.command == "run-spec":
        return _cmd_run_spec(
            args.path,
            args.out,
            args.scale,
            args.engine,
            args.seed,
            args.protocol,
            args.workers,
            args.shards,
        )
    return _cmd_run(
        args.ids,
        args.scale,
        args.seed,
        args.engine,
        args.latency,
        args.loss,
        args.workers,
        args.shards,
    )


if __name__ == "__main__":
    sys.exit(main())

"""Table 2: dynamics of the degree of individual nodes.

Starting from the random topology, the degree of ``traced_nodes`` fixed
nodes is recorded for every cycle; the paper reports ``D_K`` (mean degree
over the whole overlay in the final cycle), ``d_bar`` (mean of the traced
nodes' time-averaged degrees) and ``sqrt(sigma)`` (standard deviation of
those time averages).

Paper values (Table 2, N = 10^4, c = 30, K = 300)::

    protocol              D_300    d_bar    sqrt(sigma)
    (rand,head,push)      52.623   52.703   1.394
    (tail,head,push)      54.785   55.519   2.690
    (rand,head,pushpull)  52.717   52.933   1.756
    (tail,head,pushpull)  53.916   53.888   2.176
    (rand,rand,push)      58.404   60.804   19.062
    (tail,rand,push)      58.844   58.746   17.287
    (rand,rand,pushpull)  59.569   61.306   13.886
    (tail,rand,pushpull)  59.666   58.616   9.756

Qualitative claims to reproduce: all nodes oscillate around the same mean
(``d_bar ~ D_K``); ``sqrt(sigma)`` is an order of magnitude larger for rand
view selection than for head; rand protocols sit near the random baseline
average degree, head protocols clearly below it.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.experiments.common import (
    Scale,
    current_scale,
    studied_protocols,
)
from repro.experiments.reporting import format_table
from repro.stats.summary import DegreeDynamics, degree_dynamics_summary
from repro.workloads import ExperimentPlan, run_plans

PAPER_REFERENCE = {
    "(rand,head,push)": (52.623, 52.703, 1.394),
    "(tail,head,push)": (54.785, 55.519, 2.690),
    "(rand,head,pushpull)": (52.717, 52.933, 1.756),
    "(tail,head,pushpull)": (53.916, 53.888, 2.176),
    "(rand,rand,push)": (58.404, 60.804, 19.062),
    "(tail,rand,push)": (58.844, 58.746, 17.287),
    "(rand,rand,pushpull)": (59.569, 61.306, 13.886),
    "(tail,rand,pushpull)": (59.666, 58.616, 9.756),
}
"""Paper Table 2: ``label -> (D_300, d_bar, sqrt_sigma)``."""


@dataclasses.dataclass(frozen=True)
class Table2Row:
    """Measured degree dynamics of one protocol."""

    label: str
    dynamics: DegreeDynamics


@dataclasses.dataclass(frozen=True)
class Table2Result:
    """All rows plus the scale."""

    scale: Scale
    rows: List[Table2Row]


def _row_from_record(record) -> Table2Row:
    # D_K is the mean over all final degrees; the "degrees" measurement
    # records exactly that mean, so feeding it back as a singleton series
    # reproduces the statistic bit-for-bit without shipping 10^4 raw
    # degrees through the record.
    dynamics = degree_dynamics_summary(
        record.measurements["degree-trace"]["series"],
        [record.measurements["degrees"]["mean"]],
    )
    return Table2Row(label=record.protocol, dynamics=dynamics)


def run(
    scale: Optional[Scale] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Table2Result:
    """Reproduce Table 2 at the given scale.

    One single-cell plan per protocol (per-protocol seeds), all executed
    through a shared pool when ``workers`` / ``$REPRO_WORKERS`` ask for
    parallelism -- byte-identical results at any worker count.
    """
    if scale is None:
        scale = current_scale()
    configs = studied_protocols(scale.view_size)
    plans = [
        ExperimentPlan(
            name=f"table2 {config.label}",
            scenario="random-convergence",
            protocols=(config.label,),
            scales=(scale,),
            engines=(None,),
            seeds=(seed * 65_537 + index,),
            measurements=("degree-trace", "degrees"),
        )
        for index, config in enumerate(configs)
    ]
    results = run_plans(plans, workers=workers)
    rows = [_row_from_record(result.records[0]) for result in results]
    # Present in the paper's order: head rows first, then rand rows.
    head_rows = [r for r in rows if ",head," in r.label]
    rand_rows = [r for r in rows if ",rand," in r.label]
    return Table2Result(scale=scale, rows=head_rows + rand_rows)


def report(result: Table2Result) -> str:
    """Render the measured statistics next to the paper's values."""
    headers = [
        "protocol",
        "D_K",
        "d_bar",
        "sqrt(sigma)",
        "paper D_300",
        "paper d_bar",
        "paper sqrt(sigma)",
    ]
    rows: List[Sequence[object]] = []
    for row in result.rows:
        paper = PAPER_REFERENCE.get(row.label)
        rows.append(
            [
                row.label,
                row.dynamics.final_cycle_mean_degree,
                row.dynamics.traced_mean,
                row.dynamics.traced_std,
                paper[0] if paper else None,
                paper[1] if paper else None,
                paper[2] if paper else None,
            ]
        )
    title = (
        f"Table 2 -- degree dynamics of individual nodes "
        f"(scale={result.scale.name}, N={result.scale.n_nodes}, "
        f"c={result.scale.view_size}, K={result.scale.cycles}, "
        f"{result.scale.traced_nodes} traced nodes)"
    )
    return format_table(headers, rows, precision=3, title=title)


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: run and print at the ambient scale."""
    print(report(run()))


if __name__ == "__main__":
    main()

"""Plain-text reporting: tables and series in the paper's shape.

Every experiment's ``report()`` renders through these helpers so that
benchmark output, the CLI runner and EXPERIMENTS.md all show identical
rows.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence


def format_value(value: object, precision: int = 2) -> str:
    """Render one cell: floats rounded, ``None``/nan as ``-``."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """An aligned ASCII table with a header rule.

    >>> print(format_table(["a", "b"], [[1, 2.5]], title="demo"))
    demo
    a  b
    -  ----
    1  2.50
    """
    rendered: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    columns: Sequence[tuple],
    precision: int = 3,
    title: Optional[str] = None,
    max_rows: Optional[int] = None,
) -> str:
    """A table of one x-column and several named y-series.

    ``columns`` is a sequence of ``(name, values)`` pairs; rows beyond
    ``max_rows`` are thinned evenly (first and last kept) to keep console
    reports readable.
    """
    indices = list(range(len(x_values)))
    if max_rows is not None and len(indices) > max_rows:
        step = (len(indices) - 1) / (max_rows - 1)
        indices = sorted({int(round(i * step)) for i in range(max_rows)})
    headers = [x_label] + [name for name, _ in columns]
    rows = []
    for i in indices:
        row: List[object] = [x_values[i]]
        for _, values in columns:
            row.append(values[i] if i < len(values) else None)
        rows.append(row)
    return format_table(headers, rows, precision=precision, title=title)


def write_csv(
    path: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Write rows as CSV (floats unrounded) for downstream plotting.

    The experiment CLI's ``--csv-dir`` option routes every report's data
    through here so the paper's figures can be regenerated with any
    plotting tool.
    """
    import csv

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(["" if cell is None else cell for cell in row])


def series_rows(
    x_values: Sequence[object],
    columns: Sequence[tuple],
) -> list:
    """Series data as plain rows (x followed by each column's value)."""
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for _, values in columns:
            row.append(values[i] if i < len(values) else None)
        rows.append(row)
    return rows


def format_loglog_histogram(
    pairs: Sequence[tuple],
    title: Optional[str] = None,
    max_rows: int = 20,
) -> str:
    """Render (value, count) pairs as the log-log points of Figure 4."""
    return format_series(
        "degree",
        [p[0] for p in pairs],
        [("count", [p[1] for p in pairs])],
        precision=0,
        title=title,
        max_rows=max_rows,
    )

"""Shared experiment infrastructure: scales, protocol sets, run helpers.

The paper's full parameters (N = 10^4, c = 30, 300 cycles, 100 repetitions)
are expensive in pure Python, so every experiment accepts a :class:`Scale`.
``full`` is the paper; ``default`` and ``quick`` shrink N, the cycle count
and the repetition count while keeping every qualitative conclusion intact
(see DESIGN.md Section 5 for the substitution argument).
"""

from __future__ import annotations

import dataclasses
import math
import os
import random
from typing import Dict, Optional, Tuple, Type, Union

from repro.core.config import ProtocolConfig
from repro.core.errors import ConfigurationError
from repro.core.policies import PeerSelection, Propagation, ViewSelection
from repro.net.engine import LiveEngine
from repro.simulation.base import BaseEngine
from repro.simulation.engine import CycleEngine
from repro.simulation.event_engine import EventEngine
from repro.simulation.fast import FastCycleEngine
from repro.simulation.fast_event import FastEventEngine
from repro.simulation.sharded import (
    SHARDS_ENV_VAR,
    ShardedCycleEngine,
    resolve_shards,
)
from repro.simulation.network import (
    BernoulliLoss,
    ConstantLatency,
    LatencyModel,
    LossModel,
)

SCALE_ENV_VAR = "REPRO_SCALE"
"""Environment variable selecting the default scale preset."""

ENGINE_ENV_VAR = "REPRO_ENGINE"
"""Environment variable selecting the default simulation engine."""

LATENCY_ENV_VAR = "REPRO_LATENCY"
"""Constant per-message latency (in gossip periods) for event engines."""

LOSS_ENV_VAR = "REPRO_LOSS"
"""Per-message Bernoulli loss probability for event engines."""

WORKERS_ENV_VAR = "REPRO_WORKERS"
"""Worker-process count for parallel plan execution (0 = one per core)."""

# SHARDS_ENV_VAR ("REPRO_SHARDS") is defined next to the sharded engine
# and re-exported here: shard count for `fast-sharded` (0 = one per core).


ENGINES: Dict[str, Type[BaseEngine]] = {
    "cycle": CycleEngine,
    "fast": FastCycleEngine,
    "live": LiveEngine,
    "event": EventEngine,
    "fast-event": FastEventEngine,
    "fast-sharded": ShardedCycleEngine,
}
"""Engines selectable by name.  ``cycle`` is the object-per-node reference
implementation; ``fast`` is the array-backed engine (byte-identical results
given the same seed, far faster at scale); ``live`` executes every exchange
over the in-process datagram transport of :mod:`repro.net` (byte-identical
to ``cycle``, for small-N validation of the deployment layer); ``event``
and ``fast-event`` run the asynchronous timer/latency/loss model --
byte-identical to *each other* for the same seed, with ``fast-event``
sustaining 10^4..10^5 nodes over the flat-array kernel.  The cycle family
and the event family are statistically comparable but follow different
execution models, so their overlays are not byte-equal across families.
``fast-sharded`` is a third execution family -- deterministic synchronous
BSP rounds over the same flat-array kernel, optionally partitioned across
``--shards`` worker processes through shared memory; its results are
identical for every shard count and backend, which is what makes one run
scalable toward N = 10^6 (see :mod:`repro.simulation.sharded`)."""

EVENT_ENGINE_NAMES = frozenset({"event", "fast-event"})
"""Registry names whose engines model per-message latency and loss."""

SHARDED_ENGINE_NAMES = frozenset({"fast-sharded"})
"""Registry names whose engines accept the ``shards`` knob."""


@dataclasses.dataclass(frozen=True)
class Scale:
    """Size parameters for one experiment run."""

    name: str
    n_nodes: int
    view_size: int
    cycles: int
    """The paper's 300-cycle horizon, scaled."""
    growth_cycles: int
    """Cycles over which the growing scenario adds nodes (paper: 100)."""
    runs: int
    """Repetitions for statistics (paper: 100)."""
    traced_nodes: int
    """Degree-traced nodes for Table 2 / Figure 5 (paper: 50)."""
    removal_repeats: int
    """Repetitions per removal fraction in Figure 6 (paper: 100)."""
    metrics_every: int
    """Record topology metrics every this many cycles."""
    clustering_sample: Optional[int]
    """Node sample for clustering estimates (None = exact)."""
    path_sources: Optional[int]
    """BFS sources for path-length estimates (None = exact)."""
    default_engine: str = "cycle"
    """Engine used at this scale unless overridden (``--engine`` /
    ``$REPRO_ENGINE``).  ``full`` defaults to ``fast``: the engines are
    byte-identical for the same seed, and only the array-backed engine
    makes the paper's true N = 10^4 practical out of the box."""

    default_workers: int = 1
    """Worker processes for multi-cell plan execution unless overridden
    (``--workers`` / ``$REPRO_WORKERS``).  ``0`` means one per CPU core;
    ``full`` defaults to that, so paper-scale sweeps use every core out
    of the box.  Parallel execution is byte-identical to serial (pinned
    by ``tests/workloads/test_parallel.py``), so the choice only affects
    wall clock, never numbers."""

    @property
    def growth_rate(self) -> int:
        """Joins per cycle in the growing scenario."""
        return max(1, -(-self.n_nodes // self.growth_cycles))  # ceil division

    def validate(self) -> "Scale":
        """Eagerly check field types and ranges; returns ``self``.

        The registry presets are authored here and trusted; this is the
        boundary check for *inline* scales arriving through an
        :class:`~repro.workloads.plan.ExperimentPlan` document, so a
        hand-written JSON scale fails at plan construction with a
        :class:`~repro.core.errors.ConfigurationError`, never mid-study.
        """

        def bad(field: str, expectation: str):
            value = getattr(self, field)
            return ConfigurationError(
                f"inline scale {self.name!r}: {field} must be "
                f"{expectation}, got {value!r}"
            )

        def check_int(field: str, minimum: int) -> None:
            value = getattr(self, field)
            if not isinstance(value, int) or isinstance(value, bool):
                raise bad(field, "an integer")
            if value < minimum:
                raise bad(field, f">= {minimum}")

        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"inline scale name must be a non-empty string, got "
                f"{self.name!r}"
            )
        for field, minimum in (
            ("n_nodes", 1),
            ("view_size", 1),
            ("cycles", 1),
            ("growth_cycles", 1),
            ("runs", 1),
            ("traced_nodes", 0),
            ("removal_repeats", 1),
            ("metrics_every", 1),
            ("default_workers", 0),
        ):
            check_int(field, minimum)
        for field in ("clustering_sample", "path_sources"):
            if getattr(self, field) is not None:
                check_int(field, 1)
        if self.default_engine not in ENGINES:
            raise bad("default_engine", f"one of {sorted(ENGINES)}")
        return self


SCALES: Dict[str, Scale] = {
    # Scaled presets keep the paper's critical proportion for the growing
    # scenario: the join rate is ~3.3x the view size (paper: 100 joins per
    # cycle vs c = 30), which is what makes the contact node's view
    # overflow and the push-only protocols partition (Table 1).
    "quick": Scale(
        name="quick",
        n_nodes=500,
        view_size=12,
        cycles=90,
        growth_cycles=13,
        runs=8,
        traced_nodes=20,
        removal_repeats=10,
        metrics_every=3,
        clustering_sample=150,
        path_sources=25,
    ),
    "default": Scale(
        name="default",
        n_nodes=1000,
        view_size=15,
        cycles=150,
        growth_cycles=20,
        runs=20,
        traced_nodes=50,
        removal_repeats=30,
        metrics_every=5,
        clustering_sample=400,
        path_sources=40,
    ),
    "full": Scale(
        name="full",
        n_nodes=10_000,
        view_size=30,
        cycles=300,
        growth_cycles=100,
        runs=100,
        traced_nodes=50,
        removal_repeats=100,
        metrics_every=10,
        clustering_sample=1000,
        path_sources=50,
        default_engine="fast",
        default_workers=0,
    ),
}


def current_scale(name: Optional[str] = None) -> Scale:
    """Resolve a scale by explicit name, ``$REPRO_SCALE``, or ``quick``."""
    if name is None:
        name = os.environ.get(SCALE_ENV_VAR, "quick")
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        ) from None


def resolve_engine_name(
    name: Optional[str] = None, default: Optional[str] = None
) -> str:
    """Resolve an engine name: explicit > ``$REPRO_ENGINE`` > ``default``.

    Raises :class:`~repro.core.errors.ConfigurationError` -- listing the
    full registry -- for names outside :data:`ENGINES`, so a bad
    ``$REPRO_ENGINE`` fails eagerly instead of mid-experiment.
    """
    if name is None:
        name = os.environ.get(ENGINE_ENV_VAR) or default or "cycle"
    if name not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {name!r}; choose from {sorted(ENGINES)}"
        )
    return name


def resolve_workers(
    workers: Optional[int] = None, scales: Tuple[Scale, ...] = ()
) -> int:
    """Resolve the plan-execution worker count.

    Resolution order: explicit ``workers`` > ``$REPRO_WORKERS`` > the
    largest :attr:`Scale.default_workers` among ``scales`` > ``1``
    (serial).  ``0`` -- wherever it comes from -- means one worker per
    CPU core.  Anything that is not a non-negative integer raises
    :class:`~repro.core.errors.ConfigurationError` eagerly, so a typo'd
    environment value fails before any simulation starts.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR)
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"${WORKERS_ENV_VAR} must be an integer "
                    f"(0 = one per core), got {raw!r}"
                ) from None
    if workers is None and scales:
        # Expand the 0 = one-per-core sentinel *before* taking the max:
        # it is semantically the largest request but numerically the
        # smallest, so a mixed quick+full plan must not resolve serial.
        workers = max(
            scale.default_workers or (os.cpu_count() or 1)
            for scale in scales
        )
        if (os.cpu_count() or 1) == 1:
            # A scale-defaulted pool on a single core is pure overhead
            # (BENCH_run_plan records a 0.5x loss); fall back to the
            # in-process serial path.  An explicit `workers` argument or
            # $REPRO_WORKERS still wins -- the user asked for a pool.
            workers = 1
    if workers is None:
        workers = 1
    if (
        not isinstance(workers, int)
        or isinstance(workers, bool)
        or workers < 0
    ):
        raise ConfigurationError(
            f"workers must be a non-negative integer (0 = one per core), "
            f"got {workers!r}"
        )
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


def engine_class(
    name: Optional[str] = None, default: Optional[str] = None
) -> Type[BaseEngine]:
    """Resolve an engine class (see :func:`resolve_engine_name`).

    ``default`` is how scale presets choose their engine (``full`` runs on
    ``fast`` out of the box); it falls back to ``cycle``.  Engines of the
    same family produce byte-identical results given the same seed, so
    the resolution order only affects speed, never numbers.
    """
    return ENGINES[resolve_engine_name(name, default)]


def _float_env(env_var: str) -> Optional[float]:
    raw = os.environ.get(env_var)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ConfigurationError(
            f"${env_var} must be a number, got {raw!r}"
        ) from None


def _resolve_model(value, env_var, base, wrap, knob):
    """Normalize a latency/loss knob to a model instance (or ``None``).

    Accepts a ready-made model (any ``base`` instance), a finite number
    (wrapped with ``wrap``, whose constructor enforces its own range), or
    the ``env_var`` fallback; anything else is a
    :class:`~repro.core.errors.ConfigurationError`, never a ``TypeError``
    or a silent NaN from deep inside the model constructors.
    """
    if value is None:
        value = _float_env(env_var)
        if value is None:
            return None
    if isinstance(value, base):
        return value
    try:
        number = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{knob} must be a number or a {base.__name__}, got {value!r}"
        ) from None
    if math.isnan(number) or math.isinf(number):
        # ConstantLatency's `delay < 0` check lets NaN slip through and
        # every message would be scheduled at time NaN, never delivered.
        raise ConfigurationError(
            f"{knob} must be a finite number, got {number!r}"
        )
    return wrap(number)


def resolve_message_models(
    latency: Optional[Union[float, LatencyModel]] = None,
    loss: Optional[Union[float, LossModel]] = None,
) -> Tuple[Optional[LatencyModel], Optional[LossModel]]:
    """Validate and resolve the latency/loss knobs (explicit or env).

    This is the single validation point shared by :func:`make_engine` and
    the runner's eager pre-flight check: numbers are range-checked by the
    model constructors (``ConstantLatency`` rejects negatives,
    ``BernoulliLoss`` rejects probabilities outside [0, 1]), NaN and
    infinities are rejected here, and malformed environment values raise
    with the variable name in the message.
    """
    return (
        _resolve_model(
            latency, LATENCY_ENV_VAR, LatencyModel, ConstantLatency, "latency"
        ),
        _resolve_model(loss, LOSS_ENV_VAR, LossModel, BernoulliLoss, "loss"),
    )


def make_engine(
    config: ProtocolConfig,
    seed: Optional[int] = None,
    engine: Optional[str] = None,
    rng: Optional[random.Random] = None,
    scale: Optional[Scale] = None,
    latency: Optional[Union[float, LatencyModel]] = None,
    loss: Optional[Union[float, LossModel]] = None,
    shards: Optional[int] = None,
    **kwargs: object,
) -> BaseEngine:
    """Instantiate the engine selected by ``engine`` / ``$REPRO_ENGINE``.

    When a ``scale`` is given, its :attr:`Scale.default_engine` is the
    fallback -- the way every experiment module runs, so ``full``-scale
    invocations pick the array-backed engine automatically.

    ``latency`` (constant per-message delay in gossip periods, or a
    ready-made :class:`~repro.simulation.network.LatencyModel`) and
    ``loss`` (per-message Bernoulli drop probability, or a
    :class:`~repro.simulation.network.LossModel`) -- or their
    environment fallbacks ``$REPRO_LATENCY`` / ``$REPRO_LOSS`` -- are
    forwarded to the event-driven engines.  The cycle family has no
    message timing model, so selecting them together with a cycle
    engine is a configuration error, not a silent no-op.

    ``shards`` (or ``$REPRO_SHARDS``; 0 = one per core) partitions a
    single run across worker processes and only applies to the
    ``fast-sharded`` engine -- requesting it with any other engine is
    likewise a configuration error, not a silent no-op.
    """
    name = resolve_engine_name(
        engine, default=scale.default_engine if scale else None
    )
    resolved_shards = resolve_shards(shards)
    if resolved_shards is not None:
        if name not in SHARDED_ENGINE_NAMES:
            raise ConfigurationError(
                f"shards only applies to the sharded engine "
                f"({sorted(SHARDED_ENGINE_NAMES)}); engine {name!r} runs "
                "single-process -- pick --engine fast-sharded or drop the "
                "option"
            )
        kwargs["shards"] = resolved_shards
    latency_model, loss_model = resolve_message_models(latency, loss)
    if latency_model is not None or loss_model is not None:
        if name not in EVENT_ENGINE_NAMES:
            knobs = ", ".join(
                k
                for k, v in (
                    ("latency", latency_model),
                    ("loss", loss_model),
                )
                if v is not None
            )
            raise ConfigurationError(
                f"{knobs} only applies to event-driven engines "
                f"({sorted(EVENT_ENGINE_NAMES)}); engine {name!r} runs the "
                "synchronous cycle model without message timing -- pick "
                "--engine event / fast-event or drop the option"
            )
        if latency_model is not None:
            kwargs["latency"] = latency_model
        if loss_model is not None:
            kwargs["loss"] = loss_model
    cls = ENGINES[name]
    return cls(config, seed=seed, rng=rng, **kwargs)  # type: ignore[call-arg]


# -- protocol sets, as the paper groups them ------------------------------------


def studied_protocols(view_size: int) -> Tuple[ProtocolConfig, ...]:
    """The eight instances of the main evaluation (paper Section 4.3)."""
    instances = []
    for ps in (PeerSelection.RAND, PeerSelection.TAIL):
        for vs in (ViewSelection.HEAD, ViewSelection.RAND):
            for vp in (Propagation.PUSH, Propagation.PUSHPULL):
                instances.append(ProtocolConfig(ps, vs, vp, view_size))
    return tuple(instances)


def push_protocols(view_size: int) -> Tuple[ProtocolConfig, ...]:
    """The four push-only instances of Table 1, in the paper's row order."""
    return (
        ProtocolConfig(
            PeerSelection.RAND, ViewSelection.HEAD, Propagation.PUSH, view_size
        ),
        ProtocolConfig(
            PeerSelection.RAND, ViewSelection.RAND, Propagation.PUSH, view_size
        ),
        ProtocolConfig(
            PeerSelection.TAIL, ViewSelection.HEAD, Propagation.PUSH, view_size
        ),
        ProtocolConfig(
            PeerSelection.TAIL, ViewSelection.RAND, Propagation.PUSH, view_size
        ),
    )


def growing_plot_protocols(view_size: int) -> Tuple[ProtocolConfig, ...]:
    """The six instances plotted in Figure 2 (the two unstable
    ``(*,head,push)`` ones are excluded there, as in the paper)."""
    labels = (
        "(rand,rand,push)",
        "(tail,rand,push)",
        "(rand,rand,pushpull)",
        "(tail,rand,pushpull)",
        "(rand,head,pushpull)",
        "(tail,head,pushpull)",
    )
    return tuple(
        ProtocolConfig.from_label(label, view_size) for label in labels
    )


def autocorrelation_protocols(view_size: int) -> Tuple[ProtocolConfig, ...]:
    """The four rand-peer-selection instances plotted in Figure 5."""
    labels = (
        "(rand,rand,push)",
        "(rand,rand,pushpull)",
        "(rand,head,push)",
        "(rand,head,pushpull)",
    )
    return tuple(
        ProtocolConfig.from_label(label, view_size) for label in labels
    )


# -- run helpers ------------------------------------------------------------------


def converged_engine(
    config: ProtocolConfig,
    scale: Scale,
    seed: int,
    engine: Optional[str] = None,
) -> BaseEngine:
    """An engine bootstrapped randomly and run for ``scale.cycles`` cycles.

    This is the "converged overlay in cycle 300 of the random
    initialization scenario" that Sections 6 and 7 start from.  A thin
    shim over the declarative workload API: the run executes the
    ``random-convergence`` scenario through
    :func:`repro.workloads.prepare_run` on the engine selected by
    ``engine`` / ``$REPRO_ENGINE`` (same overlay for the same seed on
    every cycle-family engine).
    """
    from repro.workloads import named_scenario, prepare_run

    runtime = prepare_run(
        named_scenario("random-convergence", scale),
        config,
        scale=scale,
        seed=seed,
        engine=engine,
    )
    return runtime.run_to_end()

"""Bootstrap scenarios (paper Sections 5.1-5.3).

Three ways to initialize the overlay before (or while) the protocol runs:

- :func:`random_bootstrap` -- every view starts as a uniform random sample
  of the other nodes (Section 5.3, the paper's main scenario);
- :func:`lattice_bootstrap` -- views hold the nearest neighbours on a ring,
  a structured, large-diameter start (Section 5.2);
- :class:`GrowingScenario` / :func:`start_growing` -- the overlay grows
  from a single node, adding a batch of joiners at the beginning of every
  cycle whose views contain only the oldest node (Section 5.1, the
  most pessimistic bootstrap).

These are the *mechanisms* behind the declarative workload API: a
:class:`~repro.workloads.spec.ScenarioSpec` names them (``bootstrap:
"random" | "lattice" | "empty"``, event kind ``grow``) and
:mod:`repro.workloads.runtime` compiles the spec back onto these
primitives for any registry engine.  New experiment code should describe
its workload as a spec (the artefact modules all do); calling these
helpers directly remains supported for custom engines and tests.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ConfigurationError
from repro.simulation.base import BaseEngine
from repro.simulation.trace import Observer


def random_bootstrap(
    engine: BaseEngine,
    n_nodes: int,
    view_fill: Optional[int] = None,
) -> List[Address]:
    """Create ``n_nodes`` nodes whose views are uniform random samples.

    Every view receives ``view_fill`` (default: the view capacity)
    descriptors of distinct other nodes, all with hop count 0.  This is the
    paper's "random initial topology" and also the baseline random view
    topology when no cycles are run afterwards.
    """
    if n_nodes < 1:
        raise ConfigurationError(f"need at least 1 node, got {n_nodes}")
    addresses = engine.add_nodes(n_nodes)
    # Engines with flat-array storage can fill all views without building
    # descriptor objects, consuming the RNG identically (same draws, same
    # order), so results stay byte-identical across engines.  The hook
    # declines (returns False) whenever the generic path must run.
    bulk_fill = getattr(engine, "bootstrap_random_views", None)
    if bulk_fill is not None and bulk_fill(addresses, view_fill):
        return addresses
    for address in addresses:
        node = engine.node(address)
        fill = view_fill if view_fill is not None else node.view.capacity
        fill = min(fill, n_nodes - 1, node.view.capacity)
        if fill <= 0:
            continue
        others = engine.rng.sample(addresses, fill + 1)
        entries = [
            NodeDescriptor(peer, 0) for peer in others if peer != address
        ][:fill]
        while len(entries) < fill:
            peer = engine.rng.choice(addresses)
            if peer != address and all(e.address != peer for e in entries):
                entries.append(NodeDescriptor(peer, 0))
        node.view.replace(entries)
    return addresses


def lattice_bootstrap(
    engine: BaseEngine,
    n_nodes: int,
    view_fill: Optional[int] = None,
) -> List[Address]:
    """Create ``n_nodes`` nodes arranged in a ring lattice.

    Following the paper: nodes form a ring (each view contains its two ring
    neighbours), then descriptors of the next-nearest ring nodes are added
    until the view is filled -- in order of ring distance 1, 1, 2, 2, 3, 3...
    """
    if n_nodes < 2:
        raise ConfigurationError(f"a lattice needs >= 2 nodes, got {n_nodes}")
    addresses = engine.add_nodes(n_nodes)
    for index, address in enumerate(addresses):
        node = engine.node(address)
        fill = view_fill if view_fill is not None else node.view.capacity
        fill = min(fill, n_nodes - 1, node.view.capacity)
        entries: List[NodeDescriptor] = []
        distance = 1
        while len(entries) < fill:
            for offset in (distance, -distance):
                if len(entries) >= fill:
                    break
                peer = addresses[(index + offset) % n_nodes]
                if peer != address and all(e.address != peer for e in entries):
                    entries.append(NodeDescriptor(peer, 0))
            distance += 1
        node.view.replace(entries)
    return addresses


class GrowingScenario(Observer):
    """Observer implementing the paper's growing-overlay scenario.

    At the beginning of every cycle, up to ``nodes_per_cycle`` new nodes
    join (until ``target_size`` is reached); each joiner's view contains a
    single descriptor of the *oldest* node.

    Attributes
    ----------
    oldest:
        The initial node's address (every joiner's only contact).
    done_at_cycle:
        The cycle at which the target size was reached, or ``None``.
    """

    def __init__(self, target_size: int, nodes_per_cycle: int) -> None:
        if target_size < 1:
            raise ConfigurationError(f"target_size must be >= 1: {target_size}")
        if nodes_per_cycle < 1:
            raise ConfigurationError(
                f"nodes_per_cycle must be >= 1: {nodes_per_cycle}"
            )
        self.target_size = target_size
        self.nodes_per_cycle = nodes_per_cycle
        self.oldest: Optional[Address] = None
        self.done_at_cycle: Optional[int] = None

    def before_cycle(self, engine: BaseEngine) -> None:  # type: ignore[override]
        if self.oldest is None:
            self.oldest = engine.add_node()
        missing = self.target_size - len(engine)
        if missing <= 0:
            if self.done_at_cycle is None:
                self.done_at_cycle = engine.cycle
            return
        batch = min(self.nodes_per_cycle, missing)
        engine.add_nodes(batch, contacts=[self.oldest])


def start_growing(
    engine: BaseEngine,
    target_size: int,
    nodes_per_cycle: Optional[int] = None,
) -> GrowingScenario:
    """Register a :class:`GrowingScenario` on ``engine`` and return it.

    ``nodes_per_cycle`` defaults to ``target_size // 100`` (at least 1),
    mirroring the paper's proportions (10^4 nodes over 100 cycles).
    """
    if nodes_per_cycle is None:
        nodes_per_cycle = max(1, target_size // 100)
    scenario = GrowingScenario(target_size, nodes_per_cycle)
    engine.add_observer(scenario)
    return scenario

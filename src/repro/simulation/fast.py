"""Array-backed fast cycle engine for 100k+ node populations.

:class:`FastCycleEngine` executes exactly the same protocol as
:class:`~repro.simulation.engine.CycleEngine` -- the paper's Figure 1
active/passive threads under the PeerSim-style synchronous cycle model --
but stores the whole population in flat preallocated arrays instead of one
``GossipNode`` + ``PartialView`` + ``NodeDescriptor`` object per peer.

Flat-array layout
-----------------

Every address ever seen by the engine is *interned* to a small integer id
(ids are permanent: a crashed node that rejoins keeps its id, so stale
descriptors in other views correctly point at the rejoined node, exactly
as address-keyed dictionaries behave in the reference engine).  Per-id
state lives in parallel arrays:

- ``_addr_of[id]``   -- the external address (inverse of ``_id_of``);
- ``_alive[id]``     -- liveness flag (``array('B')``);
- ``_row_of[id]``    -- index of the node's view row, ``-1`` when dead.

View storage is two flat ``array('q')`` buffers with ``c`` slots per row
(``c`` = the configured view size): ``_vids[row*c + k]`` holds the peer id
of the ``k``-th view entry and ``_vhops`` its hop count; ``_vlen[row]`` is
the fill level.  Rows hold entries compacted at the front in increasing
hop-count order -- the same invariant ``PartialView`` maintains.  A
free-list recycles rows under churn, so memory is bounded by the peak
live population, not by the total number of joins.  At 100,000 nodes with
``c = 30`` the whole overlay state is two ~24 MB C buffers instead of
several million Python objects.

One exchange (peer selection, view propagation, ``merge`` + healer/swapper
+ head/tail/rand truncation) is pure index manipulation over reusable
scratch buffers; no ``NodeDescriptor``/``PartialView``/``GossipNode``
objects are allocated anywhere on the cycle path.

Execution backends
------------------

Because the arrays are plain C ``int64`` memory, the cycle loop itself has
two interchangeable implementations:

- an optional C core (:mod:`repro.simulation._fastcore`), compiled once
  with the system C compiler, that runs entire cycles natively -- orders
  of magnitude faster than the reference engine;
- a pure-Python fallback used when no compiler is available (or
  ``REPRO_NO_ACCEL`` is set), still several times leaner than the
  object-per-node engine.

Determinism and RNG parity
--------------------------

Both backends reproduce the reference engine's random-number consumption
*exactly*.  The Python path draws through operations whose draw count
depends only on sizes (``randrange(n)`` instead of ``choice(seq)``,
``sample(range(n), k)`` instead of ``sample(list, k)``), in the order the
reference engine draws.  The C path goes further and reimplements
CPython's MT19937 primitives bit-for-bit, taking over the generator state
for the duration of a cycle and handing it back afterwards (see
``_fastcore``).  Given the same seed and call sequence, ``views()`` is
therefore *byte-identical* across ``CycleEngine`` and both
``FastCycleEngine`` backends, cycle by cycle, including under churn --
the differential suite in
``tests/simulation/test_fast_engine_differential.py`` pins this.

When to prefer which engine
---------------------------

- ``CycleEngine`` -- small populations, custom node factories (Cyclon,
  SCAMP, second-view extensions), or when per-node instrumentation of the
  ``GossipNode`` state machine is needed.
- ``FastCycleEngine`` -- large populations (10^4 .. 10^5+ nodes) running
  the built-in generic protocol; identical results, far faster and a
  fraction of the memory (see ``benchmarks/bench_fast_engine.py`` for the
  measured speedup table, summarized in ``ROADMAP.md``).
- ``EventEngine`` -- asynchronous message timing studies.
"""

from __future__ import annotations

import random
from array import array
from itertools import compress
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.config import ProtocolConfig
from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import (
    ConfigurationError,
    NodeNotFoundError,
    ViewError,
)
from repro.core.policies import PeerSelection, ViewSelection
from repro.core.view import merge
from repro.simulation._fastcore import Accelerator, load_accelerator
from repro.simulation.base import BaseEngine

__all__ = ["FastCycleEngine", "FastNode", "FastViewProxy"]

_POLICY_CODE = {"rand": 0, "head": 1, "tail": 2}


class FastViewProxy:
    """A ``PartialView``-compatible window onto one node's view row.

    Reads materialize :class:`NodeDescriptor` objects on demand; writes go
    straight back into the engine's flat arrays.  Only the introspection /
    bootstrap paths use this class -- the cycle hot path never does.
    """

    __slots__ = ("_engine", "_id")

    def __init__(self, engine: "FastCycleEngine", node_id: int) -> None:
        self._engine = engine
        self._id = node_id

    @property
    def capacity(self) -> int:
        """The view capacity ``c`` (shared by all nodes of the engine)."""
        return self._engine.config.view_size

    def _bounds(self) -> "tuple":
        engine = self._engine
        row = engine._row_of[self._id]
        if row < 0:
            return 0, 0
        base = row * engine.config.view_size
        return base, base + engine._vlen[row]

    # -- read access ------------------------------------------------------

    def __len__(self) -> int:
        base, end = self._bounds()
        return end - base

    def __iter__(self) -> Iterator[NodeDescriptor]:
        engine = self._engine
        base, end = self._bounds()
        for k in range(base, end):
            yield NodeDescriptor(
                engine._addr_of[engine._vids[k]], engine._vhops[k]
            )

    def __contains__(self, address: Address) -> bool:
        peer = self._engine._id_of.get(address)
        if peer is None:
            return False
        base, end = self._bounds()
        return peer in self._engine._vids[base:end]

    def __repr__(self) -> str:
        return (
            f"FastViewProxy(capacity={self.capacity}, size={len(self)})"
        )

    @property
    def entries(self) -> List[NodeDescriptor]:
        """Fresh descriptors for the current entries, hop-count ordered."""
        return list(self)

    def addresses(self) -> List[Address]:
        """All addresses currently in the view, in hop-count order."""
        engine = self._engine
        base, end = self._bounds()
        addr_of = engine._addr_of
        return [addr_of[i] for i in engine._vids[base:end]]

    def descriptor_for(self, address: Address) -> Optional[NodeDescriptor]:
        """The descriptor stored for ``address``, or ``None``."""
        for descriptor in self:
            if descriptor.address == address:
                return descriptor
        return None

    def is_full(self) -> bool:
        """Whether the view holds ``capacity`` descriptors."""
        return len(self) >= self.capacity

    def head(self) -> Optional[NodeDescriptor]:
        """The descriptor with the lowest hop count, or ``None`` if empty."""
        base, end = self._bounds()
        if base == end:
            return None
        engine = self._engine
        return NodeDescriptor(
            engine._addr_of[engine._vids[base]], engine._vhops[base]
        )

    def tail(self) -> Optional[NodeDescriptor]:
        """The descriptor with the highest hop count, or ``None`` if empty."""
        base, end = self._bounds()
        if base == end:
            return None
        engine = self._engine
        return NodeDescriptor(
            engine._addr_of[engine._vids[end - 1]], engine._vhops[end - 1]
        )

    def random_entry(self, rng: random.Random) -> Optional[NodeDescriptor]:
        """A uniformly random descriptor, or ``None`` if empty.

        Consumes exactly one ``_randbelow`` draw, like
        ``random.Random.choice`` on the reference view's entry list.
        """
        base, end = self._bounds()
        if base == end:
            return None
        engine = self._engine
        k = base + rng.randrange(end - base)
        return NodeDescriptor(
            engine._addr_of[engine._vids[k]], engine._vhops[k]
        )

    # -- mutation ---------------------------------------------------------

    def replace(self, entries: Iterable[NodeDescriptor]) -> None:
        """Adopt ``entries`` as the new view content (bootstrap path).

        Same contract as :meth:`PartialView.replace`: deduplicate keeping
        the lowest hop count, order by hop count, reject overflow.
        """
        merged = merge(entries)
        if len(merged) > self.capacity:
            raise ViewError(
                f"{len(merged)} descriptors exceed view capacity "
                f"{self.capacity}"
            )
        engine = self._engine
        row = engine._row_of[self._id]
        if row < 0:
            raise NodeNotFoundError(engine._addr_of[self._id])
        base = row * engine.config.view_size
        vids = engine._vids
        vhops = engine._vhops
        intern = engine._intern
        for k, descriptor in enumerate(merged):
            entry_id = intern(descriptor.address)
            if not engine._alive[entry_id]:
                engine._maybe_dead_refs = True
            vids[base + k] = entry_id
            vhops[base + k] = descriptor.hop_count
        engine._vlen[row] = len(merged)

    def increase_hop_counts(self) -> None:
        """Increment every stored entry's hop count in place."""
        base, end = self._bounds()
        vhops = self._engine._vhops
        for k in range(base, end):
            vhops[k] += 1

    def remove(self, address: Address) -> bool:
        """Drop the descriptor for ``address``; return whether it existed."""
        engine = self._engine
        peer = engine._id_of.get(address)
        if peer is None:
            return False
        base, end = self._bounds()
        vids = engine._vids
        for k in range(base, end):
            if vids[k] == peer:
                row = engine._row_of[self._id]
                vids[k:end - 1] = vids[k + 1:end]
                engine._vhops[k:end - 1] = engine._vhops[k + 1:end]
                engine._vlen[row] -= 1
                return True
        return False

    def clear(self) -> None:
        """Remove every descriptor."""
        engine = self._engine
        row = engine._row_of[self._id]
        if row >= 0:
            engine._vlen[row] = 0


class FastNode:
    """A ``GossipNode``-shaped handle onto one live node of the engine.

    Supports everything the population-level consumers need --
    ``PeerSamplingService``, the bootstrap scenarios, the observers --
    without holding any per-node state of its own.
    """

    __slots__ = ("_engine", "address", "view")

    def __init__(self, engine: "FastCycleEngine", node_id: int) -> None:
        self._engine = engine
        self.address = engine._addr_of[node_id]
        self.view = FastViewProxy(engine, node_id)

    @property
    def config(self) -> ProtocolConfig:
        """The protocol instance every node of the engine runs."""
        return self._engine.config

    @property
    def liveness(self):
        """The engine's membership test (see ``GossipNode.liveness``)."""
        if self._engine.omniscient_peer_selection:
            return self._engine.is_alive
        return None

    def sample_peer(self) -> Optional[Address]:
        """A uniform random address from the current view (``getPeer``)."""
        entry = self.view.random_entry(self._engine.rng)
        return None if entry is None else entry.address

    def __repr__(self) -> str:
        return (
            f"FastNode(address={self.address!r}, "
            f"protocol={self._engine.config.label}, "
            f"view_size={len(self.view)})"
        )


class FastCycleEngine(BaseEngine):
    """Cycle-driven executor over flat array storage (see module docstring).

    Implements the full :class:`~repro.simulation.base.BaseEngine`
    population API (``add_node`` / ``remove_node`` / ``crash_random_nodes``
    / ``views`` / ``dead_link_count`` / observers / ``reachable``), so the
    scenario helpers, ``GraphSnapshot.from_engine`` and the experiment
    runners work unchanged.  Custom ``node_factory`` protocols are not
    supported -- extension protocols keep using :class:`CycleEngine`.

    Parameters
    ----------
    accelerate:
        ``None`` (default): use the compiled C cycle core when available,
        falling back to pure Python silently.  ``False``: never use the C
        core.  ``True``: require it (raises
        :class:`~repro.core.errors.ConfigurationError` when no C compiler
        is usable).  Both backends produce byte-identical results.

    Example
    -------
    >>> from repro import FastCycleEngine, newscast
    >>> from repro.simulation.scenarios import random_bootstrap
    >>> engine = FastCycleEngine(newscast(view_size=10), seed=1)
    >>> random_bootstrap(engine, n_nodes=100)
    >>> engine.run(cycles=20)
    >>> engine.cycle
    20
    """

    shuffle_each_cycle: bool = True
    """Same contract as ``CycleEngine.shuffle_each_cycle``."""

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        node_factory=None,
        omniscient_peer_selection: bool = True,
        accelerate: Optional[bool] = None,
    ) -> None:
        if node_factory is not None:
            raise ConfigurationError(
                "FastCycleEngine runs the built-in generic protocol only; "
                "use CycleEngine for custom node factories"
            )
        super().__init__(
            config=config,
            seed=seed,
            rng=rng,
            omniscient_peer_selection=omniscient_peer_selection,
        )
        assert self.config is not None
        if accelerate is False:
            self._accel: Optional[Accelerator] = None
        else:
            self._accel = load_accelerator()
            if accelerate is True and self._accel is None:
                raise ConfigurationError(
                    "accelerate=True but no C accelerator is available "
                    "(no usable C compiler, or REPRO_NO_ACCEL is set)"
                )
        # id-indexed state (permanent: ids are never reused).
        self._addr_of: List[Address] = []
        self._id_of: Dict[Address, int] = {}
        self._alive = array("B")
        self._row_of = array("q")
        # live ids, in the reference engine's dict-insertion order.
        self._live: Dict[int, None] = {}
        # flat view storage: c slots per row, free-list recycling.
        self._vids = array("q")
        self._vhops = array("q")
        self._vlen = array("q")
        self._free_rows: List[int] = []
        self._zero_row = bytes(8 * self.config.view_size)
        # False until a crash/ghost contact makes dead view entries
        # possible; while False, the Python path skips liveness filtering
        # (the C path always filters -- same candidate set either way).
        self._maybe_dead_refs = False

    @property
    def accelerated(self) -> bool:
        """Whether the compiled C cycle core is in use."""
        return self._accel is not None

    # -- id / storage management ------------------------------------------

    def _intern(self, address: Address) -> int:
        """The permanent integer id for ``address`` (allocating one if new)."""
        node_id = self._id_of.get(address)
        if node_id is None:
            node_id = len(self._addr_of)
            self._id_of[address] = node_id
            self._addr_of.append(address)
            self._alive.append(0)
            self._row_of.append(-1)
        return node_id

    def _allocate_row(self) -> int:
        if self._free_rows:
            return self._free_rows.pop()
        row = len(self._vlen)
        self._vlen.append(0)
        self._vids.frombytes(self._zero_row)
        self._vhops.frombytes(self._zero_row)
        return row

    # -- population management --------------------------------------------

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, address: Address) -> bool:
        node_id = self._id_of.get(address)
        return node_id is not None and bool(self._alive[node_id])

    def addresses(self) -> List[Address]:
        """All live node addresses, in insertion order."""
        addr_of = self._addr_of
        return [addr_of[i] for i in self._live]

    def nodes(self) -> List[FastNode]:
        """Lightweight handles for all live nodes, in insertion order."""
        return [FastNode(self, i) for i in self._live]

    def node(self, address: Address) -> FastNode:
        """A handle for the live node at ``address`` (raises if absent)."""
        node_id = self._id_of.get(address)
        if node_id is None or not self._alive[node_id]:
            raise NodeNotFoundError(address)
        return FastNode(self, node_id)

    def is_alive(self, address: Address) -> bool:
        """Whether a live node exists at ``address``."""
        node_id = self._id_of.get(address)
        return node_id is not None and bool(self._alive[node_id])

    def add_node(
        self,
        address: Optional[Address] = None,
        contacts: Iterable[Address] = (),
    ) -> Address:
        """Create a live node, optionally seeding its view with contacts.

        Identical contract (and auto-address sequence) to
        :meth:`BaseEngine.add_node`: contacts enter with hop count 0, a
        node's own address is filtered out, the list is truncated to the
        view capacity before deduplication -- matching what
        ``PeerSamplingService.init`` does on the reference engine.
        """
        if address is None:
            while self._next_auto_address in self:
                self._next_auto_address += 1
            address = self._next_auto_address
            self._next_auto_address += 1
        if address in self:
            raise ConfigurationError(f"node {address!r} already exists")
        node_id = self._intern(address)
        self._alive[node_id] = 1
        row = self._allocate_row()
        self._row_of[node_id] = row
        self._vlen[row] = 0
        self._live[node_id] = None
        c = self.config.view_size
        base = row * c
        n = 0
        taken = 0  # duplicates consume capacity slots, like init's [:c]
        seen = set()
        for contact in contacts:
            if contact == address:
                continue
            if taken >= c:
                break
            taken += 1
            contact_id = self._intern(contact)
            if not self._alive[contact_id]:
                self._maybe_dead_refs = True
            if contact_id in seen:
                continue
            seen.add(contact_id)
            self._vids[base + n] = contact_id
            self._vhops[base + n] = 0
            n += 1
        self._vlen[row] = n
        self._on_node_added(address)
        return address

    def remove_node(self, address: Address) -> None:
        """Crash the node at ``address`` (other views keep its descriptors)."""
        node_id = self._id_of.get(address)
        if node_id is None or not self._alive[node_id]:
            raise NodeNotFoundError(address)
        self._kill(node_id)

    def _kill(self, node_id: int) -> None:
        self._alive[node_id] = 0
        self._free_rows.append(self._row_of[node_id])
        self._row_of[node_id] = -1
        del self._live[node_id]
        self._maybe_dead_refs = True

    def crash_random_nodes(self, count: int) -> List[Address]:
        """Crash ``count`` uniformly random nodes; return their addresses.

        Consumes the RNG exactly like the reference engine (one ``sample``
        over the insertion-ordered live address list).
        """
        if count > len(self._live):
            raise ConfigurationError(
                f"cannot crash {count} of {len(self._live)} nodes"
            )
        addr_of = self._addr_of
        victims = self.rng.sample([addr_of[i] for i in self._live], count)
        for victim in victims:
            self._kill(self._id_of[victim])
        return victims

    # -- bulk bootstrap ----------------------------------------------------

    def bootstrap_random_views(
        self, addresses: List[Address], view_fill: Optional[int] = None
    ) -> bool:
        """Fill every view with a random sample, entirely in index space.

        The flat-array fast path behind
        :func:`~repro.simulation.scenarios.random_bootstrap`: no
        ``NodeDescriptor`` objects, no per-entry merge -- and with the C
        core, no interpreted sampling loop at all.  Consumes the RNG
        *exactly* like the generic path (the same ``sample()`` draws in
        the same order), so overlays stay byte-identical across engines
        for the same seed; the differential suite pins this.

        Returns ``False`` -- leaving all state untouched -- when the
        engine is not a freshly auto-addressed population of exactly
        ``addresses`` (the only case worth specializing); the caller then
        falls back to the generic path.
        """
        n = len(addresses)
        if (
            len(self._live) != n
            or len(self._addr_of) != n
            or self._free_rows
            or self._addr_of != list(range(n))
            or addresses != self._addr_of
        ):
            return False
        c = self.config.view_size
        fill = c if view_fill is None else view_fill
        fill = min(fill, n - 1, c)
        if fill <= 0:
            return True  # single node / zero fill: every view stays empty
        rng = self.rng
        k = fill + 1
        if self._accel is not None and type(rng) is random.Random:
            self._bootstrap_c(self._accel, n, k, fill)
            return True
        vids = self._vids
        vhops = self._vhops
        vlen = self._vlen
        row_of = self._row_of
        sample = rng.sample
        zeros = array("q", bytes(8 * fill))
        for i in range(n):
            others = sample(addresses, k)
            row = row_of[i]
            base = row * c
            w = 0
            for peer in others:
                if peer != i:
                    if w == fill:
                        break
                    vids[base + w] = peer
                    w += 1
            vhops[base : base + fill] = zeros
            vlen[row] = w
        return True

    def _bootstrap_c(self, accel: Accelerator, n: int, k: int, fill: int) -> None:
        """Run ``fc_bootstrap`` (bit-exact ``sample()`` draws in C)."""
        config = self.config
        rng = self.rng
        state_before = rng.getstate()
        state = array("q", state_before[1])
        pointer = Accelerator.pointer
        accel.setup(
            pointer(self._vids.buffer_info()[0]),
            pointer(self._vhops.buffer_info()[0]),
            pointer(self._vlen.buffer_info()[0]),
            pointer(self._row_of.buffer_info()[0]),
            Accelerator.byte_pointer(self._alive.buffer_info()[0]),
            config.view_size,
            config.healer,
            config.swapper,
            int(config.keep_self_descriptors),
            int(config.push),
            int(config.pull),
            _POLICY_CODE[config.peer_selection.value],
            _POLICY_CODE[config.view_selection.value],
            int(self.omniscient_peer_selection),
            int(self.shuffle_each_cycle),
        )
        accel.bootstrap(n, k, fill, pointer(state.buffer_info()[0]))
        rng.setstate((state_before[0], tuple(state), state_before[2]))

    # -- introspection ----------------------------------------------------

    def views(self) -> Dict[Address, Sequence[NodeDescriptor]]:
        """A snapshot of every node's current view entries.

        Same key order (node insertion) and entry order (increasing hop
        count) as the reference engine's ``views()``.
        """
        c = self.config.view_size
        addr_of = self._addr_of
        vids = self._vids
        vhops = self._vhops
        row_of = self._row_of
        vlen = self._vlen
        result: Dict[Address, Sequence[NodeDescriptor]] = {}
        for node_id in self._live:
            row = row_of[node_id]
            base = row * c
            result[addr_of[node_id]] = [
                NodeDescriptor(addr_of[vids[k]], vhops[k])
                for k in range(base, base + vlen[row])
            ]
        return result

    def dead_link_count(self) -> int:
        """Total descriptors across all views pointing at dead addresses."""
        c = self.config.view_size
        alive = self._alive
        vids = self._vids
        row_of = self._row_of
        vlen = self._vlen
        count = 0
        for node_id in self._live:
            row = row_of[node_id]
            base = row * c
            for k in range(base, base + vlen[row]):
                if not alive[vids[k]]:
                    count += 1
        return count

    # -- execution ---------------------------------------------------------

    def run_cycle(self) -> None:
        """Execute one full cycle: every live node initiates once.

        Mirrors ``CycleEngine.run_cycle`` operation for operation; see the
        module docstring for the RNG-parity argument.
        """
        self._notify_before_cycle()
        if (
            self._accel is not None
            and self.reachable is None
            and type(self.rng) is random.Random
        ):
            self._run_cycle_c(self._accel)
        else:
            self._run_cycle_python()
        self.cycle += 1
        self._notify_after_cycle()

    def run(self, cycles: int) -> None:
        """Execute ``cycles`` consecutive cycles."""
        for _ in range(cycles):
            self.run_cycle()

    def _run_cycle_c(self, accel: Accelerator) -> None:
        """One cycle through the compiled core.

        The C side takes over the Mersenne Twister state for the duration
        of the cycle (same draws, same order as the reference engine) and
        hands it back through ``setstate`` afterwards.
        """
        config = self.config
        rng = self.rng
        order = array("q", self._live)
        state_before = rng.getstate()
        state = array("q", state_before[1])
        out = array("q", (0, 0))
        pointer = Accelerator.pointer
        accel.setup(
            pointer(self._vids.buffer_info()[0]),
            pointer(self._vhops.buffer_info()[0]),
            pointer(self._vlen.buffer_info()[0]),
            pointer(self._row_of.buffer_info()[0]),
            Accelerator.byte_pointer(self._alive.buffer_info()[0]),
            config.view_size,
            config.healer,
            config.swapper,
            int(config.keep_self_descriptors),
            int(config.push),
            int(config.pull),
            _POLICY_CODE[config.peer_selection.value],
            _POLICY_CODE[config.view_selection.value],
            int(self.omniscient_peer_selection),
            int(self.shuffle_each_cycle),
        )
        accel.run_cycle(
            pointer(order.buffer_info()[0]),
            len(order),
            pointer(state.buffer_info()[0]),
            pointer(out.buffer_info()[0]),
        )
        rng.setstate((state_before[0], tuple(state), state_before[2]))
        self.completed_exchanges += out[0]
        self.failed_exchanges += out[1]

    def _run_cycle_python(self) -> None:
        """One cycle through the pure-Python fallback path."""
        rng = self.rng
        config = self.config
        c = config.view_size
        vids = self._vids
        vhops = self._vhops
        vlen = self._vlen
        row_of = self._row_of
        alive = self._alive
        addr_of = self._addr_of
        push = config.push
        pull = config.pull
        peer_sel = config.peer_selection
        ps_rand = peer_sel is PeerSelection.RAND
        ps_head = peer_sel is PeerSelection.HEAD
        filter_dead = self.omniscient_peer_selection and self._maybe_dead_refs
        check_dead = not self.omniscient_peer_selection
        reachable = self.reachable
        randrange = rng.randrange
        merge_into = self._merge_into
        inc = (1).__add__  # C-level h + 1 for map()
        alive_at = alive.__getitem__
        completed = 0
        failed = 0

        order = list(self._live)
        if self.shuffle_each_cycle:
            rng.shuffle(order)
        for i in order:
            if not alive[i]:
                continue  # crashed by an observer mid-cycle
            row = row_of[i]
            base = row * c
            ln = vlen[row]
            end = base + ln
            if not ln:
                continue  # empty view: nothing to gossip with
            # active thread, first half: age view, select peer.
            aged = array("q", map(inc, vhops[base:end]))
            vhops[base:end] = aged
            if filter_dead:
                # Dead descriptors may exist: restrict selection to live
                # entries, like the reference liveness predicate does.
                vslice = vids[base:end]
                cand = list(compress(vslice, map(alive_at, vslice)))
                if not cand:
                    continue
                if ps_rand:
                    p = cand[randrange(len(cand))]
                elif ps_head:
                    p = cand[0]
                else:
                    p = cand[-1]
            else:
                # Either every view entry is provably alive (same choice,
                # same single draw) or selection is non-omniscient.
                if ps_rand:
                    p = vids[base + randrange(ln)]
                elif ps_head:
                    p = vids[base]
                else:
                    p = vids[end - 1]
                if check_dead and not alive[p]:
                    # Message to a dead address: silently lost.
                    failed += 1
                    continue
            if reachable is not None and not reachable(
                addr_of[i], addr_of[p]
            ):
                failed += 1
                continue
            # request payload = merge(view, {(me, 0)}) with the receiver's
            # increaseHopCount already applied (own descriptor 0 -> 1).
            if push:
                rq_ids = [i]
                rq_ids += vids[base:end]
                rq_hops = [1]
                rq_hops += map(inc, aged)
            else:
                rq_ids = []
                rq_hops = []
            if pull:
                # passive thread: the reply snapshot precedes the merge.
                prow = row_of[p]
                pbase = prow * c
                pend = pbase + vlen[prow]
                rp_ids = [p]
                rp_ids += vids[pbase:pend]
                rp_hops = [1]
                rp_hops += map(inc, vhops[pbase:pend])
                if rq_ids:
                    merge_into(p, rq_ids, rq_hops)
                # active thread, second half: merge the pulled view.
                merge_into(i, rp_ids, rp_hops)
            else:
                merge_into(p, rq_ids, rq_hops)
            completed += 1
        self.completed_exchanges += completed
        self.failed_exchanges += failed

    # -- the pure-Python merge path -----------------------------------------

    def _merge_into(
        self, target: int, r_ids: List[int], r_hops: List[int]
    ) -> None:
        """``view <- selectView(merge(received, view))`` for one node.

        Replicates, in index space, the exact pipeline of
        ``GossipNode.handle_request`` / ``handle_response``: duplicate
        elimination keeping the lowest hop count with first-seen
        (received-first) tie order, a stable hop-count sort, the
        healer/swapper pre-truncation, and the head/rand/tail
        view-selection policy -- consuming the RNG exactly as the
        reference engine does.  ``r_hops`` arrive with the receiver-side
        ``increaseHopCount`` already applied; both input lists are fresh
        per exchange and are consumed destructively.

        The hot path leans on C-speed primitives: set intersection for
        duplicate detection (received and own views rarely overlap in
        more than a couple of addresses), and ``sorted(range(n), key=...)``
        whose range tie order reproduces the reference merge's stable
        first-seen ordering exactly.
        """
        config = self.config
        c = config.view_size
        vids = self._vids
        vhops = self._vhops
        row = self._row_of[target]
        base = row * c
        ln = self._vlen[row]
        own_ids = vids[base:base + ln]
        own_hops = vhops[base:base + ln]
        if not config.keep_self_descriptors:
            # The receiver's own address appears at most once in a payload
            # (sender self-descriptor + duplicate-free view) and never in
            # its own view; drop it like merge(..., exclude=me) does.
            if target in r_ids:
                k = r_ids.index(target)
                del r_ids[k]
                del r_hops[k]
        else:
            rset0 = set(r_ids)
            if len(rset0) != len(r_ids):
                # keep_self payloads can carry the sender's address twice
                # (fresh self-descriptor + stored copy).  Received hops
                # are ascending, so keeping the first occurrence keeps
                # the lowest hop count, as the reference merge does.
                seen = set()
                seen_add = seen.add
                dup_ids = r_ids
                dup_hops = r_hops
                r_ids = []
                r_hops = []
                for k, a in enumerate(dup_ids):
                    if a not in seen:
                        seen_add(a)
                        r_ids.append(a)
                        r_hops.append(dup_hops[k])
        swap_flags = None
        common = set(r_ids).intersection(own_ids)
        if common:
            # Shared addresses: keep the lowest hop count at the received
            # (first-seen) position; strictly fresher own copies make the
            # surviving entry own-origin for the swapper policy.  The
            # intersection of two partial views is almost always tiny, so
            # this is the only per-element interpreted loop on the path.
            if config.swapper:
                swap_flags = bytearray(len(r_ids))
            drop_idx = []
            for a in common:
                k = own_ids.index(a)
                drop_idx.append(k)
                h = own_hops[k]
                pos = r_ids.index(a)
                if h < r_hops[pos]:
                    r_hops[pos] = h
                    if swap_flags is not None:
                        swap_flags[pos] = 1
            drop_idx.sort(reverse=True)
            for k in drop_idx:
                del own_ids[k]
                del own_hops[k]
        n_r = len(r_ids)
        cids = r_ids
        cids += own_ids  # destructive extend: the payload is owned here
        chops = r_hops
        chops += own_hops
        n = len(cids)
        # stable hop-count sort; range order is the first-seen tie order.
        order = sorted(range(n), key=chops.__getitem__)
        m = n
        # healer/swapper pre-truncation (no-ops when H = S = 0).
        if m > c and (config.healer or config.swapper):
            surplus = m - c
            healer = config.healer
            if healer:
                drop = healer if healer < surplus else surplus
                del order[m - drop:]
                m -= drop
                surplus -= drop
            if surplus > 0 and config.swapper:
                to_drop = config.swapper if config.swapper < surplus else surplus
                kept = []
                for q in order:
                    if to_drop and (
                        q >= n_r
                        or (swap_flags is not None and swap_flags[q])
                    ):
                        to_drop -= 1
                    else:
                        kept.append(q)
                order = kept
                m = len(order)
        # view-selection truncation.
        if m > c:
            view_sel = config.view_selection
            if view_sel is ViewSelection.HEAD:
                del order[c:]
            elif view_sel is ViewSelection.TAIL:
                del order[:m - c]
            else:
                # RAND: same draws as sample(list, c); the stable re-sort
                # by hop count keeps the sample order on ties, like
                # select_rand's chosen.sort(key=hop_count).
                picked = self.rng.sample(range(m), c)
                picked.sort(key=lambda q: chops[order[q]])
                order = [order[q] for q in picked]
            m = c
        vids[base:base + m] = array("q", map(cids.__getitem__, order))
        vhops[base:base + m] = array("q", map(chops.__getitem__, order))
        self._vlen[row] = m

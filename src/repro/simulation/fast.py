"""Array-backed fast cycle engine for 100k+ node populations.

:class:`FastCycleEngine` executes exactly the same protocol as
:class:`~repro.simulation.engine.CycleEngine` -- the paper's Figure 1
active/passive threads under the PeerSim-style synchronous cycle model --
but runs it over the shared flat-array protocol kernel
(:class:`~repro.simulation.arrayviews.FlatArrayEngine`) instead of one
``GossipNode`` + ``PartialView`` + ``NodeDescriptor`` object per peer.
The kernel owns the storage layout, the churn bookkeeping and the
merge/truncate pipeline (see the :mod:`~repro.simulation.arrayviews`
module docstring for the layout and the Figure 1 mapping); this module
adds only the synchronous execution model.  The asynchronous counterpart,
:class:`~repro.simulation.fast_event.FastEventEngine`, drives the same
kernel from a discrete-event scheduler -- the two engines share every
exchange primitive and therefore cannot drift apart.

At 100,000 nodes with ``c = 30`` the whole overlay state is two ~24 MB C
buffers instead of several million Python objects, and one exchange is
pure index manipulation over reusable scratch buffers.

Execution backends
------------------

Because the kernel arrays are plain C ``int64`` memory, the cycle loop
itself has two interchangeable implementations:

- an optional C core (:mod:`repro.simulation._fastcore`), compiled once
  with the system C compiler, that runs entire cycles natively -- orders
  of magnitude faster than the reference engine;
- a pure-Python fallback used when no compiler is available (or
  ``REPRO_NO_ACCEL`` is set), still several times leaner than the
  object-per-node engine.

Determinism and RNG parity
--------------------------

Both backends reproduce the reference engine's random-number consumption
*exactly*.  The Python path draws through operations whose draw count
depends only on sizes (``randrange(n)`` instead of ``choice(seq)``,
``sample(range(n), k)`` instead of ``sample(list, k)``), in the order the
reference engine draws.  The C path goes further and reimplements
CPython's MT19937 primitives bit-for-bit, taking over the generator state
for the duration of a cycle and handing it back afterwards (see
``_fastcore``).  Given the same seed and call sequence, ``views()`` is
therefore *byte-identical* across ``CycleEngine`` and both
``FastCycleEngine`` backends, cycle by cycle, including under churn --
the differential suite in
``tests/simulation/test_fast_engine_differential.py`` pins this.

When to prefer which engine
---------------------------

- ``CycleEngine`` -- small populations, custom node factories (Cyclon,
  SCAMP, second-view extensions), or when per-node instrumentation of the
  ``GossipNode`` state machine is needed.
- ``FastCycleEngine`` -- large populations (10^4 .. 10^5+ nodes) running
  the built-in generic protocol; identical results, far faster and a
  fraction of the memory (see ``benchmarks/bench_fast_engine.py`` for the
  measured speedup table, summarized in ``ROADMAP.md``).
- ``EventEngine`` / ``FastEventEngine`` -- asynchronous message timing
  studies (the latter is the large-scale array-backed version).
"""

from __future__ import annotations

import random
from array import array
from itertools import compress

from repro.core.policies import PeerSelection
from repro.simulation._fastcore import Accelerator
from repro.simulation.arrayviews import (
    FastNode,
    FastViewProxy,
    FlatArrayEngine,
)

__all__ = ["FastCycleEngine", "FastNode", "FastViewProxy"]


class FastCycleEngine(FlatArrayEngine):
    """Cycle-driven executor over the flat-array kernel (module docstring).

    Example
    -------
    >>> from repro import FastCycleEngine, newscast
    >>> from repro.simulation.scenarios import random_bootstrap
    >>> engine = FastCycleEngine(newscast(view_size=10), seed=1)
    >>> random_bootstrap(engine, n_nodes=100)
    >>> engine.run(cycles=20)
    >>> engine.cycle
    20
    """

    shuffle_each_cycle: bool = True
    """Same contract as ``CycleEngine.shuffle_each_cycle``."""

    adversary = None
    """An installed :class:`~repro.adversary.harness.FastAdversary`, or
    ``None``.  While its attack window is active it supplies the cycle
    loop (pure Python, RNG-parity with the adversarial object engines);
    outside the window the honest C/Python paths run unchanged."""

    # -- execution ---------------------------------------------------------

    def run_cycle(self) -> None:
        """Execute one full cycle: every live node initiates once.

        Mirrors ``CycleEngine.run_cycle`` operation for operation; see the
        module docstring for the RNG-parity argument.
        """
        self._notify_before_cycle()
        adversary = self.adversary
        if adversary is not None and adversary.active:
            adversary.run_cycle(self)
        elif (
            self._accel is not None
            and self.reachable is None
            and not self.config.validate_descriptors
            and type(self.rng) is random.Random
        ):
            self._run_cycle_c(self._accel)
        else:
            self._run_cycle_python()
        self.cycle += 1
        self._notify_after_cycle()

    def run(self, cycles: int) -> None:
        """Execute ``cycles`` consecutive cycles."""
        for _ in range(cycles):
            self.run_cycle()

    def _run_cycle_c(self, accel: Accelerator) -> None:
        """One cycle through the compiled core.

        The C side takes over the Mersenne Twister state for the duration
        of the cycle (same draws, same order as the reference engine) and
        hands it back through ``setstate`` afterwards.
        """
        rng = self.rng
        order = array("q", self._live)
        state_before = rng.getstate()
        state = array("q", state_before[1])
        out = array("q", (0, 0))
        pointer = Accelerator.pointer
        self._accel_setup(accel)
        accel.run_cycle(
            pointer(order.buffer_info()[0]),
            len(order),
            pointer(state.buffer_info()[0]),
            pointer(out.buffer_info()[0]),
        )
        rng.setstate((state_before[0], tuple(state), state_before[2]))
        self.completed_exchanges += out[0]
        self.failed_exchanges += out[1]

    def _run_cycle_python(self) -> None:
        """One cycle through the pure-Python fallback path."""
        rng = self.rng
        config = self.config
        c = config.view_size
        vids = self._vids
        vhops = self._vhops
        vlen = self._vlen
        row_of = self._row_of
        alive = self._alive
        addr_of = self._addr_of
        push = config.push
        pull = config.pull
        peer_sel = config.peer_selection
        ps_rand = peer_sel is PeerSelection.RAND
        ps_head = peer_sel is PeerSelection.HEAD
        filter_dead = self.omniscient_peer_selection and self._maybe_dead_refs
        check_dead = not self.omniscient_peer_selection
        reachable = self.reachable
        randrange = rng.randrange
        merge_into = self._merge_into
        validating = config.validate_descriptors
        if validating:
            from repro.defenses.validation import sanitize_indexed
        inc = (1).__add__  # C-level h + 1 for map()
        alive_at = alive.__getitem__
        completed = 0
        failed = 0

        order = list(self._live)
        if self.shuffle_each_cycle:
            rng.shuffle(order)
        for i in order:
            if not alive[i]:
                continue  # crashed by an observer mid-cycle
            row = row_of[i]
            base = row * c
            ln = vlen[row]
            end = base + ln
            if not ln:
                continue  # empty view: nothing to gossip with
            # active thread, first half: age view, select peer.
            aged = array("q", map(inc, vhops[base:end]))
            vhops[base:end] = aged
            if filter_dead:
                # Dead descriptors may exist: restrict selection to live
                # entries, like the reference liveness predicate does.
                vslice = vids[base:end]
                cand = list(compress(vslice, map(alive_at, vslice)))
                if not cand:
                    continue
                if ps_rand:
                    p = cand[randrange(len(cand))]
                elif ps_head:
                    p = cand[0]
                else:
                    p = cand[-1]
            else:
                # Either every view entry is provably alive (same choice,
                # same single draw) or selection is non-omniscient.
                if ps_rand:
                    p = vids[base + randrange(ln)]
                elif ps_head:
                    p = vids[base]
                else:
                    p = vids[end - 1]
                if check_dead and not alive[p]:
                    # Message to a dead address: silently lost.
                    failed += 1
                    continue
            if reachable is not None and not reachable(
                addr_of[i], addr_of[p]
            ):
                failed += 1
                continue
            # request payload = merge(view, {(me, 0)}) with the receiver's
            # increaseHopCount already applied (own descriptor 0 -> 1).
            if push:
                rq_ids = [i]
                rq_ids += vids[base:end]
                rq_hops = [1]
                rq_hops += map(inc, aged)
            else:
                rq_ids = []
                rq_hops = []
            if pull:
                # passive thread: the reply snapshot precedes the merge.
                prow = row_of[p]
                pbase = prow * c
                pend = pbase + vlen[prow]
                rp_ids = [p]
                rp_ids += vids[pbase:pend]
                rp_hops = [1]
                rp_hops += map(inc, vhops[pbase:pend])
                if validating:
                    rq_ids, rq_hops = sanitize_indexed(
                        rq_ids, rq_hops, p, i, c
                    )
                    rp_ids, rp_hops = sanitize_indexed(
                        rp_ids, rp_hops, i, p, c
                    )
                if rq_ids:
                    merge_into(p, rq_ids, rq_hops)
                # active thread, second half: merge the pulled view.
                if rp_ids:
                    merge_into(i, rp_ids, rp_hops)
            else:
                if validating:
                    rq_ids, rq_hops = sanitize_indexed(
                        rq_ids, rq_hops, p, i, c
                    )
                if rq_ids:
                    merge_into(p, rq_ids, rq_hops)
            completed += 1
        self.completed_exchanges += completed
        self.failed_exchanges += failed

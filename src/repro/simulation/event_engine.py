"""Event-driven simulation engine: asynchronous gossip with real latency.

While the cycle-driven engine reproduces the paper's experimental model
exactly, real deployments are asynchronous: every node fires its active
thread on a private timer ("wait(T time units)" in Figure 1), requests and
replies travel with latency, and messages can be lost.  This engine models
that, so that the cycle-level findings can be validated under a more
realistic execution model (the ``bench_engines`` ablation does this).

Model
-----
- Every node owns a periodic timer with period ``period``.  Timers start at
  a uniformly random phase, so node activations interleave.
- On each timer tick the node runs the first half of the active thread and
  the request is delivered after ``latency.sample(rng)`` time units, unless
  ``loss.drops(rng)``.
- The passive side replies immediately upon delivery (processing time is
  not modelled); the reply travels with an independent latency sample.
- Deliveries to crashed nodes are silently dropped, as are replies to
  initiators that crashed mid-exchange.
- For observability the engine maps time onto *cycles* of length
  ``period``: observers fire at every cycle boundary, and ``cycle`` counts
  completed periods.  On average every node initiates once per cycle,
  making metrics directly comparable with the cycle-driven engine.

Unlike the blocking ``receive`` of the paper's skeleton, a pull initiator
here simply merges the reply whenever it arrives (possibly after its next
timer tick).  This is how practical implementations (e.g. Newscast) behave.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Optional

from repro.core.config import ProtocolConfig
from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ConfigurationError
from repro.simulation.base import BaseEngine, NodeFactory
from repro.simulation.network import (
    ConstantLatency,
    LatencyModel,
    LossModel,
    NoLoss,
)
from repro.simulation.scheduler import EventScheduler

__all__ = ["EventEngine"]

_TIME_GRID = 1 << 40
"""Integer quanta per gossip period for the run-horizon bookkeeping --
the same default resolution the tick-based fast event engine uses, so
chained ``run_time`` calls accumulate exactly on both engines."""


class _Timer(NamedTuple):
    """One node's periodic activation.

    Carries the timer's absolute ``phase`` and occurrence ``index`` so
    that the ``k``-th firing is scheduled at the exact absolute time
    ``phase + k * period`` (one float multiplication from an integer)
    instead of accumulating ``now + period`` -- chained relative delays
    drift after many periods (see the scheduler module docstring).
    """

    address: Address
    phase: float
    index: int


class _Request(NamedTuple):
    sender: Address
    recipient: Address
    payload: List[NodeDescriptor]


class _Reply(NamedTuple):
    sender: Address
    recipient: Address
    payload: List[NodeDescriptor]


class EventEngine(BaseEngine):
    """Asynchronous timer-and-message executor for gossip nodes.

    Parameters
    ----------
    config, seed, rng, node_factory:
        As in :class:`~repro.simulation.base.BaseEngine`.
    period:
        Gossip period ``T``: simulated time between a node's activations.
    latency:
        Per-message delay model (default: constant ``period / 10``).
    loss:
        Per-message drop model (default: no loss).
    """

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        node_factory: Optional[NodeFactory] = None,
        period: float = 1.0,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        omniscient_peer_selection: bool = True,
    ) -> None:
        super().__init__(
            config=config,
            seed=seed,
            rng=rng,
            node_factory=node_factory,
            omniscient_peer_selection=omniscient_peer_selection,
        )
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self.period = period
        self.latency = latency if latency is not None else ConstantLatency(period / 10)
        self.loss = loss if loss is not None else NoLoss()
        self._scheduler = EventScheduler()
        self._boundary_index = 0  # boundary k sits at exactly k * period
        # The run horizon is an exact integer: whole periods plus
        # _TIME_GRID-ths of a period from explicit run_time calls.  N
        # run_cycle() calls (or chained run_time fractions) therefore end
        # at exactly the same point as one equivalent run(N) -- a
        # float-accumulated sum can fall short of the Nth boundary and
        # silently drop its observers.
        self._elapsed_periods = 0
        self._extra_ticks = 0
        self.messages_sent = 0
        self.messages_lost = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._scheduler.now

    # -- population hooks ----------------------------------------------------

    def _on_node_added(self, address: Address) -> None:
        # Random initial phase desynchronizes the node activations.  The
        # absolute phase anchors the whole timer sequence: firing k is at
        # phase + k * period, exact in k, so timers never drift.
        phase = self._scheduler.now + self.rng.uniform(0.0, self.period)
        self._scheduler.schedule_at(phase, _Timer(address, phase, 0))

    # -- execution -------------------------------------------------------------

    def run_time(self, duration: float) -> None:
        """Advance simulated time by ``duration``, processing all events.

        Cycle boundaries interleave with event dispatch even when the
        queue runs dry: observers may *create* work (the growing scenario
        adds nodes, whose timers must then fire within the same run), so
        trailing boundaries are fired one at a time, draining any newly
        scheduled events in between, rather than back-to-back at the end.
        """
        if duration < 0:
            # rewinding `now` would violate the monotone-clock contract
            raise ConfigurationError(
                f"cannot run a negative duration: {duration}"
            )
        self._extra_ticks += round(duration / self.period * _TIME_GRID)
        self._run_until_horizon()

    def run(self, cycles: int) -> None:
        """Advance time by ``cycles`` gossip periods."""
        if cycles < 0:
            # rewinding `now` would violate the monotone-clock contract
            raise ConfigurationError(
                f"cannot run a negative duration: {cycles}"
            )
        self._elapsed_periods += cycles
        self._run_until_horizon()

    def run_cycle(self) -> None:
        """Advance time by one gossip period."""
        self.run(1)

    def _run_until_horizon(self) -> None:
        # integer horizon: exact boundary accounting; float `end` only
        # cuts off the (float-timed) event queue.
        grid_end = self._elapsed_periods * _TIME_GRID + self._extra_ticks
        end = grid_end / _TIME_GRID * self.period
        while True:
            next_time = self._scheduler.peek_time()
            if next_time is not None and next_time <= end:
                self._fire_boundaries(next_time)
                self._dispatch(self._scheduler.pop())
                continue
            if (self._boundary_index + 1) * _TIME_GRID <= grid_end:
                self._fire_next_boundary()
                continue
            break
        self._scheduler.now = end

    # -- internals ----------------------------------------------------------------

    def _fire_boundaries(self, up_to: float) -> None:
        # Boundary k is the exact product k * period, not an accumulated
        # sum, for the same no-drift reason as the gossip timers.
        while (self._boundary_index + 1) * self.period <= up_to:
            self._fire_next_boundary()

    def _fire_next_boundary(self) -> None:
        self._boundary_index += 1
        self.cycle += 1
        self._notify_after_cycle()
        self._notify_before_cycle()

    def _dispatch(self, event: object) -> None:
        if isinstance(event, _Timer):
            self._on_timer(event)
        elif isinstance(event, _Request):
            self._on_request(event)
        elif isinstance(event, _Reply):
            self._on_reply(event)

    def _send(self, sender: Address, recipient: Address, message: object) -> bool:
        """Apply loss and reachability, schedule delivery; report acceptance."""
        self.messages_sent += 1
        if self.reachable is not None and not self.reachable(sender, recipient):
            self.messages_lost += 1
            return False
        if self.loss.drops(self.rng):
            self.messages_lost += 1
            return False
        self._scheduler.schedule(self.latency.sample(self.rng), message)
        return True

    def _on_timer(self, event: _Timer) -> None:
        node = self._nodes.get(event.address)
        if node is None:
            return  # crashed: timer dies with the node
        exchange = node.begin_exchange()
        if exchange is not None:
            self._send(
                event.address,
                exchange.peer,
                _Request(event.address, exchange.peer, exchange.payload),
            )
        self._scheduler.schedule_at(
            event.phase + (event.index + 1) * self.period,
            _Timer(event.address, event.phase, event.index + 1),
        )

    def _on_request(self, event: _Request) -> None:
        node = self._nodes.get(event.recipient)
        if node is None:
            self.failed_exchanges += 1
            return
        reply = node.handle_request(event.sender, event.payload)
        self.completed_exchanges += 1
        if reply is not None:
            self._send(
                event.recipient,
                event.sender,
                _Reply(event.recipient, event.sender, reply),
            )

    def _on_reply(self, event: _Reply) -> None:
        node = self._nodes.get(event.recipient)
        if node is None:
            self.failed_exchanges += 1
            return
        node.handle_response(event.sender, event.payload)

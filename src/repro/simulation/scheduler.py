"""Discrete-event schedulers for the event-driven engines.

Two implementations of the same idea -- a priority queue of timed events
with FIFO tie-breaking -- at two levels of the speed/convenience
trade-off:

- :class:`EventScheduler`: a ``(float, counter, object)`` tuple heap.
  Convenient (events are arbitrary objects, times are seconds) and used
  by the object-per-node :class:`~repro.simulation.event_engine.EventEngine`.
- :class:`TickScheduler`: an integer-*tick* heap of packed ``int`` keys,
  used by the array-backed
  :class:`~repro.simulation.fast_event.FastEventEngine` hot path.  No
  per-event tuple or wrapper object is allocated: one Python integer
  carries the firing tick, the FIFO sequence number and an opaque data
  word, and ``heapq`` ordering falls out of plain integer comparison.

Float-time discipline
---------------------

Repeatedly accumulating ``now + delay`` in floating point drifts: after a
million periods of ``0.1`` the clock is off by many ULPs and -- worse --
two logically simultaneous recurring events can land in different order
on different runs.  Callers with periodic work should therefore derive
absolute times from an *integer event sequence* (``phase + k * period``
for the ``k``-th occurrence, one multiplication from an exact integer)
and use :meth:`EventScheduler.schedule_at`, rather than chaining relative
:meth:`EventScheduler.schedule` calls.  ``EventEngine`` does exactly that
for its gossip timers and cycle boundaries; ``TickScheduler`` sidesteps
the problem entirely by keeping time in exact integer ticks.  In both
schedulers the clock is monotone: ``now`` never goes backwards (pinned by
a regression test over 10^6 mixed operations).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Optional, Tuple

from repro.core.errors import SimulationError


class EventScheduler:
    """Time-ordered event queue.

    Events are arbitrary objects; the scheduler orders them by absolute
    time, breaking ties by insertion order (FIFO among simultaneous
    events).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._counter = itertools.count()
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, event: Any) -> None:
        """Enqueue ``event`` to fire ``delay`` time units from now.

        For *recurring* events, prefer :meth:`schedule_at` with an
        absolute time derived from the occurrence index (see the module
        docstring): chained relative delays accumulate float error.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), event))

    def schedule_at(self, time: float, event: Any) -> None:
        """Enqueue ``event`` to fire at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), event))

    def peek_time(self) -> Optional[float]:
        """The firing time of the next event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Any:
        """Remove and return the next event, advancing the clock."""
        if not self._heap:
            raise SimulationError("pop from an empty scheduler")
        time, _, event = heapq.heappop(self._heap)
        self.now = time
        return event


class TickScheduler:
    """Integer-tick event queue over a binary heap of packed ``int`` keys.

    Each entry is a single Python integer laying out, from the most
    significant bits down::

        | tick | seq (SEQ_BITS) | data (data_bits) |

    so that ordinary integer comparison orders entries by ``(tick, seq)``
    -- firing tick first, then FIFO insertion order -- and the low
    ``data_bits`` ride along without ever influencing the order (the
    ``(tick, seq)`` prefix is unique).  ``data`` is an opaque caller
    payload; the fast event engine packs an event kind and a node id or
    message-slot index into it, so the whole queue is allocation-free
    apart from the heap list itself.

    Ticks are exact integers: no float accumulation, no drift, and the
    clock (:attr:`now_tick`) is trivially monotone.  Callers map wall
    time onto ticks (e.g. ``ticks_per_period`` in the fast event engine).
    """

    SEQ_BITS = 40
    """FIFO sequence width: up to ~10^12 events per scheduler lifetime,
    far beyond any simulated run (a 10^5-node, 10^3-cycle run emits
    ~3x10^8 events)."""

    __slots__ = ("_heap", "_seq", "_data_bits", "_data_mask", "_seq_shift",
                 "_tick_shift", "now_tick")

    def __init__(self, data_bits: int = 28) -> None:
        if data_bits < 1:
            raise SimulationError(f"data_bits must be >= 1, got {data_bits}")
        self._heap: List[int] = []
        self._seq = 0
        self._data_bits = data_bits
        self._data_mask = (1 << data_bits) - 1
        self._seq_shift = data_bits
        self._tick_shift = data_bits + self.SEQ_BITS
        self.now_tick = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, tick: int, data: int) -> None:
        """Enqueue ``data`` to fire at absolute ``tick``."""
        if tick < self.now_tick:
            raise SimulationError(
                f"cannot schedule at tick {tick}, current tick is "
                f"{self.now_tick}"
            )
        if data < 0 or data > self._data_mask:
            raise SimulationError(
                f"data {data} does not fit in {self._data_bits} bits"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heap,
            (tick << self._tick_shift) | (seq << self._seq_shift) | data,
        )

    def peek_tick(self) -> Optional[int]:
        """The firing tick of the next entry, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0] >> self._tick_shift

    def pop(self) -> Tuple[int, int]:
        """Remove and return ``(tick, data)``, advancing the clock."""
        if not self._heap:
            raise SimulationError("pop from an empty scheduler")
        key = heapq.heappop(self._heap)
        tick = key >> self._tick_shift
        self.now_tick = tick
        return tick, key & self._data_mask

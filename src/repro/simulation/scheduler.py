"""A minimal discrete-event scheduler (priority queue of timed events).

Used by the event-driven engine.  Ties in time are broken by insertion
order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, List, Optional, Tuple

from repro.core.errors import SimulationError


class EventScheduler:
    """Time-ordered event queue.

    Events are arbitrary objects; the scheduler orders them by absolute
    time, breaking ties by insertion order (FIFO among simultaneous
    events).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._counter = itertools.count()
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, event: Any) -> None:
        """Enqueue ``event`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), event))

    def schedule_at(self, time: float, event: Any) -> None:
        """Enqueue ``event`` to fire at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), event))

    def peek_time(self) -> Optional[float]:
        """The firing time of the next event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Any:
        """Remove and return the next event, advancing the clock."""
        if not self._heap:
            raise SimulationError("pop from an empty scheduler")
        time, _, event = heapq.heappop(self._heap)
        self.now = time
        return event

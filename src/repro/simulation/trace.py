"""Observers: per-cycle instrumentation hooks for the engines.

An :class:`Observer` registered with an engine is invoked around every
cycle.  The module ships the recorders the experiment harness needs:

- :class:`MetricsRecorder` -- clustering coefficient, average degree and
  average path length per cycle (paper Figures 2 and 3);
- :class:`DegreeTracer` -- per-cycle degree traces of fixed nodes (paper
  Table 2 and Figure 5);
- :class:`DeadLinkCensus` -- dead links per cycle (paper Figure 7);
- :class:`ViewSizeRecorder` -- view fill levels (sanity diagnostics).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.descriptor import Address
    from repro.simulation.engine import CycleEngine


class Observer:
    """Base class for engine observers; both hooks default to no-ops.

    ``before_cycle`` runs before any exchange of the upcoming cycle (the
    engine's ``cycle`` attribute still holds the number of *completed*
    cycles).  ``after_cycle`` runs after all exchanges, with ``cycle``
    already incremented.
    """

    def before_cycle(self, engine: "CycleEngine") -> None:
        """Called before the exchanges of each cycle."""

    def after_cycle(self, engine: "CycleEngine") -> None:
        """Called after the exchanges of each cycle."""


class MetricsRecorder(Observer):
    """Record topology metrics after selected cycles.

    Parameters
    ----------
    every:
        Record after every ``every``-th cycle (1 = every cycle).
    clustering_sample:
        Number of nodes used to estimate the clustering coefficient
        (``None`` for exact computation; estimation is unbiased).
    path_sources:
        Number of BFS sources used to estimate average path length
        (``None`` for all-pairs exactness).
    record_initial:
        Also record the metrics of the bootstrap topology (cycle 0), which
        the paper's figures include.
    """

    def __init__(
        self,
        every: int = 1,
        clustering_sample: Optional[int] = 1000,
        path_sources: Optional[int] = 50,
        record_initial: bool = True,
    ) -> None:
        self.every = max(1, every)
        self.clustering_sample = clustering_sample
        self.path_sources = path_sources
        self._record_initial = record_initial
        self.cycles: List[int] = []
        self.clustering: List[float] = []
        self.average_degree: List[float] = []
        self.average_path_length: List[float] = []

    def before_cycle(self, engine: "CycleEngine") -> None:
        if self._record_initial and engine.cycle == 0 and not self.cycles:
            self._record(engine)

    def after_cycle(self, engine: "CycleEngine") -> None:
        if engine.cycle % self.every == 0:
            self._record(engine)

    def _record(self, engine: "CycleEngine") -> None:
        # Imported here to keep repro.simulation importable without numpy
        # consumers pulling the full graph stack at module import time.
        from repro.graph.metrics import (
            average_degree,
            average_path_length,
            clustering_coefficient,
        )
        from repro.graph.snapshot import GraphSnapshot

        snapshot = GraphSnapshot.from_engine(engine)
        self.cycles.append(engine.cycle)
        self.average_degree.append(average_degree(snapshot))
        self.clustering.append(
            clustering_coefficient(
                snapshot, sample=self.clustering_sample, rng=engine.rng
            )
        )
        self.average_path_length.append(
            average_path_length(
                snapshot, n_sources=self.path_sources, rng=engine.rng
            )
        )

    def as_dict(self) -> Dict[str, List[float]]:
        """The recorded series, keyed by metric name."""
        return {
            "cycles": list(self.cycles),
            "clustering": list(self.clustering),
            "average_degree": list(self.average_degree),
            "average_path_length": list(self.average_path_length),
        }


class DegreeTracer(Observer):
    """Trace the undirected degree of fixed nodes after every cycle.

    Crashed traced nodes get degree ``-1`` from that cycle on, so series
    stay aligned.
    """

    def __init__(self, addresses: Sequence["Address"]) -> None:
        self.addresses = list(addresses)
        self.cycles: List[int] = []
        self.series: Dict["Address", List[int]] = {a: [] for a in self.addresses}

    def after_cycle(self, engine: "CycleEngine") -> None:
        from repro.graph.snapshot import GraphSnapshot

        snapshot = GraphSnapshot.from_engine(engine)
        self.cycles.append(engine.cycle)
        for address in self.addresses:
            degree = snapshot.degree_of(address) if address in snapshot else -1
            self.series[address].append(degree)

    def matrix(self) -> List[List[int]]:
        """Traces as a list of rows, one per traced node."""
        return [list(self.series[a]) for a in self.addresses]


class DeadLinkCensus(Observer):
    """Count descriptors pointing at dead nodes after selected cycles."""

    def __init__(self, every: int = 1) -> None:
        self.every = max(1, every)
        self.cycles: List[int] = []
        self.dead_links: List[int] = []

    def after_cycle(self, engine: "CycleEngine") -> None:
        if engine.cycle % self.every == 0:
            self.cycles.append(engine.cycle)
            self.dead_links.append(engine.dead_link_count())


class ViewSizeRecorder(Observer):
    """Record min/mean/max view fill level after selected cycles."""

    def __init__(self, every: int = 1) -> None:
        self.every = max(1, every)
        self.cycles: List[int] = []
        self.min_size: List[int] = []
        self.mean_size: List[float] = []
        self.max_size: List[int] = []

    def after_cycle(self, engine: "CycleEngine") -> None:
        if engine.cycle % self.every != 0:
            return
        sizes = [len(node.view) for node in engine.nodes()]
        if not sizes:
            return
        self.cycles.append(engine.cycle)
        self.min_size.append(min(sizes))
        self.mean_size.append(sum(sizes) / len(sizes))
        self.max_size.append(max(sizes))

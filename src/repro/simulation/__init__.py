"""Simulation substrate: engines, network models, churn and scenarios.

Two engines drive the same :class:`~repro.core.protocol.GossipNode` state
machine:

- :class:`~repro.simulation.engine.CycleEngine` -- PeerSim-style
  cycle-driven execution: in every cycle each node runs the active thread
  exactly once, in a random permutation, and exchanges complete
  synchronously.  This matches the paper's experimental setup and is what
  the experiment harness uses.
- :class:`~repro.simulation.event_engine.EventEngine` -- asynchronous
  timer-driven execution with modelled message latency and loss, used to
  check that the cycle-level results carry over to a more realistic
  deployment model.

Both execution models also exist over the shared flat-array protocol
kernel (:mod:`repro.simulation.arrayviews`), for 10^4..10^5+ node
populations: :class:`~repro.simulation.fast.FastCycleEngine` is
byte-compatible with :class:`CycleEngine` given the same seed, and
:class:`~repro.simulation.fast_event.FastEventEngine` is byte-compatible
with :class:`EventEngine` -- both optionally through a compiled C core.

A third execution family scales a *single* run across cores:
:class:`~repro.simulation.sharded.ShardedCycleEngine` runs deterministic
synchronous BSP rounds over the same kernel, optionally partitioned
across shard processes through shared memory, with results identical for
every shard count (see :mod:`repro.simulation.sharded`).
"""

from repro.simulation.engine import CycleEngine
from repro.simulation.event_engine import EventEngine
from repro.simulation.fast import FastCycleEngine
from repro.simulation.fast_event import FastEventEngine
from repro.simulation.sharded import ShardedCycleEngine
from repro.simulation.network import (
    BernoulliLoss,
    ConstantLatency,
    ExponentialLatency,
    NoLoss,
    UniformLatency,
)
from repro.simulation.trace import (
    DeadLinkCensus,
    DegreeTracer,
    MetricsRecorder,
    Observer,
)

__all__ = [
    "BernoulliLoss",
    "ConstantLatency",
    "CycleEngine",
    "DeadLinkCensus",
    "DegreeTracer",
    "EventEngine",
    "ExponentialLatency",
    "FastCycleEngine",
    "FastEventEngine",
    "MetricsRecorder",
    "NoLoss",
    "Observer",
    "ShardedCycleEngine",
    "UniformLatency",
]

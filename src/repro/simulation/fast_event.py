"""Array-backed asynchronous event engine for large-scale gossip runs.

:class:`FastEventEngine` executes the same asynchronous model as
:class:`~repro.simulation.event_engine.EventEngine` -- per-node periodic
timers at random phases, per-message latency and loss, passive replies on
delivery -- over the shared flat-array protocol kernel
(:class:`~repro.simulation.arrayviews.FlatArrayEngine`) instead of one
``GossipNode`` object per peer and one ``(float, counter, object)`` tuple
per scheduled event.  The paper's cycle-based findings only become
credible at scale if they survive this regime; the object-per-node event
engine tops out around 10^3 nodes, this engine sustains 10^4..10^5.

Execution model
---------------

Time is kept in exact integer *ticks*, ``ticks_per_period`` per gossip
period, on a :class:`~repro.simulation.scheduler.TickScheduler` -- a
binary heap of packed integers (tick, FIFO sequence number, event word)
with no per-event allocation.  The event word encodes a kind (timer /
request delivery / reply delivery) and either a node id or a *message
slot*: in-flight payloads live in a pooled flat buffer of ``c + 1``
descriptor slots per message (ids + hop counts + source/destination),
recycled through a free-list, so even the messages in flight allocate
nothing on the hot path.

Latency and loss are sampled per message from the same
:class:`~repro.simulation.network.LatencyModel` /
:class:`~repro.simulation.network.LossModel` objects the reference event
engine uses; float delays are mapped to ticks by one monotone
multiplication.

Equivalence with ``EventEngine``
--------------------------------

The engine consumes the RNG call-for-call like the reference event
engine (phase ``uniform`` per join, one ``_randbelow`` per ``rand`` peer
selection, loss before latency per message, merge-truncation draws
inside the kernel) and orders events exactly like the float scheduler up
to tick quantization: the tick map is monotone, and at the default
resolution of 2^40 ticks per period two distinct float event times
practically never collide into one tick.  For matched seeds the overlays
are therefore *byte-identical* to ``EventEngine``'s, which
``tests/simulation/test_fast_event_differential.py`` pins across
protocols, latency/loss models and churn.

Execution backends
------------------

Like the fast cycle engine, the hot path has two interchangeable
implementations: a pure-Python loop over the kernel primitives, and an
accelerated path that calls the compiled C core once per protocol step
(``fc_event_begin`` / ``fc_event_deliver``) with the Mersenne Twister
state *resident* in C for the duration of a scheduling slice --
engine-level draws (loss, latency, churn at cycle boundaries) go through
a bit-exact C-backed ``random.Random`` facade, so the logical RNG stream
stays seamless.  Both backends produce byte-identical results.

Differences from the cycle engines
----------------------------------

- ``run(cycles)`` advances simulated time by ``cycles`` gossip periods;
  on average every node initiates once per period, and observers fire at
  period boundaries, so metrics are directly comparable.
- There is no per-cycle activation permutation: interleaving emerges
  from the timer phases.
- ``lockstep_phases=True`` starts every timer at phase zero (and skips
  the per-join phase draw), which reproduces cycle-engine-like rounds;
  with zero latency and no loss the degree distributions match the
  cycle engines statistically (a property test pins this).
"""

from __future__ import annotations

import random
from array import array
from heapq import heapify, heappop, heappush
from itertools import compress
from typing import Optional

from repro.core.config import ProtocolConfig
from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError, SimulationError
from repro.core.policies import PeerSelection
from repro.simulation._fastcore import Accelerator
from repro.simulation.arrayviews import FlatArrayEngine
from repro.simulation.base import NodeFactory
from repro.simulation.network import (
    BernoulliLoss,
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    LossModel,
    NoLoss,
    UniformLatency,
)
from repro.simulation.scheduler import TickScheduler

__all__ = ["FastEventEngine", "DEFAULT_TICKS_PER_PERIOD"]

DEFAULT_TICKS_PER_PERIOD = 1 << 40
"""Default tick resolution: fine enough that distinct float event times
of the reference engine essentially never share a tick (which is what
makes the differential byte-identity achievable), coarse enough that a
300-period run stays far below the scheduler's packing headroom."""

# Event word layout (TickScheduler data): kind << 26 | index.
_KIND_SHIFT = 26
_IDX_MASK = (1 << _KIND_SHIFT) - 1
_DATA_BITS = _KIND_SHIFT + 2
_TIMER = 0 << _KIND_SHIFT      # index = node id
_REQUEST = 1 << _KIND_SHIFT    # index = message slot
_REPLY = 2 << _KIND_SHIFT      # index = message slot


class _AcceleratorRandom(random.Random):
    """A ``random.Random`` facade over the C core's resident MT19937.

    While the fast event engine runs an accelerated scheduling slice, the
    Mersenne Twister state lives inside the C library; engine-level draws
    (loss, latency) still have to come from the *same* logical stream, so
    they are routed through this facade, whose :meth:`random` and
    :meth:`getrandbits` are bit-exact reimplementations of CPython's over
    the C-resident state.  Every derived method (``uniform``,
    ``expovariate``, ``sample``, ...) reduces to these two, so arbitrary
    latency/loss models stay deterministic and seamless.
    """

    def __init__(self, accel: Accelerator) -> None:
        self._accel = accel
        super().__init__()

    def random(self) -> float:
        return self._accel.rand_double()

    def getrandbits(self, k: int) -> int:
        if k <= 0:
            raise ValueError("number of bits must be greater than zero")
        rand_bits = self._accel.rand_bits
        if k <= 32:
            return rand_bits(k)
        # CPython fills 32-bit words least-significant first, shifting the
        # final partial word down; replicate exactly.
        result = 0
        shift = 0
        while k > 32:
            result |= rand_bits(32) << shift
            shift += 32
            k -= 32
        return result | (rand_bits(k) << shift)


class FastEventEngine(FlatArrayEngine):
    """Asynchronous timer-and-message executor over flat array storage.

    Parameters
    ----------
    config, seed, rng:
        As in :class:`~repro.simulation.base.BaseEngine`.  Custom
        ``node_factory`` protocols are not supported (use
        :class:`~repro.simulation.event_engine.EventEngine`).
    period:
        Gossip period ``T``: simulated time between a node's activations.
    latency:
        Per-message delay model (default: constant ``period / 10``).
    loss:
        Per-message drop model (default: no loss).
    accelerate:
        As in :class:`~repro.simulation.fast.FastCycleEngine`.
    accelerator:
        An explicit (e.g. *private*) C-core instance -- see
        :class:`~repro.simulation.arrayviews.FlatArrayEngine`.  With a
        private instance per engine, several engines can run their C
        event loops concurrently from different threads: ``fc_event_run``
        executes without the GIL (ctypes releases it for the duration of
        the call) and touches only its own library's globals.
    ticks_per_period:
        Integer tick resolution of the scheduler (see module docstring).
    lockstep_phases:
        Start every timer at phase zero instead of a uniformly random
        phase (and consume no phase draw), producing cycle-like lockstep
        rounds.  Diverges from ``EventEngine``'s RNG stream; meant for
        controlled experiments, not differential runs.

    Example
    -------
    >>> from repro import FastEventEngine, newscast
    >>> from repro.simulation.network import UniformLatency, BernoulliLoss
    >>> from repro.simulation.scenarios import random_bootstrap
    >>> engine = FastEventEngine(
    ...     newscast(view_size=10), seed=1,
    ...     latency=UniformLatency(0.05, 0.2), loss=BernoulliLoss(0.01),
    ... )
    >>> random_bootstrap(engine, n_nodes=100)
    >>> engine.run(cycles=20)
    >>> engine.cycle
    20
    """

    shuffle_each_cycle: bool = False
    """No per-cycle permutation exists in the asynchronous model; node
    interleaving emerges from the timer phases."""

    adversary = None
    """An installed :class:`~repro.adversary.harness.FastEventAdversary`,
    or ``None``.  While installed it supplies the event-dispatch loop
    (pure Python, RNG-parity with ``EventEngine`` + wrapped nodes) for
    the whole run -- the attack window may open at any cycle boundary,
    so the honest C slice cannot be trusted across boundaries."""

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        node_factory: Optional[NodeFactory] = None,
        period: float = 1.0,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        omniscient_peer_selection: bool = True,
        accelerate: Optional[bool] = None,
        accelerator: Optional[Accelerator] = None,
        ticks_per_period: int = DEFAULT_TICKS_PER_PERIOD,
        lockstep_phases: bool = False,
    ) -> None:
        super().__init__(
            config=config,
            seed=seed,
            rng=rng,
            node_factory=node_factory,
            omniscient_peer_selection=omniscient_peer_selection,
            accelerate=accelerate,
            accelerator=accelerator,
        )
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        if int(ticks_per_period) < 1:
            raise ConfigurationError(
                f"ticks_per_period must be >= 1, got {ticks_per_period}"
            )
        self.period = period
        self.latency = latency if latency is not None else ConstantLatency(period / 10)
        self.loss = loss if loss is not None else NoLoss()
        self.ticks_per_period = int(ticks_per_period)
        self.lockstep_phases = lockstep_phases
        self._tick_scale = self.ticks_per_period / period
        self._sched = TickScheduler(data_bits=_DATA_BITS)
        self._boundary_index = 0  # boundary k sits at exactly k * ticks_per_period
        self.messages_sent = 0
        self.messages_lost = 0
        # message slot pool: c + 1 descriptor slots per in-flight payload.
        self._slot_stride = self.config.view_size + 1
        self._zero_slot = bytes(8 * self._slot_stride)
        self._m_ids = array("q")
        self._m_hops = array("q")
        self._m_len = array("q")
        self._m_src = array("q")
        self._m_dst = array("q")
        self._free_slots: list = []
        # slots in [0, _pool_fresh) are in circulation (free or in flight);
        # [_pool_fresh, len(_m_len)) are preallocated untouched headroom
        # for the whole-slice C loop.
        self._pool_fresh = 0
        # scratch for the accelerated path
        self._c_out = array("q", (0, 0))
        self._rstate = array("q", bytes(8 * 625))
        self._c_rng = (
            _AcceleratorRandom(self._accel) if self._accel is not None else None
        )

    # -- clocks ------------------------------------------------------------

    @property
    def now_tick(self) -> int:
        """Current simulated time in scheduler ticks."""
        return self._sched.now_tick

    @property
    def now(self) -> float:
        """Current simulated time in the same units as ``period``."""
        return self._sched.now_tick / self.ticks_per_period * self.period

    # -- population hooks --------------------------------------------------

    def _on_node_added(self, address: Address) -> None:
        node_id = self._id_of[address]
        if node_id > _IDX_MASK:
            raise ConfigurationError(
                f"population exceeds {_IDX_MASK + 1} distinct addresses "
                "(event word capacity)"
            )
        if self.lockstep_phases:
            phase = 0
        else:
            # Random initial phase desynchronizes the node activations;
            # same draw as the reference event engine.
            phase = int(
                self.rng.uniform(0.0, self.period) * self._tick_scale
            )
        self._sched.push(self._sched.now_tick + phase, _TIMER | node_id)

    # -- message slot pool -------------------------------------------------

    def _new_slot(self) -> int:
        """Take a never-used slot (the free-list was empty), growing the
        pool by one when no preallocated headroom is left."""
        slot = self._pool_fresh
        if slot < len(self._m_len):
            self._pool_fresh = slot + 1
            return slot
        if slot > _IDX_MASK:
            raise ConfigurationError(
                f"more than {_IDX_MASK + 1} messages in flight "
                "(event word capacity)"
            )
        self._grow_pool(1)
        self._pool_fresh = slot + 1
        return slot

    def _grow_pool(self, slots: int) -> None:
        """Append up to ``slots`` untouched headroom slots to the pool.

        Growth is clamped to the event word's 26-bit slot capacity; once
        the pool is exhausted this raises the same clean
        :class:`~repro.core.errors.ConfigurationError` the per-slot path
        does -- the C loop's bulk-growth requests must never mint slot
        indices whose bits would bleed into the event kind field.
        """
        capacity = _IDX_MASK + 1
        available = capacity - len(self._m_len)
        if available <= 0:
            raise ConfigurationError(
                f"more than {capacity} messages in flight "
                "(event word capacity)"
            )
        slots = min(slots, available)
        zero = bytes(8 * slots)
        self._m_len.frombytes(zero)
        self._m_src.frombytes(zero)
        self._m_dst.frombytes(zero)
        self._m_ids.frombytes(self._zero_slot * slots)
        self._m_hops.frombytes(self._zero_slot * slots)
        self._ptr_dirty = True

    def _new_slot_c(self, accel: Accelerator) -> int:
        """Take a slot, re-registering the buffers if anything grew.

        ``_ptr_dirty`` covers *all* engine buffers (view arrays included,
        per the kernel's contract), so clearing it requires re-issuing
        both registrations -- pool growth is the usual trigger here, but
        a callback that interned an address mid-slice must not leave the
        C core holding stale view pointers.
        """
        slot = self._new_slot()
        if self._ptr_dirty:
            self._accel_setup(accel)
            self._event_setup(accel)
            self._ptr_dirty = False
        return slot

    def _event_setup(self, accel: Accelerator) -> None:
        """Register the message pool buffers with the C core."""
        pointer = Accelerator.pointer
        accel.event_setup(
            pointer(self._m_ids.buffer_info()[0]),
            pointer(self._m_hops.buffer_info()[0]),
            pointer(self._m_len.buffer_info()[0]),
            pointer(self._m_src.buffer_info()[0]),
            pointer(self._m_dst.buffer_info()[0]),
        )

    # -- execution ---------------------------------------------------------

    def run(self, cycles: int) -> None:
        """Advance time by ``cycles`` gossip periods."""
        self.run_ticks(cycles * self.ticks_per_period)

    def run_cycle(self) -> None:
        """Advance time by one gossip period."""
        self.run_ticks(self.ticks_per_period)

    def run_time(self, duration: float) -> None:
        """Advance simulated time by ``duration`` (same units as ``period``).

        The tick conversion uses the exact float expression
        ``round(duration / period * ticks_per_period)`` -- the same one
        ``EventEngine.run_time`` applies to its integer time grid -- so
        chained ``run_time`` calls accumulate identically on both
        engines (a pre-rounded reciprocal can differ by one tick).
        """
        self.run_ticks(
            round(duration / self.period * self.ticks_per_period)
        )

    def run_ticks(self, duration_ticks: int) -> None:
        """Advance simulated time by ``duration_ticks`` scheduler ticks."""
        if duration_ticks < 0:
            raise ConfigurationError(
                f"cannot run a negative duration: {duration_ticks}"
            )
        sched = self._sched
        end = sched.now_tick + int(duration_ticks)
        while True:
            # Skip the dispatch machinery (and, on the whole-slice C
            # path, a full heap migration round-trip) when no pending
            # event can fire within this slice.
            next_tick = sched.peek_tick()
            if next_tick is None or next_tick > end:
                pass
            elif (adversary := self.adversary) is not None:
                adversary.run_events(self, end)
            elif (accel := self._accel) is not None and not (
                self.config.validate_descriptors
            ) and type(
                self.rng
            ) is random.Random:
                codes = self._c_model_codes()
                if codes is not None and self.reachable is None:
                    # built-in models, no reachability predicate: the
                    # whole dispatch loop (heap included) runs natively
                    # in C.  The slice bails out early if a boundary
                    # observer installs a predicate or swaps in a custom
                    # model mid-run...
                    finished = self._run_events_c_full(accel, end, codes)
                    if not finished:
                        # ...and the per-step path finishes the slice.
                        self._run_events_c(accel, end)
                else:
                    # custom models / reachability callbacks need Python
                    # between protocol steps: one C call per step.
                    self._run_events_c(accel, end)
            else:
                self._run_events_python(end)
            # No events left at or before `end`.  Trailing boundaries are
            # fired one at a time, re-entering the dispatch loop after
            # each: observers may *create* work (the growing scenario
            # adds nodes whose timers must fire within this same run),
            # exactly like the reference engine's run_time.
            next_boundary = (self._boundary_index + 1) * self.ticks_per_period
            if next_boundary <= end:
                self._fire_boundaries(next_boundary)
                continue
            break
        sched.now_tick = end

    def _c_model_codes(self):
        """Loss/latency parameters for the all-C loop, or ``None``.

        Only the built-in model classes are expressible: the C side
        reproduces their exact ``random.Random`` float expressions (see
        ``fc_event_run``), so results stay byte-identical with the
        Python paths.  Custom models fall back to the per-step loop.
        """
        loss = self.loss
        if type(loss) is NoLoss:
            loss_code, loss_p = 0, 0.0
        elif type(loss) is BernoulliLoss:
            loss_code, loss_p = 1, loss.probability
        else:
            return None
        latency = self.latency
        if type(latency) is ConstantLatency:
            lat = (0, int(latency.delay * self._tick_scale), 0.0, 0.0)
        elif type(latency) is UniformLatency:
            lat = (1, 0, latency.low, latency.high - latency.low)
        elif type(latency) is ExponentialLatency:
            # ExponentialLatency.sample calls expovariate(1.0 / mean).
            lat = (2, 0, 1.0 / latency.mean, 0.0)
        else:
            return None
        return (loss_code, loss_p) + lat

    def _specialized_models(self):
        """Constant-fold the built-in loss/latency models for the hot loop.

        Returns ``(no_loss, bernoulli_p, constant_delay_ticks, uniform)``:
        draw-free models are skipped entirely (``NoLoss`` consumes no RNG,
        ``ConstantLatency`` folds to one precomputed tick count) and the
        two stochastic built-ins reduce to a single ``random()`` draw
        inlined at the call site with exactly the float expression
        ``random.Random`` would evaluate, so the RNG stream is unchanged.
        Anything else (``None`` markers) goes through the generic
        ``drops``/``sample`` calls.
        """
        loss = self.loss
        no_loss = type(loss) is NoLoss
        bernoulli_p = (
            loss.probability if type(loss) is BernoulliLoss else None
        )
        latency = self.latency
        constant_delay = (
            int(latency.delay * self._tick_scale)
            if type(latency) is ConstantLatency
            else None
        )
        uniform = (
            (latency.low, latency.high - latency.low)
            if type(latency) is UniformLatency
            else None
        )
        return no_loss, bernoulli_p, constant_delay, uniform

    def _hot_bindings(self, tick_shift: int):
        """Hot-loop bindings derived from observable engine state.

        Everything returned here is state the reference event engine
        reads per send and that boundary observers may legitimately swap
        mid-run (``TemporaryPartition`` installs ``reachable``; models
        can be replaced): both interpreter loops bind it at slice start
        AND re-bind through this one helper after every cycle boundary,
        so the backends cannot drift apart on re-binding semantics.
        Returns ``(reachable, latency_sample, loss_drops, no_loss,
        bernoulli_p, constant_delay, uniform, constant_delay_key)``.
        """
        no_loss, bernoulli_p, constant_delay, uniform = (
            self._specialized_models()
        )
        return (
            self.reachable,
            self.latency.sample,
            self.loss.drops,
            no_loss,
            bernoulli_p,
            constant_delay,
            uniform,
            constant_delay << tick_shift
            if constant_delay is not None
            else None,
        )

    def _fire_boundaries(self, up_to_tick: int) -> None:
        # Boundary k is the exact integer product k * ticks_per_period.
        ticks_per_period = self.ticks_per_period
        while (self._boundary_index + 1) * ticks_per_period <= up_to_tick:
            self._boundary_index += 1
            self.cycle += 1
            self._notify_after_cycle()
            self._notify_before_cycle()

    # -- the pure-Python event loop ----------------------------------------

    def _run_events_python(self, end: int) -> None:
        """Dispatch all events up to ``end``, kernel primitives in Python.

        Mirrors ``EventEngine.run_time`` decision for decision and draw
        for draw -- see the module docstring for the equivalence
        argument.  Counters are accumulated locally and flushed before
        every cycle boundary so observers see up-to-date totals.
        """
        sched = self._sched
        heap = sched._heap
        tick_shift = sched._tick_shift
        seq_shift = sched._seq_shift
        data_mask = sched._data_mask
        seq = sched._seq
        config = self.config
        c = config.view_size
        stride = self._slot_stride
        ticks_per_period = self.ticks_per_period
        tick_scale = self._tick_scale
        rng = self.rng
        randrange = rng.randrange
        merge_into = self._merge_into
        vids = self._vids
        vhops = self._vhops
        vlen = self._vlen
        row_of = self._row_of
        alive = self._alive
        addr_of = self._addr_of
        m_ids = self._m_ids
        m_hops = self._m_hops
        m_len = self._m_len
        m_src = self._m_src
        m_dst = self._m_dst
        free_slots = self._free_slots
        push_proto = config.push
        pull = config.pull
        peer_sel = config.peer_selection
        ps_rand = peer_sel is PeerSelection.RAND
        ps_head = peer_sel is PeerSelection.HEAD
        omniscient = self.omniscient_peer_selection
        validating = config.validate_descriptors
        if validating:
            from repro.defenses.validation import sanitize_indexed
        inc = (1).__add__
        alive_at = alive.__getitem__
        rand = rng.random
        (
            reachable,
            latency_sample,
            loss_drops,
            no_loss,
            bernoulli_p,
            constant_delay,
            uniform,
            constant_delay_key,
        ) = self._hot_bindings(tick_shift)
        free_pop = free_slots.pop
        free_append = free_slots.append
        completed = 0
        failed = 0
        sent = 0
        lost = 0
        next_boundary = (self._boundary_index + 1) * ticks_per_period
        # Control flow compares raw packed keys, not unpacked ticks: for
        # any threshold tick T, key < T << shift  <=>  tick < T, because
        # the low (seq | data) bits are always below 1 << shift.
        end_key = ((end + 1) << tick_shift) - 1
        boundary_key = next_boundary << tick_shift
        period_key = ticks_per_period << tick_shift
        tick_mask = ~((1 << tick_shift) - 1)  # key & tick_mask strips seq/data
        last_key = None

        try:
            while heap:
                key = heap[0]
                if key > end_key:
                    break
                if key >= boundary_key:
                    # flush counters and hand control to the observers; they
                    # may draw from the RNG, crash/add nodes and push timers.
                    self.completed_exchanges += completed
                    self.failed_exchanges += failed
                    self.messages_sent += sent
                    self.messages_lost += lost
                    completed = failed = sent = lost = 0
                    sched._seq = seq
                    if last_key is not None:
                        sched.now_tick = last_key >> tick_shift
                    self._fire_boundaries(key >> tick_shift)
                    next_boundary = (self._boundary_index + 1) * ticks_per_period
                    boundary_key = next_boundary << tick_shift
                    seq = sched._seq
                    (
                        reachable,
                        latency_sample,
                        loss_drops,
                        no_loss,
                        bernoulli_p,
                        constant_delay,
                        uniform,
                        constant_delay_key,
                    ) = self._hot_bindings(tick_shift)
                    continue  # re-peek: observers may have pushed events
                key = heappop(heap)
                last_key = key
                data = key & data_mask

                if data < _REQUEST:  # timer; data is the bare node id
                    i = data
                    if not alive[i]:
                        continue  # crashed: the timer dies with the node
                    row = row_of[i]
                    base = row * c
                    ln = vlen[row]
                    row_end = base + ln
                    p = -1
                    if ln:
                        # active thread, first half: age view, select peer.
                        aged = array("q", map(inc, vhops[base:row_end]))
                        vhops[base:row_end] = aged
                        if not omniscient:
                            if ps_rand:
                                p = vids[base + randrange(ln)]
                            elif ps_head:
                                p = vids[base]
                            else:
                                p = vids[row_end - 1]
                        elif self._maybe_dead_refs:
                            vslice = vids[base:row_end]
                            cand = list(compress(vslice, map(alive_at, vslice)))
                            if cand:
                                if ps_rand:
                                    p = cand[randrange(len(cand))]
                                elif ps_head:
                                    p = cand[0]
                                else:
                                    p = cand[-1]
                        else:
                            if ps_rand:
                                p = vids[base + randrange(ln)]
                            elif ps_head:
                                p = vids[base]
                            else:
                                p = vids[row_end - 1]
                    base_key = key & tick_mask
                    if p >= 0:
                        sent += 1
                        if reachable is not None and not reachable(
                            addr_of[i], addr_of[p]
                        ):
                            lost += 1
                        elif no_loss or (
                            rand() >= bernoulli_p
                            if bernoulli_p is not None
                            else not loss_drops(rng)
                        ):
                            if constant_delay is not None:
                                delay_key = constant_delay_key
                            elif uniform is not None:
                                delay_key = int(
                                    (uniform[0] + uniform[1] * rand())
                                    * tick_scale
                                ) << tick_shift
                            else:
                                delay = latency_sample(rng)
                                if delay < 0:
                                    # same guard EventEngine gets from
                                    # EventScheduler.schedule
                                    raise SimulationError(
                                        "cannot schedule into the past: "
                                        f"{delay}"
                                    )
                                delay_key = (
                                    int(delay * tick_scale) << tick_shift
                                )
                            slot = free_pop() if free_slots else self._new_slot()
                            off = slot * stride
                            if push_proto:
                                m_ids[off] = i
                                m_hops[off] = 1
                                m_ids[off + 1:off + 1 + ln] = vids[base:row_end]
                                m_hops[off + 1:off + 1 + ln] = array(
                                    "q", map(inc, vhops[base:row_end])
                                )
                                m_len[slot] = ln + 1
                            else:
                                m_len[slot] = 0
                            m_src[slot] = i
                            m_dst[slot] = p
                            heappush(
                                heap,
                                base_key
                                + delay_key
                                + ((seq << seq_shift) | _REQUEST | slot),
                            )
                            seq += 1
                        else:
                            lost += 1
                    # the timer survives even when no exchange started
                    heappush(
                        heap,
                        base_key + period_key + ((seq << seq_shift) | data),
                    )
                    seq += 1

                elif data < _REPLY:  # request delivery (the passive thread)
                    slot = data & _IDX_MASK
                    dst = m_dst[slot]
                    if not alive[dst]:
                        failed += 1
                        free_append(slot)
                        continue
                    src = m_src[slot]
                    n = m_len[slot]
                    off = slot * stride
                    rslot = -1
                    if pull:
                        # the reply snapshot precedes the merge (Figure 1).
                        rslot = free_pop() if free_slots else self._new_slot()
                        roff = rslot * stride
                        row = row_of[dst]
                        base = row * c
                        ln = vlen[row]
                        m_ids[roff] = dst
                        m_hops[roff] = 1
                        m_ids[roff + 1:roff + 1 + ln] = vids[base:base + ln]
                        m_hops[roff + 1:roff + 1 + ln] = array(
                            "q", map(inc, vhops[base:base + ln])
                        )
                        m_len[rslot] = ln + 1
                        m_src[rslot] = dst
                        m_dst[rslot] = src
                    if n:
                        if validating:
                            r_ids, r_hops = sanitize_indexed(
                                m_ids[off:off + n].tolist(),
                                m_hops[off:off + n].tolist(),
                                dst,
                                src,
                                c,
                            )
                            if r_ids:
                                merge_into(dst, r_ids, r_hops)
                        else:
                            merge_into(
                                dst,
                                m_ids[off:off + n].tolist(),
                                m_hops[off:off + n].tolist(),
                            )
                    completed += 1
                    free_append(slot)
                    if rslot >= 0:
                        sent += 1
                        if reachable is not None and not reachable(
                            addr_of[dst], addr_of[src]
                        ):
                            lost += 1
                            free_append(rslot)
                        elif no_loss or (
                            rand() >= bernoulli_p
                            if bernoulli_p is not None
                            else not loss_drops(rng)
                        ):
                            if constant_delay is not None:
                                delay_key = constant_delay_key
                            elif uniform is not None:
                                delay_key = int(
                                    (uniform[0] + uniform[1] * rand())
                                    * tick_scale
                                ) << tick_shift
                            else:
                                delay = latency_sample(rng)
                                if delay < 0:
                                    # same guard EventEngine gets from
                                    # EventScheduler.schedule
                                    raise SimulationError(
                                        "cannot schedule into the past: "
                                        f"{delay}"
                                    )
                                delay_key = (
                                    int(delay * tick_scale) << tick_shift
                                )
                            heappush(
                                heap,
                                (key & tick_mask)
                                + delay_key
                                + ((seq << seq_shift) | _REPLY | rslot),
                            )
                            seq += 1
                        else:
                            lost += 1
                            free_append(rslot)

                else:  # reply delivery (second half of the active thread)
                    slot = data & _IDX_MASK
                    dst = m_dst[slot]
                    if not alive[dst]:
                        failed += 1
                        free_append(slot)
                        continue
                    n = m_len[slot]
                    off = slot * stride
                    if validating:
                        r_ids, r_hops = sanitize_indexed(
                            m_ids[off:off + n].tolist(),
                            m_hops[off:off + n].tolist(),
                            dst,
                            m_src[slot],
                            c,
                        )
                        if r_ids:
                            merge_into(dst, r_ids, r_hops)
                    else:
                        merge_into(
                            dst,
                            m_ids[off:off + n].tolist(),
                            m_hops[off:off + n].tolist(),
                        )
                    free_append(slot)

        finally:
            # flush even when an observer raises mid-slice, so a caller
            # that catches and resumes sees consistent counters and
            # scheduler state (the C paths guard the same way).
            self.completed_exchanges += completed
            self.failed_exchanges += failed
            self.messages_sent += sent
            self.messages_lost += lost
            # monotonic guard: if an observer raised mid-boundary after
            # pushing events, the scheduler's counter is already ahead of
            # this local -- never roll it back, or later pushes would mint
            # duplicate (tick, seq) keys and break FIFO ordering.
            if seq > sched._seq:
                sched._seq = seq
            if last_key is not None:
                sched.now_tick = last_key >> tick_shift

    # -- the accelerated event loop ----------------------------------------

    def _run_events_c(self, accel: Accelerator, end: int) -> None:
        """Dispatch all events up to ``end`` through the C core.

        One C call per protocol step (``fc_event_begin`` per timer,
        ``fc_event_deliver`` per delivery); the Mersenne Twister state is
        resident in C for the whole slice and handed back to the Python
        ``Random`` around every cycle boundary (observers draw from
        Python) and on return.  Loss/latency draws go through the
        :class:`_AcceleratorRandom` facade against the resident state.
        """
        sched = self._sched
        heap = sched._heap
        tick_shift = sched._tick_shift
        seq_shift = sched._seq_shift
        data_mask = sched._data_mask
        seq = sched._seq
        ticks_per_period = self.ticks_per_period
        tick_scale = self._tick_scale
        rng = self.rng
        c_rng = self._c_rng
        alive = self._alive
        addr_of = self._addr_of
        m_src = self._m_src
        m_dst = self._m_dst
        free_slots = self._free_slots
        pull = self.config.pull
        out = self._c_out
        out_ptr = Accelerator.pointer(out.buffer_info()[0])
        state = self._rstate
        state_ptr = Accelerator.pointer(state.buffer_info()[0])
        event_begin = accel.event_begin
        event_deliver = accel.event_deliver
        completed = 0
        failed = 0
        sent = 0
        lost = 0
        next_boundary = (self._boundary_index + 1) * ticks_per_period

        rand = accel.rand_double
        (
            reachable,
            latency_sample,
            loss_drops,
            no_loss,
            bernoulli_p,
            constant_delay,
            uniform,
            constant_delay_key,
        ) = self._hot_bindings(tick_shift)
        free_pop = free_slots.pop
        free_append = free_slots.append
        # Control flow compares raw packed keys, not unpacked ticks: for
        # any threshold tick T, key < T << shift  <=>  tick < T, because
        # the low (seq | data) bits are always below 1 << shift.
        end_key = ((end + 1) << tick_shift) - 1
        boundary_key = next_boundary << tick_shift
        period_key = ticks_per_period << tick_shift
        tick_mask = ~((1 << tick_shift) - 1)  # key & tick_mask strips seq/data
        last_key = None

        self._accel_setup(accel)
        self._event_setup(accel)
        self._ptr_dirty = False
        version, internal, gauss = rng.getstate()
        state[:] = array("q", internal)
        accel.load_state(state_ptr)
        resident = True  # the authoritative MT state lives in C right now
        try:
            while heap:
                key = heap[0]
                if key > end_key:
                    break
                if key >= boundary_key:
                    # hand the RNG and counters back for the observers.
                    self.completed_exchanges += completed
                    self.failed_exchanges += failed
                    self.messages_sent += sent
                    self.messages_lost += lost
                    completed = failed = sent = lost = 0
                    sched._seq = seq
                    if last_key is not None:
                        sched.now_tick = last_key >> tick_shift
                    accel.store_state(state_ptr)
                    rng.setstate((version, tuple(state), gauss))
                    resident = False
                    self._fire_boundaries(key >> tick_shift)
                    next_boundary = (
                        self._boundary_index + 1
                    ) * ticks_per_period
                    boundary_key = next_boundary << tick_shift
                    seq = sched._seq
                    (
                        reachable,
                        latency_sample,
                        loss_drops,
                        no_loss,
                        bernoulli_p,
                        constant_delay,
                        uniform,
                        constant_delay_key,
                    ) = self._hot_bindings(tick_shift)
                    version, internal, gauss = rng.getstate()
                    state[:] = array("q", internal)
                    # observers may have grown buffers or driven another
                    # accelerated engine: re-register everything.
                    self._accel_setup(accel)
                    self._event_setup(accel)
                    self._ptr_dirty = False
                    accel.load_state(state_ptr)
                    resident = True
                    continue  # re-peek: observers may have pushed events
                key = heappop(heap)
                last_key = key
                data = key & data_mask

                if data < _REQUEST:  # timer; data is the bare node id
                    i = data
                    if not alive[i]:
                        continue  # crashed: the timer dies with the node
                    slot = free_pop() if free_slots else self._new_slot_c(accel)
                    event_begin(i, slot, out_ptr)
                    p = out[0]
                    base = key & tick_mask  # strip seq/data: tick << tick_shift
                    if p >= 0:
                        sent += 1
                        if reachable is not None and not reachable(
                            addr_of[i], addr_of[p]
                        ):
                            lost += 1
                            free_append(slot)
                        elif no_loss or (
                            rand() >= bernoulli_p
                            if bernoulli_p is not None
                            else not loss_drops(c_rng)
                        ):
                            if constant_delay is not None:
                                delay_key = constant_delay_key
                            elif uniform is not None:
                                delay_key = int(
                                    (uniform[0] + uniform[1] * rand())
                                    * tick_scale
                                ) << tick_shift
                            else:
                                delay = latency_sample(c_rng)
                                if delay < 0:
                                    # same guard EventEngine gets from
                                    # EventScheduler.schedule
                                    raise SimulationError(
                                        "cannot schedule into the past: "
                                        f"{delay}"
                                    )
                                delay_key = (
                                    int(delay * tick_scale) << tick_shift
                                )
                            m_src[slot] = i
                            m_dst[slot] = p
                            heappush(
                                heap,
                                base
                                + delay_key
                                + ((seq << seq_shift) | _REQUEST | slot),
                            )
                            seq += 1
                        else:
                            lost += 1
                            free_append(slot)
                    else:
                        free_append(slot)
                    heappush(
                        heap,
                        base + period_key + ((seq << seq_shift) | data),
                    )
                    seq += 1

                elif data < _REPLY:  # request delivery
                    slot = data & _IDX_MASK
                    dst = m_dst[slot]
                    if not alive[dst]:
                        failed += 1
                        free_append(slot)
                        continue
                    src = m_src[slot]
                    if pull:
                        rslot = (
                            free_pop()
                            if free_slots
                            else self._new_slot_c(accel)
                        )
                        event_deliver(dst, slot, rslot, out_ptr)
                        completed += 1
                        free_append(slot)
                        sent += 1
                        if reachable is not None and not reachable(
                            addr_of[dst], addr_of[src]
                        ):
                            lost += 1
                            free_append(rslot)
                        elif no_loss or (
                            rand() >= bernoulli_p
                            if bernoulli_p is not None
                            else not loss_drops(c_rng)
                        ):
                            if constant_delay is not None:
                                delay_key = constant_delay_key
                            elif uniform is not None:
                                delay_key = int(
                                    (uniform[0] + uniform[1] * rand())
                                    * tick_scale
                                ) << tick_shift
                            else:
                                delay = latency_sample(c_rng)
                                if delay < 0:
                                    # same guard EventEngine gets from
                                    # EventScheduler.schedule
                                    raise SimulationError(
                                        "cannot schedule into the past: "
                                        f"{delay}"
                                    )
                                delay_key = (
                                    int(delay * tick_scale) << tick_shift
                                )
                            m_src[rslot] = dst
                            m_dst[rslot] = src
                            heappush(
                                heap,
                                (key & tick_mask)
                                + delay_key
                                + ((seq << seq_shift) | _REPLY | rslot),
                            )
                            seq += 1
                        else:
                            lost += 1
                            free_append(rslot)
                    else:
                        event_deliver(dst, slot, -1, out_ptr)
                        completed += 1
                        free_append(slot)

                else:  # reply delivery
                    slot = data & _IDX_MASK
                    dst = m_dst[slot]
                    if not alive[dst]:
                        failed += 1
                        free_append(slot)
                        continue
                    event_deliver(dst, slot, -1, out_ptr)
                    free_append(slot)
        finally:
            if resident:
                accel.store_state(state_ptr)
                rng.setstate((version, tuple(state), gauss))
            self.completed_exchanges += completed
            self.failed_exchanges += failed
            self.messages_sent += sent
            self.messages_lost += lost
            # monotonic guard: if an observer raised mid-boundary after
            # pushing events, the scheduler's counter is already ahead of
            # this local -- never roll it back, or later pushes would mint
            # duplicate (tick, seq) keys and break FIFO ordering.
            if seq > sched._seq:
                sched._seq = seq
            if last_key is not None:
                sched.now_tick = last_key >> tick_shift

    # -- the whole-slice C event loop --------------------------------------

    _HEAP_HEADROOM = 4096
    _POOL_HEADROOM = 4096

    def _run_events_c_full(self, accel: Accelerator, end: int, codes) -> bool:
        """Dispatch events up to ``end`` natively in C.

        The pending-event heap is migrated from the Python packed-int
        representation into three parallel ``int64`` arrays (a positional
        copy: the heap property is preserved under the order-isomorphic
        key mapping, and (tick, seq) keys are unique, so the pop order is
        identical), then ``fc_event_run`` pops, dispatches and pushes
        without touching the interpreter until a cycle boundary, the end
        of the slice, or a capacity limit.  Observers run in Python at
        every boundary with the RNG state and all bookkeeping handed
        back, exactly like the other two paths.

        Returns ``True`` when the slice completed, ``False`` when a
        boundary observer installed a reachability predicate or swapped
        in a model the C loop cannot express -- all state is handed back
        consistently and the caller finishes the slice on the per-step
        path, which honors those changes.
        """
        loss_code, loss_p, lat_code, const_delay, lat_a, lat_b = codes
        sched = self._sched
        heap = sched._heap
        tick_shift = sched._tick_shift
        seq_shift = sched._seq_shift
        data_mask = sched._data_mask
        seq_mask = (1 << TickScheduler.SEQ_BITS) - 1
        ticks_per_period = self.ticks_per_period
        tick_scale = self._tick_scale
        rng = self.rng
        pointer = Accelerator.pointer

        # heap migration: positional copy into (tick, seq, data) arrays.
        n = len(heap)
        heap_cap = n + self._HEAP_HEADROOM
        ht = array("q", [key >> tick_shift for key in heap])
        hs = array("q", [(key >> seq_shift) & seq_mask for key in heap])
        hd = array("q", [key & data_mask for key in heap])
        pad = bytes(8 * self._HEAP_HEADROOM)
        ht.frombytes(pad)
        hs.frombytes(pad)
        hd.frombytes(pad)
        heap.clear()
        hlen = array("q", (n,))
        # message pool: ensure untouched headroom for C-side allocation.
        if len(self._m_len) - self._pool_fresh < self._POOL_HEADROOM:
            self._grow_pool(
                self._pool_fresh + self._POOL_HEADROOM - len(self._m_len)
            )
        pool_cap = len(self._m_len)
        free_slots = self._free_slots
        flist = array("q", free_slots)
        flist.frombytes(bytes(8 * (pool_cap - len(flist))))
        flen = array("q", (len(free_slots),))
        free_slots.clear()
        fresh = array("q", (self._pool_fresh,))
        seq_io = array("q", (sched._seq,))
        now_io = array("q", (sched.now_tick,))
        counters = array("q", (0, 0, 0, 0))
        top_tick = array("q", (0,))
        state = self._rstate
        state_ptr = pointer(state.buffer_info()[0])

        self._accel_setup(accel)
        self._event_setup(accel)
        self._ptr_dirty = False
        version, internal, gauss = rng.getstate()
        state[:] = array("q", internal)
        accel.load_state(state_ptr)
        resident = True
        try:
            while True:
                boundary = (self._boundary_index + 1) * ticks_per_period
                reason = accel.event_run(
                    end,
                    boundary,
                    pointer(ht.buffer_info()[0]),
                    pointer(hs.buffer_info()[0]),
                    pointer(hd.buffer_info()[0]),
                    pointer(hlen.buffer_info()[0]),
                    heap_cap,
                    pointer(flist.buffer_info()[0]),
                    pointer(flen.buffer_info()[0]),
                    pointer(fresh.buffer_info()[0]),
                    pool_cap,
                    pointer(seq_io.buffer_info()[0]),
                    pointer(now_io.buffer_info()[0]),
                    loss_code,
                    loss_p,
                    lat_code,
                    const_delay,
                    lat_a,
                    lat_b,
                    tick_scale,
                    ticks_per_period,
                    pointer(counters.buffer_info()[0]),
                    pointer(top_tick.buffer_info()[0]),
                )
                if reason == 0 or reason == 4:  # end of slice / empty heap
                    break
                if reason == 1:  # cycle boundary: observers run in Python
                    self.completed_exchanges += counters[0]
                    self.failed_exchanges += counters[1]
                    self.messages_sent += counters[2]
                    self.messages_lost += counters[3]
                    counters[0] = counters[1] = counters[2] = counters[3] = 0
                    sched._seq = seq_io[0]
                    sched.now_tick = now_io[0]
                    accel.store_state(state_ptr)
                    rng.setstate((version, tuple(state), gauss))
                    resident = False
                    self._fire_boundaries(top_tick[0])
                    seq_io[0] = sched._seq
                    version, internal, gauss = rng.getstate()
                    state[:] = array("q", internal)
                    # observers may have grown buffers: re-register, then
                    # drain their pushes into the C-side heap.
                    self._accel_setup(accel)
                    self._event_setup(accel)
                    self._ptr_dirty = False
                    if heap:
                        while hlen[0] + len(heap) > heap_cap:
                            ht.frombytes(pad)
                            hs.frombytes(pad)
                            hd.frombytes(pad)
                            heap_cap += self._HEAP_HEADROOM
                        hlen_ptr = pointer(hlen.buffer_info()[0])
                        for key in heap:
                            accel.heap_push(
                                key >> tick_shift,
                                (key >> seq_shift) & seq_mask,
                                key & data_mask,
                                pointer(ht.buffer_info()[0]),
                                pointer(hs.buffer_info()[0]),
                                pointer(hd.buffer_info()[0]),
                                hlen_ptr,
                            )
                        heap.clear()
                    accel.load_state(state_ptr)
                    resident = True
                    if (
                        self.reachable is not None
                        or self._c_model_codes() != codes
                    ):
                        # an observer installed a reachability predicate
                        # or swapped the latency/loss models: hand the
                        # rest of the slice to the per-step path.
                        return False
                elif reason == 2:  # heap arrays full: grow and re-enter
                    ht.frombytes(pad)
                    hs.frombytes(pad)
                    hd.frombytes(pad)
                    heap_cap += self._HEAP_HEADROOM
                elif reason == 3:  # message pool full: grow and re-enter
                    self._grow_pool(self._POOL_HEADROOM)
                    pool_cap = len(self._m_len)
                    flist.frombytes(bytes(8 * self._POOL_HEADROOM))
                    self._event_setup(accel)
                    self._ptr_dirty = False
                else:  # pragma: no cover - unknown reason code
                    raise RuntimeError(f"fc_event_run returned {reason}")
        finally:
            if resident:
                accel.store_state(state_ptr)
                rng.setstate((version, tuple(state), gauss))
            self.completed_exchanges += counters[0]
            self.failed_exchanges += counters[1]
            self.messages_sent += counters[2]
            self.messages_lost += counters[3]
            # monotonic guard: if an observer raised mid-boundary after
            # pushing events, the scheduler's counter is already ahead of
            # this local -- never roll it back, or later pushes would mint
            # duplicate (tick, seq) keys and break FIFO ordering.
            if seq_io[0] > sched._seq:
                sched._seq = seq_io[0]
            sched.now_tick = now_io[0]
            self._pool_fresh = fresh[0]
            self._free_slots[:] = flist[: flen[0]].tolist()
            # repack the C heap (and any undrained Python pushes) into the
            # canonical packed-int representation.
            packed = [
                (ht[i] << tick_shift) | (hs[i] << seq_shift) | hd[i]
                for i in range(hlen[0])
            ]
            if heap:  # exception during an observer: merge, restore order
                packed.extend(heap)
                heapify(packed)
            heap[:] = packed
        return True

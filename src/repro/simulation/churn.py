"""Churn and failure injection.

Building blocks for the robustness experiments:

- :func:`massive_failure` -- crash a fraction of the population at once
  (paper Section 7, the 50% failure of Figure 7);
- :class:`CatastrophicFailure` -- the same as a scheduled observer;
- :class:`ContinuousChurn` -- steady join/leave per cycle (beyond the
  paper's scenarios, used by the churn example and extension benches);
- :class:`TemporaryPartition` -- a network split that later heals, the
  situation the paper's discussion (Section 8) warns quick self-healing
  protocols are vulnerable to.

These observers are the *mechanisms* behind the declarative workload
API: the event kinds ``catastrophic-failure``, ``continuous-churn`` and
``partition``/``heal`` of a :class:`~repro.workloads.spec.ScenarioSpec`
compile down to them (see :mod:`repro.workloads.runtime`; the
``churn-trace`` kind adds event-driven join/leave timelines on top).
Describe new workloads as specs; direct use remains supported for
custom engines and tests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError
from repro.simulation.base import BaseEngine
from repro.simulation.trace import Observer


def massive_failure(engine: BaseEngine, fraction: float) -> List[Address]:
    """Crash ``fraction`` of all live nodes, chosen uniformly at random.

    Returns the crashed addresses.  After the call, surviving views still
    hold descriptors of the victims -- the *dead links* whose decay the
    self-healing experiment measures.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    count = int(round(len(engine) * fraction))
    return engine.crash_random_nodes(count)


class CatastrophicFailure(Observer):
    """Crash a fraction of all nodes at the start of a given cycle."""

    def __init__(self, at_cycle: int, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1]: {fraction}")
        self.at_cycle = at_cycle
        self.fraction = fraction
        self.victims: List[Address] = []
        self.fired = False

    def before_cycle(self, engine: BaseEngine) -> None:  # type: ignore[override]
        if not self.fired and engine.cycle >= self.at_cycle:
            self.victims = massive_failure(engine, self.fraction)
            self.fired = True


class ContinuousChurn(Observer):
    """Steady-state churn: a few joins and crashes at every cycle start.

    Joiners bootstrap from one uniformly random live node, keeping the
    population size roughly stable when ``joins_per_cycle`` equals
    ``leaves_per_cycle``.
    """

    def __init__(self, joins_per_cycle: int, leaves_per_cycle: int) -> None:
        if joins_per_cycle < 0 or leaves_per_cycle < 0:
            raise ConfigurationError("churn rates must be >= 0")
        self.joins_per_cycle = joins_per_cycle
        self.leaves_per_cycle = leaves_per_cycle
        self.total_joined = 0
        self.total_left = 0

    def before_cycle(self, engine: BaseEngine) -> None:  # type: ignore[override]
        leaves = min(self.leaves_per_cycle, max(0, len(engine) - 1))
        if leaves:
            engine.crash_random_nodes(leaves)
            self.total_left += leaves
        for _ in range(self.joins_per_cycle):
            alive = engine.addresses()
            if not alive:
                break
            contact = engine.rng.choice(alive)
            engine.add_node(contacts=[contact])
            self.total_joined += 1


class TemporaryPartition(Observer):
    """Split the network into groups between two cycles, then heal it.

    At ``start_cycle`` every live node is assigned to one of ``n_groups``
    groups (round-robin over a shuffled order); messages across groups are
    dropped until ``end_cycle``.  Nodes joining during the partition land
    in a random group.

    The paper's discussion (Section 8) notes that with *head* view
    selection "all partitions will forget about each other very quickly",
    so quick self-healing becomes a disadvantage -- the partition ablation
    bench reproduces exactly that.
    """

    def __init__(
        self, start_cycle: int, end_cycle: int, n_groups: int = 2
    ) -> None:
        if end_cycle <= start_cycle:
            raise ConfigurationError(
                f"end_cycle ({end_cycle}) must be > start_cycle ({start_cycle})"
            )
        if n_groups < 2:
            raise ConfigurationError(f"need >= 2 groups, got {n_groups}")
        self.start_cycle = start_cycle
        self.end_cycle = end_cycle
        self.n_groups = n_groups
        self.groups: Dict[Address, int] = {}
        self.active = False

    def _assign(self, engine: BaseEngine) -> None:
        addresses = engine.addresses()
        engine.rng.shuffle(addresses)
        self.groups = {
            address: index % self.n_groups
            for index, address in enumerate(addresses)
        }

    def _reachable(self, sender: Address, recipient: Address) -> bool:
        group_a = self.groups.get(sender)
        group_b = self.groups.get(recipient)
        if group_a is None or group_b is None:
            return True  # joined during the partition: unconstrained
        return group_a == group_b

    def before_cycle(self, engine: BaseEngine) -> None:  # type: ignore[override]
        if not self.active and self.start_cycle <= engine.cycle < self.end_cycle:
            self._assign(engine)
            engine.reachable = self._reachable
            self.active = True
        elif self.active and engine.cycle >= self.end_cycle:
            engine.reachable = None
            self.active = False

    def group_members(self, engine: BaseEngine, group: int) -> List[Address]:
        """Live members of ``group`` (valid during or after the partition)."""
        return [
            address
            for address in engine.addresses()
            if self.groups.get(address) == group
        ]


def dead_link_fraction(engine: BaseEngine) -> float:
    """Fraction of all view entries that point at dead nodes."""
    total = sum(len(node.view) for node in engine.nodes())
    if total == 0:
        return 0.0
    return engine.dead_link_count() / total

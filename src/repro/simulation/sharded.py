"""Sharded synchronous-rounds executor: one simulation across many cores.

The paper's experiments stop at N = 10^4..10^5 nodes, which is where the
single-core flat-array kernel tops out; this module shards **one**
population across K worker processes so a single run scales toward
N = 10^6.  The interned id space is partitioned round-robin
(``id % K``), every worker owns the view rows of its ids, and all rows
live in :mod:`multiprocessing.shared_memory` segments mapped into every
process -- the kernel is already contiguous ``array('q')`` rows (see
:mod:`repro.simulation.arrayviews`), so this is a storage-backend swap,
not a protocol rewrite.

Execution model: BSP rounds, a third execution family
-----------------------------------------------------

The registry already carries two execution families over the same
protocol: the synchronous *cycle* family (``cycle``/``fast``/``live``)
and the asynchronous *event* family (``event``/``fast-event``).  Both
draw every random decision from one sequential MT19937 stream, and each
exchange reads the views that all earlier exchanges of the same cycle
wrote -- a chain of data dependencies that no partitioning can cut
without changing results.  A sharded executor therefore cannot be
byte-identical to either family; what it *can* be is deterministic in a
way that does not depend on how the work is split.

``fast-sharded`` runs the protocol as **synchronous rounds** (the BSP
model, and exactly the "synchronized gossip round" formulation the
paper's Section 2 starts from) in three phases with barriers between:

1. **Request.**  Every live node ages its view, selects a peer and emits
   one request record into its shard's outbox.  Nothing is merged yet:
   all requests of a round see the views as the previous round left
   them.
2. **Request delivery.**  Each shard gathers the requests addressed to
   its ids from *all* outboxes, sorts them into canonical
   ``(destination, source)`` order -- a total order, since a node sends
   at most one request per round -- and applies them sequentially:
   build the pull reply from the current view *before* merging (the
   passive thread of Figure 1), then merge the pushed payload.
3. **Reply delivery.**  Same gather/sort/merge, for the pull replies.

Every random decision (peer selection, RAND view truncation) comes from
a **stateless counter RNG**: a splitmix64 chain keyed by
``(phase_seed, purpose, round, node, source)``.  No draw depends on any
other draw, on iteration order, or on which process evaluates it -- so
the results are a pure function of ``(seed, protocol, scenario)`` and
are *identical for every shard count K*, every backend (C or pure
Python) and every process placement.  The differential suite pins
``K in {1, 2, 4}``, both backends and the multi-process path to the
in-process serial execution of the same rounds.

Shared-memory discipline
------------------------

Within a round, shard workers write only the view rows of the ids they
own (phase 1 ages own rows; phases 2/3 merge into destination rows,
and destinations are gathered per-shard), and read only frozen state:
``alive`` and ``row_of`` change exclusively between rounds, in the
parent (churn, observers, joins all happen at cycle barriers).  The
message boxes are single-writer (each shard fills its own outbox) and
are only read after the phase barrier.  So the protocol needs no locks
-- the barriers are the synchronization.

The parent process keeps the engine's public face: ``views()``,
observers, ``crash_random_nodes`` and the scenario machinery all run in
the parent against the same shared segments, and the engine's
``random.Random`` is consumed only by parent-side operations
(bootstrap, churn draws), exactly like the serial engines.
"""

from __future__ import annotations

import ctypes
import hashlib
import multiprocessing
import os
import weakref
from array import array
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ProtocolConfig
from repro.core.errors import ConfigurationError
from repro.simulation._fastcore import Accelerator, load_accelerator
from repro.simulation.arrayviews import _POLICY_CODE, FlatArrayEngine

__all__ = [
    "ShardedCycleEngine",
    "ShmVector",
    "resolve_shards",
    "SHARDS_ENV_VAR",
]

SHARDS_ENV_VAR = "REPRO_SHARDS"


def resolve_shards(shards: Optional[int] = None) -> Optional[int]:
    """Resolve the shard-count knob: explicit > ``$REPRO_SHARDS`` > ``None``.

    Follows the ``--workers`` conventions: ``0`` means one shard per
    core, ``None`` (and an unset/empty environment variable) means "not
    requested" -- the engine then runs serially in-process.  Raises
    :class:`~repro.core.errors.ConfigurationError` on anything else.
    """
    if shards is None:
        raw = os.environ.get(SHARDS_ENV_VAR)
        if raw is None or not raw.strip():
            return None
        try:
            shards = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{SHARDS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if isinstance(shards, bool) or not isinstance(shards, int) or shards < 0:
        raise ConfigurationError(
            f"shards must be a non-negative integer, got {shards!r}"
        )
    if shards == 0:
        shards = os.cpu_count() or 1
    return shards


# ---------------------------------------------------------------------------
# Keyed counter RNG: the Python mirror of the C `fs_*` helpers in
# _fastcore.py.  Both implementations must match bit for bit -- the
# differential suite compares full overlays across backends.
# ---------------------------------------------------------------------------

_M64 = (1 << 64) - 1

_FS_SELECT = 1
_FS_REQ = 2
_FS_REP = 3


def _sm64(z: int) -> int:
    """One splitmix64 output for counter ``z`` (mod 2^64 semantics)."""
    z = (z + 0x9E3779B97F4A7C15) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


def _fs_key(seed: int, purpose: int, rnd: int, a: int, b: int) -> int:
    """The per-decision key: a chained splitmix64 over the coordinates."""
    k = _sm64(seed + purpose)
    k = _sm64(k + rnd)
    k = _sm64(k + a)
    return _sm64(k + b)


def _fs_below(key: int, t: int, n: int) -> int:
    """Draw ``t`` of the stream under ``key``, reduced mod ``n``."""
    return _sm64(key + 1 + t) % n


def _keyed_sampler(key: int):
    """A ``(m, k) -> positions`` sampler fed by the counter stream.

    Same pool algorithm as the C ``fs_sample`` (and the same shape as
    CPython's ``random.sample`` pool path), so C and Python merges pick
    identical RAND truncations.
    """

    def sample(m: int, k: int) -> List[int]:
        pool = list(range(m))
        result = []
        for t in range(k):
            j = _fs_below(key, t, m - t)
            result.append(pool[j])
            pool[j] = pool[m - t - 1]
        return result

    return sample


# ---------------------------------------------------------------------------
# Shared-memory vector: the array('q'/'B') work-alike the engine swaps in
# for its flat storage when sharding, so every kernel primitive keeps
# working unchanged while the rows become visible to worker processes.
# ---------------------------------------------------------------------------


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker ownership.

    The resource tracker assumes whoever opens a segment owns it and
    unlinks leaked segments at process exit -- which would destroy the
    parent's live storage when a worker dies.  Python 3.13 grew
    ``track=False`` for exactly this; on older versions the attach-time
    registration is suppressed instead (spawn children share the
    parent's tracker process, so a worker-side ``unregister`` would
    cancel the parent's own registration).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class ShmVector:
    """A growable ``array('q')``/``array('B')`` work-alike in shared memory.

    Supports exactly the operations the flat-array kernel performs on
    its storage arrays: ``append``, ``frombytes``, integer and
    contiguous-slice get/set (slice reads return a real ``array`` copy,
    like slicing an ``array`` does), ``len`` and ``buffer_info`` for the
    C core.  Growth allocates a fresh, larger segment and retires the
    old one -- the segment *name* therefore changes on growth, which the
    engine uses as the signal to re-send attachment info to workers.
    """

    __slots__ = ("typecode", "itemsize", "_shm", "_raw", "_mv", "_addr",
                 "_len", "_owner")

    def __init__(self, typecode: str = "q", capacity: int = 1024) -> None:
        self.typecode = typecode
        self.itemsize = array(typecode).itemsize
        self._owner = True
        self._len = 0
        self._open(shared_memory.SharedMemory(
            create=True, size=max(1, capacity) * self.itemsize))

    @classmethod
    def attach(cls, name: str, typecode: str) -> "ShmVector":
        """Map an existing segment read-write; length = full capacity."""
        vec = cls.__new__(cls)
        vec.typecode = typecode
        vec.itemsize = array(typecode).itemsize
        vec._owner = False
        vec._open(_attach_shm(name))
        vec._len = vec._shm.size // vec.itemsize
        return vec

    def _open(self, shm: shared_memory.SharedMemory) -> None:
        self._shm = shm
        self._raw = shm.buf
        # The OS may round the segment up to a page, always 8-aligned.
        usable = (shm.size // self.itemsize) * self.itemsize
        self._mv = shm.buf[:usable].cast(self.typecode)
        self._addr = ctypes.addressof(ctypes.c_char.from_buffer(shm.buf))

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    def capacity(self) -> int:
        return self._shm.size // self.itemsize

    def __len__(self) -> int:
        return self._len

    def buffer_info(self) -> Tuple[int, int]:
        return (self._addr, self._len)

    def append(self, value: int) -> None:
        if self._len >= self.capacity():
            self._grow(self._len + 1)
        self._mv[self._len] = value
        self._len += 1

    def frombytes(self, data: bytes) -> None:
        n = len(data) // self.itemsize
        if self._len + n > self.capacity():
            self._grow(self._len + n)
        start = self._len * self.itemsize
        self._raw[start:start + len(data)] = data
        self._len += n

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, _ = index.indices(self._len)
            result = array(self.typecode)
            if stop > start:
                result.frombytes(
                    self._raw[start * self.itemsize:stop * self.itemsize]
                )
            return result
        return self._mv[index]

    def __setitem__(self, index, value) -> None:
        if isinstance(index, slice):
            start, _, _ = index.indices(self._len)
            if not isinstance(value, (array, bytes, bytearray, memoryview)):
                value = array(self.typecode, value)
            src = memoryview(value).cast("B")
            base = start * self.itemsize
            self._raw[base:base + len(src)] = src
        else:
            self._mv[index] = value

    def _grow(self, needed: int) -> None:
        new_cap = max(needed, 2 * self.capacity(), 1024)
        new = shared_memory.SharedMemory(
            create=True, size=new_cap * self.itemsize)
        used = self._len * self.itemsize
        if used:
            new.buf[:used] = self._raw[:used]
        old = self._shm
        self._release_views()
        old.close()
        old.unlink()
        self._open(new)

    def _release_views(self) -> None:
        if self._mv is not None:
            self._mv.release()
        if self._raw is not None:
            self._raw.release()
        self._mv = self._raw = None

    def close(self) -> None:
        """Unmap the segment (and destroy it when this side created it)."""
        if self._shm is None:
            return
        self._release_views()
        shm = self._shm
        self._shm = None
        shm.close()
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ShmVector({self.typecode!r}, len={self._len}, "
            f"capacity={self.capacity() if self._shm else 0})"
        )


# ---------------------------------------------------------------------------
# The round phases, pure-Python backend.  These mirror the C kernels
# `fs_request_phase` / `fs_deliver` in _fastcore.py operation for
# operation; `store` is either the engine itself (serial path) or a
# worker's _ShmKernel shell -- both expose the flat-array attributes.
# ---------------------------------------------------------------------------

# Message record: (src, dst, payload_ids, payload_hops); payload hop
# counts carry the receiver-side increaseHopCount already applied, like
# the serial kernel's payloads.  The shared-memory boxes pack the same
# record as int64 [src, dst, npay, ids[c+1], hops[c+1]].


def _phase_request_py(store, seed, rnd, shard, nshards, n_ids,
                      reachable=None):
    """Phase 1 for one shard's ids: age, select, emit request records.

    Returns ``(messages, failed)``; ``failed`` is only nonzero under a
    ``reachable`` predicate (partition scenarios), which the engine
    evaluates serially -- dead destinations are counted at delivery.
    """
    config = store.config
    c = config.view_size
    vids = store._vids
    vhops = store._vhops
    vlen = store._vlen
    row_of = store._row_of
    alive = store._alive
    ps = _POLICY_CODE[config.peer_selection.value]
    push = config.push
    omniscient = store.omniscient_peer_selection
    inc = (1).__add__
    failed = 0
    messages = []
    for i in range(shard, n_ids, nshards):
        if not alive[i]:
            continue
        row = row_of[i]
        base = row * c
        ln = vlen[row]
        if not ln:
            continue
        end = base + ln
        aged = array("q", map(inc, vhops[base:end]))
        vhops[base:end] = aged
        if omniscient:
            cand = [a for a in vids[base:end] if alive[a]]
            if not cand:
                continue
            if ps == 0:
                key = _fs_key(seed, _FS_SELECT, rnd, i, 0)
                p = cand[_fs_below(key, 0, len(cand))]
            elif ps == 1:
                p = cand[0]
            else:
                p = cand[-1]
        else:
            if ps == 0:
                key = _fs_key(seed, _FS_SELECT, rnd, i, 0)
                p = vids[base + _fs_below(key, 0, ln)]
            elif ps == 1:
                p = vids[base]
            else:
                p = vids[end - 1]
        if reachable is not None and not reachable(
            store._addr_of[i], store._addr_of[p]
        ):
            failed += 1
            continue
        if push:
            pids = [i]
            pids.extend(vids[base:end])
            phops = [1]
            phops.extend(map(inc, aged))
        else:
            pids = []
            phops = []
        messages.append((i, p, pids, phops))
    return messages, failed


def _dst_src(message):
    return (message[1], message[0])


def _phase_deliver_py(store, seed, rnd, is_request, messages, do_reply):
    """Phases 2/3: apply ``messages`` to this store's ids in (dst, src) order.

    Returns ``(completed, failed, replies)``.  For requests under pull
    (``do_reply``), the reply snapshot is taken *before* the merge,
    exactly like the passive thread of Figure 1; counters only move on
    the request phase.
    """
    config = store.config
    c = config.view_size
    vids = store._vids
    vhops = store._vhops
    vlen = store._vlen
    row_of = store._row_of
    alive = store._alive
    purpose = _FS_REQ if is_request else _FS_REP
    merge_into = FlatArrayEngine._merge_into
    inc = (1).__add__
    completed = failed = 0
    replies = []
    for src, dst, pids, phops in sorted(messages, key=_dst_src):
        if not alive[dst]:
            if is_request:
                failed += 1
            continue
        if do_reply:
            row = row_of[dst]
            base = row * c
            ln = vlen[row]
            rids = [dst]
            rids.extend(vids[base:base + ln])
            rhops = [1]
            rhops.extend(map(inc, vhops[base:base + ln]))
            replies.append((dst, src, rids, rhops))
        if pids:
            key = _fs_key(seed, purpose, rnd, dst, src)
            merge_into(store, dst, pids, phops, sample=_keyed_sampler(key))
        if is_request:
            completed += 1
    return completed, failed, replies


def _pack_records(box, stride, c, messages):
    """Write ``messages`` into a shared box as int64 records; return count."""
    w = 0
    for src, dst, pids, phops in messages:
        off = w * stride
        box[off] = src
        box[off + 1] = dst
        n = len(pids)
        box[off + 2] = n
        if n:
            box[off + 3:off + 3 + n] = array("q", pids)
            hoff = off + 3 + c + 1
            box[hoff:hoff + n] = array("q", phops)
        w += 1
    return w


def _unpack_for_shard(boxes, counts, stride, c, shard, nshards):
    """Collect this shard's records from all boxes as message tuples."""
    messages = []
    for box, count in zip(boxes, counts):
        for k in range(count):
            off = k * stride
            dst = box[off + 1]
            if dst % nshards != shard:
                continue
            npay = box[off + 2]
            hoff = off + 3 + c + 1
            messages.append((
                box[off],
                dst,
                list(box[off + 3:off + 3 + npay]),
                list(box[hoff:hoff + npay]),
            ))
    return messages


def _deliver_c(accel, store, seed, rnd, is_request, shard, nshards,
               boxes, counts, do_reply, reply_box):
    """Run `fs_deliver` over ``boxes`` (anything with ``buffer_info``)."""
    FlatArrayEngine._accel_setup(store, accel)
    addrs = array("q", [box.buffer_info()[0] for box in boxes])
    cnts = array("q", counts)
    out = array("q", (0, 0, 0))
    pointer = Accelerator.pointer
    accel.shard_deliver(
        seed, rnd, 1 if is_request else 0, shard, nshards,
        pointer(addrs.buffer_info()[0]),
        pointer(cnts.buffer_info()[0]),
        len(boxes),
        1 if do_reply else 0,
        pointer(reply_box.buffer_info()[0]) if reply_box is not None else None,
        pointer(out.buffer_info()[0]),
    )
    return out


# ---------------------------------------------------------------------------
# The shard worker.
# ---------------------------------------------------------------------------

_STORE_ROLES = ("vids", "vhops", "vlen", "row_of", "alive")


class _ShmKernel:
    """The worker-side stand-in for the engine.

    Just enough flat-array attributes for the shared phase functions --
    and for ``FlatArrayEngine._merge_into`` / ``_accel_setup`` called
    unbound -- to run against attached segments.  ``rng`` stays ``None``
    on purpose: every draw on the sharded path is keyed, so touching the
    engine RNG from a worker would be a bug, and fails loudly.
    """

    shuffle_each_cycle = False

    def __init__(self, config: ProtocolConfig, omniscient: bool) -> None:
        self.config = config
        self.omniscient_peer_selection = omniscient
        self.rng = None
        self._vids = None
        self._vhops = None
        self._vlen = None
        self._row_of = None
        self._alive = None


def _worker_attach(shell, attachments, names):
    """(Re)attach whatever segments changed; return the box lists."""
    for role in _STORE_ROLES:
        name = names[role]
        current = attachments.get(role)
        if current is not None and current.name == name:
            continue
        if current is not None:
            current.close()
        attachments[role] = ShmVector.attach(
            name, "B" if role == "alive" else "q")
    shell._vids = attachments["vids"]
    shell._vhops = attachments["vhops"]
    shell._vlen = attachments["vlen"]
    shell._row_of = attachments["row_of"]
    shell._alive = attachments["alive"]
    for kind in ("req", "rep"):
        for k, name in enumerate(names[kind]):
            key = (kind, k)
            current = attachments.get(key)
            if current is not None and current.name == name:
                continue
            if current is not None:
                current.close()
            attachments[key] = ShmVector.attach(name, "q")
    req = [attachments[("req", k)] for k in range(len(names["req"]))]
    rep = [attachments[("rep", k)] for k in range(len(names["rep"]))]
    return req, rep


def _worker_main(shard, nshards, conn, config, phase_seed, omniscient,
                 use_accel):
    """Shard worker loop: strict request/response over the pipe.

    Commands: ``("segs", names)`` -> ``"ok"`` after (re)attaching;
    ``("req", rnd, n_ids)`` -> request-record count;
    ``("dreq", rnd, counts)`` -> ``(completed, failed, n_replies)``;
    ``("drep", rnd, counts)`` -> ``"ok"``; ``("stop",)`` exits.
    """
    accel = load_accelerator() if use_accel else None
    shell = _ShmKernel(config, omniscient)
    attachments: Dict[object, ShmVector] = {}
    req_boxes: List[ShmVector] = []
    rep_boxes: List[ShmVector] = []
    c = config.view_size
    stride = 2 * (c + 1) + 3
    pull = config.pull
    pointer = Accelerator.pointer
    try:
        while True:
            try:
                cmd = conn.recv()
            except (EOFError, OSError):
                break
            op = cmd[0]
            if op == "stop":
                break
            if op == "segs":
                req_boxes, rep_boxes = _worker_attach(
                    shell, attachments, cmd[1])
                conn.send("ok")
            elif op == "req":
                rnd, n_ids = cmd[1], cmd[2]
                box = req_boxes[shard]
                if accel is not None:
                    FlatArrayEngine._accel_setup(shell, accel)
                    n = accel.shard_request(
                        phase_seed, rnd, shard, nshards, n_ids,
                        pointer(box.buffer_info()[0]))
                else:
                    messages, _ = _phase_request_py(
                        shell, phase_seed, rnd, shard, nshards, n_ids)
                    n = _pack_records(box, stride, c, messages)
                conn.send(int(n))
            elif op == "dreq":
                rnd, counts = cmd[1], cmd[2]
                if accel is not None:
                    out = _deliver_c(
                        accel, shell, phase_seed, rnd, True, shard,
                        nshards, req_boxes, counts, pull,
                        rep_boxes[shard] if pull else None)
                    conn.send((int(out[0]), int(out[1]), int(out[2])))
                else:
                    messages = _unpack_for_shard(
                        req_boxes, counts, stride, c, shard, nshards)
                    completed, failed, replies = _phase_deliver_py(
                        shell, phase_seed, rnd, True, messages, pull)
                    n = _pack_records(rep_boxes[shard], stride, c, replies)
                    conn.send((completed, failed, n))
            elif op == "drep":
                rnd, counts = cmd[1], cmd[2]
                if accel is not None:
                    _deliver_c(
                        accel, shell, phase_seed, rnd, False, shard,
                        nshards, rep_boxes, counts, False, None)
                else:
                    messages = _unpack_for_shard(
                        rep_boxes, counts, stride, c, shard, nshards)
                    _phase_deliver_py(
                        shell, phase_seed, rnd, False, messages, False)
                conn.send("ok")
    finally:
        for vec in attachments.values():
            vec.close()
        conn.close()


def _shutdown_workers(conns, procs):
    """Finalizer: ask workers to exit, then make sure they did."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except (OSError, ValueError):
            pass
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for proc in procs:
        proc.join(timeout=2)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2)


def _unlink_segments(segments):
    """Finalizer: destroy the message-box segments."""
    for shm in segments:
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------


class ShardedCycleEngine(FlatArrayEngine):
    """Synchronous-rounds executor, optionally sharded across processes.

    Registered as engine ``fast-sharded``.  See the module docstring for
    the execution model; operationally:

    - ``shards=None`` (or 1): the rounds run serially in-process, C core
      when available.  This is the semantic reference the differential
      suite pins everything else to.
    - ``shards=K>1``: the flat storage lives in shared memory, K spawned
      workers execute the phases in lockstep, and the parent only moves
      counters and barriers.  Results are **identical** to the serial
      rounds -- the keyed RNG makes every draw placement-independent.
    - ``shards=0``: one shard per core (``--workers`` convention).

    The engine's ``random.Random`` is consumed only by parent-side
    population operations (bootstrap, churn, trace joins), never by the
    round phases, so ``views()``, counters and digests are a pure
    function of ``(seed, protocol, scenario)`` -- independent of K and
    of the backend.

    Rounds with a ``reachable`` predicate installed (partition
    scenarios) run serially in the parent for that round -- the
    predicate is an arbitrary Python callable -- with identical
    semantics, so partitions too are K-independent.
    """

    shuffle_each_cycle = False
    """Round phases are order-independent by construction; the engine
    RNG is never drawn for activation order (keeps parent-side draws
    identical across shard counts)."""

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        seed: Optional[int] = None,
        rng=None,
        node_factory=None,
        omniscient_peer_selection: bool = True,
        accelerate: Optional[bool] = None,
        accelerator: Optional[Accelerator] = None,
        shards: Optional[int] = None,
    ) -> None:
        super().__init__(
            config=config,
            seed=seed,
            rng=rng,
            node_factory=node_factory,
            omniscient_peer_selection=omniscient_peer_selection,
            accelerate=accelerate,
            accelerator=accelerator,
        )
        if self.config is not None and self.config.validate_descriptors:
            raise ConfigurationError(
                "the sharded engine does not support "
                "validate_descriptors; use the cycle, fast or event "
                "family for defended protocols"
            )
        resolved = resolve_shards(shards)
        self.shards = 1 if resolved is None else resolved
        # The keyed streams hang off a digest of the initial RNG state:
        # same seed -> same phase_seed, without consuming a single draw.
        digest = hashlib.sha256(repr(self.rng.getstate()).encode()).digest()
        self._phase_seed = int.from_bytes(digest[:8], "little")
        if self.shards > 1:
            # Storage-backend swap: same kernel, rows now visible to
            # workers.  The population is empty here, so nothing to copy.
            self._vids = ShmVector("q")
            self._vhops = ShmVector("q")
            self._vlen = ShmVector("q")
            self._row_of = ShmVector("q")
            self._alive = ShmVector("B")
        self._conns: List = []
        self._procs: List = []
        self._worker_finalizer = None
        self._req_shm: List[shared_memory.SharedMemory] = []
        self._rep_shm: List[shared_memory.SharedMemory] = []
        self._box_finalizer = None
        self._req_records = 0
        self._rep_records = 0
        self._sent_names = None
        # Serial-path scratch boxes (plain process-local arrays).
        self._ser_req: Optional[array] = None
        self._ser_rep: Optional[array] = None
        self._ser_cap = 0

    # -- execution ---------------------------------------------------------

    def run_cycle(self) -> None:
        """Execute one synchronous round (see the module docstring)."""
        self._notify_before_cycle()
        rnd = self.cycle
        pull = self.config.pull
        if self.shards > 1 and self.reachable is None:
            completed, failed = self._run_round_parallel(rnd, pull)
        elif self._accel is not None and self.reachable is None:
            completed, failed = self._run_round_serial_c(rnd, pull)
        else:
            completed, failed = self._run_round_serial_py(rnd, pull)
        self.completed_exchanges += completed
        self.failed_exchanges += failed
        self.cycle += 1
        self._notify_after_cycle()

    def run(self, cycles: int) -> None:
        """Execute ``cycles`` consecutive rounds."""
        for _ in range(cycles):
            self.run_cycle()

    # -- serial rounds (the semantic reference) ----------------------------

    def _run_round_serial_py(self, rnd: int, pull: bool):
        n_ids = len(self._addr_of)
        messages, failed0 = _phase_request_py(
            self, self._phase_seed, rnd, 0, 1, n_ids, self.reachable)
        completed, failed, replies = _phase_deliver_py(
            self, self._phase_seed, rnd, True, messages, pull)
        if replies:
            _phase_deliver_py(
                self, self._phase_seed, rnd, False, replies, False)
        return completed, failed0 + failed

    def _run_round_serial_c(self, rnd: int, pull: bool):
        accel = self._accel
        n_ids = len(self._addr_of)
        c = self.config.view_size
        stride = 2 * (c + 1) + 3
        if self._ser_cap < n_ids:
            self._ser_cap = max(1024, n_ids + n_ids // 4)
            nbytes = 8 * stride * self._ser_cap
            self._ser_req = array("q", bytes(nbytes))
            self._ser_rep = array("q", bytes(nbytes)) if pull else None
        self._accel_setup(accel)
        nreq = accel.shard_request(
            self._phase_seed, rnd, 0, 1, n_ids,
            Accelerator.pointer(self._ser_req.buffer_info()[0]))
        out = _deliver_c(
            accel, self, self._phase_seed, rnd, True, 0, 1,
            (self._ser_req,), (nreq,), pull, self._ser_rep if pull else None)
        completed, failed, nrep = int(out[0]), int(out[1]), int(out[2])
        if pull and nrep:
            _deliver_c(
                accel, self, self._phase_seed, rnd, False, 0, 1,
                (self._ser_rep,), (nrep,), False, None)
        return completed, failed

    # -- parallel rounds ---------------------------------------------------

    def _run_round_parallel(self, rnd: int, pull: bool):
        self._ensure_workers()
        self._sync_shared()
        n_ids = len(self._addr_of)
        conns = self._conns
        for conn in conns:
            conn.send(("req", rnd, n_ids))
        counts = [conn.recv() for conn in conns]
        for conn in conns:
            conn.send(("dreq", rnd, counts))
        completed = failed = 0
        rep_counts = []
        for conn in conns:
            done, lost, nrep = conn.recv()
            completed += done
            failed += lost
            rep_counts.append(nrep)
        if pull and any(rep_counts):
            for conn in conns:
                conn.send(("drep", rnd, rep_counts))
            for conn in conns:
                conn.recv()
        return completed, failed

    def _ensure_workers(self) -> None:
        if self._conns:
            return
        use_accel = self._accel is not None
        if use_accel:
            # Compile/warm the shared C-core cache once, in the parent,
            # so K spawning workers don't race the compiler (the same
            # pre-warm run_plan gives its pool workers).
            from repro.workloads.runtime import warm_shared_caches

            warm_shared_caches(("fast-sharded",))
        ctx = multiprocessing.get_context("spawn")
        conns, procs = [], []
        for k in range(self.shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(k, self.shards, child_conn, self.config,
                      self._phase_seed, self.omniscient_peer_selection,
                      use_accel),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        self._conns = conns
        self._procs = procs
        self._worker_finalizer = weakref.finalize(
            self, _shutdown_workers, conns, procs)

    def _sync_shared(self) -> None:
        """Barrier bookkeeping: box capacity and worker attachments.

        Message boxes are sized for the worst case -- every node sends
        one request, and all of them could target one shard -- so no
        phase can overflow them.  Growth (population grew, or a storage
        vector moved to a larger segment and changed names) is detected
        here and pushed to the workers before the next phase starts.
        """
        n_ids = len(self._addr_of)
        nshards = self.shards
        c = self.config.view_size
        stride = 2 * (c + 1) + 3
        per_shard = (n_ids + nshards - 1) // nshards
        if self._req_records < per_shard or self._rep_records < n_ids:
            if self._box_finalizer is not None:
                self._box_finalizer.detach()
                self._box_finalizer = None
            _unlink_segments(self._req_shm + self._rep_shm)
            self._req_records = max(256, per_shard + per_shard // 4)
            self._rep_records = max(256, n_ids + n_ids // 4)
            self._req_shm = [
                shared_memory.SharedMemory(
                    create=True, size=8 * stride * self._req_records)
                for _ in range(nshards)
            ]
            self._rep_shm = [
                shared_memory.SharedMemory(
                    create=True, size=8 * stride * self._rep_records)
                for _ in range(nshards)
            ]
            self._box_finalizer = weakref.finalize(
                self, _unlink_segments, self._req_shm + self._rep_shm)
        names = {
            "vids": self._vids.name,
            "vhops": self._vhops.name,
            "vlen": self._vlen.name,
            "row_of": self._row_of.name,
            "alive": self._alive.name,
            "req": tuple(shm.name for shm in self._req_shm),
            "rep": tuple(shm.name for shm in self._rep_shm),
        }
        if names != self._sent_names:
            for conn in self._conns:
                conn.send(("segs", names))
            for conn in self._conns:
                conn.recv()
            self._sent_names = names

    def close(self) -> None:
        """Stop the shard workers and release the message boxes.

        The shared view storage stays mapped (``views()`` and the other
        introspection paths keep working); a later ``run_cycle`` simply
        respawns workers and reallocates boxes.
        """
        if self._worker_finalizer is not None:
            self._worker_finalizer()
            self._worker_finalizer = None
        self._conns = []
        self._procs = []
        if self._box_finalizer is not None:
            self._box_finalizer()
            self._box_finalizer = None
        self._req_shm = []
        self._rep_shm = []
        self._req_records = 0
        self._rep_records = 0
        self._sent_names = None

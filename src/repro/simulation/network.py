"""Network models for the event-driven engine.

The cycle-driven engine abstracts the network away entirely (synchronous,
loss-free exchanges); the event-driven engine uses the models here to delay
and drop messages:

- :class:`LatencyModel` implementations return a per-message delay;
- :class:`LossModel` implementations decide per-message drops.

All models draw from the RNG they are handed, never from global state, so
simulations stay reproducible.
"""

from __future__ import annotations

import random

from repro.core.errors import ConfigurationError


class LatencyModel:
    """Base class for message delay models."""

    def sample(self, rng: random.Random) -> float:
        """Return the delay for one message, in simulated time units."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ConfigurationError(f"latency must be >= 0, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ConfigurationError(
                f"need 0 <= low <= high, got low={low}, high={high}"
            )
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Exponentially distributed delays with the given mean."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean latency must be > 0, got {mean}")
        self.mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"ExponentialLatency({self.mean})"


class LossModel:
    """Base class for message loss models."""

    def drops(self, rng: random.Random) -> bool:
        """Whether one particular message is lost."""
        raise NotImplementedError


class NoLoss(LossModel):
    """A perfectly reliable network."""

    def drops(self, rng: random.Random) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss(LossModel):
    """Each message is independently lost with probability ``p``."""

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1], got {probability}"
            )
        self.probability = probability

    def drops(self, rng: random.Random) -> bool:
        return rng.random() < self.probability

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.probability})"

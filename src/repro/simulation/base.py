"""Shared population management for the simulation engines.

Both the cycle-driven and the event-driven engine manage the same kind of
node population; :class:`BaseEngine` holds that common state -- the node
table, the RNG, observers and the membership operations (add, crash,
lookup) -- while subclasses provide the execution model.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.config import ProtocolConfig
from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ConfigurationError, NodeNotFoundError
from repro.core.protocol import GossipNode
from repro.core.service import PeerSamplingService
from repro.simulation.trace import Observer

NodeFactory = Callable[[Address, random.Random], GossipNode]
"""Signature of custom node factories: ``(address, rng) -> node``."""


class BaseEngine:
    """Node population, RNG and observer plumbing shared by all engines.

    Parameters
    ----------
    config:
        Protocol instance every node runs.  Ignored when ``node_factory``
        is given (which is how extension protocols such as Cyclon reuse the
        engines).
    seed:
        Seed for the engine's private :class:`random.Random`.
    rng:
        Alternatively a pre-built RNG; takes precedence over ``seed``.
    node_factory:
        Optional callable ``(address, rng) -> node`` producing objects that
        implement the :class:`~repro.core.protocol.GossipNode` exchange
        interface (``begin_exchange`` / ``handle_request`` /
        ``handle_response`` / ``view``).
    """

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        node_factory: Optional[NodeFactory] = None,
        omniscient_peer_selection: bool = True,
    ) -> None:
        if config is None and node_factory is None:
            raise ConfigurationError(
                "engine needs a ProtocolConfig or a node_factory"
            )
        self.config = config
        self.rng = rng if rng is not None else random.Random(seed)
        self._node_factory = node_factory
        self.omniscient_peer_selection = omniscient_peer_selection
        """When ``True`` (default, the paper's model) nodes select exchange
        partners only among *live* view entries, modelling the paper's
        "selectPeer() returns the address of a live node" specification (in
        practice: timeout plus reselection).  Dead descriptors still occupy
        view slots.  Set ``False`` to let nodes target crashed peers and
        waste their turn -- the ablation benchmark measures the impact."""
        self._nodes: Dict[Address, GossipNode] = {}
        self._next_auto_address = 0
        self.cycle = 0
        self.failed_exchanges = 0
        self.completed_exchanges = 0
        self._observers: List[Observer] = []
        self.reachable: Optional[Callable[[Address, Address], bool]] = None
        """Optional reachability predicate ``(sender, recipient) -> bool``.

        When set, messages between unreachable pairs are dropped; this is
        how :class:`~repro.simulation.churn.TemporaryPartition` models
        network partitions."""

    # -- population management ---------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, address: Address) -> bool:
        return address in self._nodes

    def addresses(self) -> List[Address]:
        """All live node addresses, in insertion order."""
        return list(self._nodes)

    def nodes(self) -> List[GossipNode]:
        """All live node objects, in insertion order."""
        return list(self._nodes.values())

    def node(self, address: Address) -> GossipNode:
        """The live node at ``address`` (raises if absent)."""
        try:
            return self._nodes[address]
        except KeyError:
            raise NodeNotFoundError(address) from None

    def is_alive(self, address: Address) -> bool:
        """Whether a live node exists at ``address``."""
        return address in self._nodes

    def service(self, address: Address) -> PeerSamplingService:
        """A :class:`PeerSamplingService` bound to the node at ``address``."""
        return PeerSamplingService(self.node(address))

    def _make_node(self, address: Address) -> GossipNode:
        if self._node_factory is not None:
            node = self._node_factory(address, self.rng)
        else:
            assert self.config is not None
            node = GossipNode(address, self.config, self.rng)
        if self.omniscient_peer_selection:
            try:
                node.liveness = self._nodes.__contains__
            except AttributeError:
                pass  # custom node types without liveness support
        return node

    def add_node(
        self,
        address: Optional[Address] = None,
        contacts: Iterable[Address] = (),
    ) -> Address:
        """Create a live node, optionally seeding its view with contacts.

        Contacts enter the view with hop count 0 (the out-of-band bootstrap
        of paper Section 3).  Auto-assigned addresses are consecutive
        integers.
        """
        if address is None:
            while self._next_auto_address in self._nodes:
                self._next_auto_address += 1
            address = self._next_auto_address
            self._next_auto_address += 1
        if address in self._nodes:
            raise ConfigurationError(f"node {address!r} already exists")
        node = self._make_node(address)
        self._nodes[address] = node
        contact_list = [c for c in contacts if c != address]
        if contact_list:
            PeerSamplingService(node).init(contact_list)
        self._on_node_added(address)
        return address

    def add_nodes(
        self, count: int, contacts: Iterable[Address] = ()
    ) -> List[Address]:
        """Create ``count`` nodes sharing the same contact list."""
        contact_list = list(contacts)
        return [self.add_node(contacts=contact_list) for _ in range(count)]

    def remove_node(self, address: Address) -> None:
        """Crash the node at ``address`` (other views keep its descriptors)."""
        if address not in self._nodes:
            raise NodeNotFoundError(address)
        del self._nodes[address]

    def crash_random_nodes(self, count: int) -> List[Address]:
        """Crash ``count`` uniformly random nodes; return their addresses."""
        if count > len(self._nodes):
            raise ConfigurationError(
                f"cannot crash {count} of {len(self._nodes)} nodes"
            )
        victims = self.rng.sample(list(self._nodes), count)
        for victim in victims:
            del self._nodes[victim]
        return victims

    def _on_node_added(self, address: Address) -> None:
        """Subclass hook invoked after a node joins (e.g. to start timers)."""

    # -- observers ------------------------------------------------------------

    def add_observer(self, observer: Observer) -> None:
        """Register an observer called around every cycle."""
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        """Unregister a previously added observer."""
        self._observers.remove(observer)

    def _notify_before_cycle(self) -> None:
        for observer in self._observers:
            observer.before_cycle(self)  # type: ignore[arg-type]

    def _notify_after_cycle(self) -> None:
        for observer in self._observers:
            observer.after_cycle(self)  # type: ignore[arg-type]

    # -- introspection ------------------------------------------------------------

    def views(self) -> Dict[Address, Sequence[NodeDescriptor]]:
        """A snapshot of every node's current view entries."""
        return {
            address: node.view.entries for address, node in self._nodes.items()
        }

    def dead_link_count(self) -> int:
        """Total descriptors across all views pointing at dead addresses.

        This is the quantity the self-healing experiment (paper Figure 7)
        tracks after a massive failure.
        """
        alive = self._nodes
        count = 0
        for node in self._nodes.values():
            for descriptor in node.view:
                if descriptor.address not in alive:
                    count += 1
        return count

"""Optional C accelerator for :class:`~repro.simulation.fast.FastCycleEngine`.

The fast engine stores every view in flat ``array('q')`` buffers, which are
plain C ``int64`` memory.  This module compiles (with the system C compiler,
once, cached) a small shared library that executes an entire gossip cycle
over those buffers -- peer selection, payload construction, merge,
healer/swapper and truncation -- without touching the Python interpreter.

Bit-exact randomness
--------------------

The accelerated cycle must consume the engine's ``random.Random`` exactly
like the pure-Python reference does, or determinism and the differential
guarantees would silently break.  The C code therefore reimplements, bit
for bit, the CPython primitives the cycle path uses:

- the MT19937 core (``genrand_uint32`` incl. the tempering steps, matching
  ``_randommodule.c``);
- ``Random._randbelow_with_getrandbits`` (``getrandbits(k)`` for ``k <= 32``
  is ``genrand_uint32() >> (32 - k)``, rejection-sampled);
- ``Random.shuffle`` (Fisher-Yates over ``_randbelow(i + 1)``);
- ``Random.sample``'s *pool* algorithm.  ``sample(range(m), c)`` with
  ``m <= 2c + 2`` always satisfies ``m <= setsize`` (the pool/selection-set
  cutoff in ``random.py``), so the selection-set branch is never needed.

Before each accelerated cycle the engine hands the C code the Mersenne
Twister state (``Random.getstate()``); afterwards the mutated state is
installed back via ``Random.setstate()``.  The RNG stream is therefore
seamless across Python and C consumers -- the determinism tests assert
that even the post-run generator state matches the reference engine's.

The accelerator is optional: when no C compiler is available (or
``REPRO_NO_ACCEL`` is set), the engine transparently falls back to its
pure-Python path, which produces identical results, only slower.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from typing import Optional

__all__ = ["load_accelerator", "Accelerator"]

DISABLE_ENV_VAR = "REPRO_NO_ACCEL"
"""Set (to any non-empty value) to force the pure-Python engine path."""

_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* MT19937, bit-exact with CPython Modules/_randommodule.c            */
/* ------------------------------------------------------------------ */

#define MT_N 624
#define MT_M 397
#define MATRIX_A   0x9908b0dfU
#define UPPER_MASK 0x80000000U
#define LOWER_MASK 0x7fffffffU

static uint32_t g_mt[MT_N];
static int g_mti;

static uint32_t genrand_uint32(void) {
    uint32_t y;
    static const uint32_t mag01[2] = {0U, MATRIX_A};
    if (g_mti >= MT_N) {
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (g_mt[kk] & UPPER_MASK) | (g_mt[kk + 1] & LOWER_MASK);
            g_mt[kk] = g_mt[kk + MT_M] ^ (y >> 1) ^ mag01[y & 1U];
        }
        for (; kk < MT_N - 1; kk++) {
            y = (g_mt[kk] & UPPER_MASK) | (g_mt[kk + 1] & LOWER_MASK);
            g_mt[kk] = g_mt[kk + (MT_M - MT_N)] ^ (y >> 1) ^ mag01[y & 1U];
        }
        y = (g_mt[MT_N - 1] & UPPER_MASK) | (g_mt[0] & LOWER_MASK);
        g_mt[MT_N - 1] = g_mt[MT_M - 1] ^ (y >> 1) ^ mag01[y & 1U];
        g_mti = 0;
    }
    y = g_mt[g_mti++];
    y ^= (y >> 11);
    y ^= (y << 7) & 0x9d2c5680U;
    y ^= (y << 15) & 0xefc60000U;
    y ^= (y >> 18);
    return y;
}

/* Random._randbelow_with_getrandbits; n >= 1 and n < 2**32 here, so
   getrandbits(k) is the single-word genrand_uint32() >> (32 - k). */
static int64_t randbelow(int64_t n) {
    int k = 0;
    int64_t v = n;
    uint32_t r;
    while (v) { k++; v >>= 1; }
    do {
        r = genrand_uint32() >> (32 - k);
    } while ((int64_t)r >= n);
    return (int64_t)r;
}

/* Random.shuffle */
static void shuffle_ids(int64_t *x, int64_t len) {
    int64_t i, j, t;
    for (i = len - 1; i > 0; i--) {
        j = randbelow(i + 1);
        t = x[i]; x[i] = x[j]; x[j] = t;
    }
}

/* Random.sample(range(n), k), pool algorithm (always taken: the caller
   guarantees n <= setsize).  result receives the k chosen positions in
   sample order. */
static void sample_range(int64_t n, int64_t k, int64_t *result,
                         int64_t *pool) {
    int64_t i, j;
    for (i = 0; i < n; i++) pool[i] = i;
    for (i = 0; i < k; i++) {
        j = randbelow(n - i);
        result[i] = pool[j];
        pool[j] = pool[n - i - 1];
    }
}

/* ------------------------------------------------------------------ */
/* Engine context (one engine drives the library at a time; the GIL    */
/* serializes access and the pointers are refreshed every cycle).      */
/* ------------------------------------------------------------------ */

static int64_t *g_vids, *g_vhops, *g_vlen, *g_rowof;
static unsigned char *g_alive;
static int64_t g_c, g_H, g_S;
static int g_keepself, g_push, g_pull, g_ps, g_vs, g_omniscient, g_shuffle;

static int64_t *s_rqi, *s_rqh, *s_rpi, *s_rph;   /* payload scratch   */
static int64_t *s_bids, *s_bhops;                /* merge buffer      */
static unsigned char *s_bown;                    /* own-origin flags  */
static int64_t *s_order, *s_picked, *s_pool, *s_cand;
static int64_t g_scratch_c = -1;

/* Sharded-round keyed-RNG dispatch (see the fs_* section below): while
   g_fs_keyed is set, merge truncation draws come from the stateless
   counter stream under g_fs_key instead of the resident MT19937. */
static uint64_t g_fs_key;
static int g_fs_keyed = 0;
static void fs_sample(uint64_t key, int64_t m, int64_t k,
                      int64_t *result, int64_t *pool);

void fc_setup(int64_t *vids, int64_t *vhops, int64_t *vlen, int64_t *rowof,
              unsigned char *alive, int64_t c, int64_t healer,
              int64_t swapper, int keepself, int push, int pull,
              int ps, int vs, int omniscient, int do_shuffle) {
    g_vids = vids; g_vhops = vhops; g_vlen = vlen; g_rowof = rowof;
    g_alive = alive;
    g_c = c; g_H = healer; g_S = swapper;
    g_keepself = keepself; g_push = push; g_pull = pull;
    g_ps = ps; g_vs = vs; g_omniscient = omniscient; g_shuffle = do_shuffle;
    if (c != g_scratch_c) {
        size_t pay = (size_t)(c + 1), buf = (size_t)(2 * c + 2);
        free(s_rqi); free(s_rqh); free(s_rpi); free(s_rph);
        free(s_bids); free(s_bhops); free(s_bown);
        free(s_order); free(s_picked); free(s_pool); free(s_cand);
        s_rqi = malloc(pay * sizeof(int64_t));
        s_rqh = malloc(pay * sizeof(int64_t));
        s_rpi = malloc(pay * sizeof(int64_t));
        s_rph = malloc(pay * sizeof(int64_t));
        s_bids = malloc(buf * sizeof(int64_t));
        s_bhops = malloc(buf * sizeof(int64_t));
        s_bown = malloc(buf);
        s_order = malloc(buf * sizeof(int64_t));
        s_picked = malloc((size_t)c * sizeof(int64_t));
        s_pool = malloc(buf * sizeof(int64_t));
        s_cand = malloc((size_t)c * sizeof(int64_t));
        g_scratch_c = c;
    }
}

/* view <- selectView(merge(received, view)); received hop counts arrive
   with the receiver-side increaseHopCount already applied. */
static void merge_into(int64_t t, const int64_t *rids, const int64_t *rhops,
                       int64_t nr) {
    int64_t c = g_c, row = g_rowof[t], base = row * c, ln = g_vlen[row];
    int64_t *bids = s_bids, *bhops = s_bhops;
    unsigned char *bown = s_bown;
    int64_t *order = s_order;
    int64_t excl = g_keepself ? -1 : t;
    int64_t n = 0, nru, m, j, k;

    /* duplicate elimination: lowest hop count wins, first-seen
       (received-first) order is kept, exactly like the reference merge. */
    for (k = 0; k < nr; k++) {
        int64_t a = rids[k], f = -1;
        if (a == excl) continue;
        for (j = 0; j < n; j++) if (bids[j] == a) { f = j; break; }
        if (f < 0) { bids[n] = a; bhops[n] = rhops[k]; bown[n] = 0; n++; }
        else if (rhops[k] < bhops[f]) { bhops[f] = rhops[k]; bown[f] = 0; }
    }
    nru = n;
    for (k = 0; k < ln; k++) {
        int64_t a = g_vids[base + k], h = g_vhops[base + k], f = -1;
        if (a == excl) continue;
        for (j = 0; j < nru; j++) if (bids[j] == a) { f = j; break; }
        if (f < 0) { bids[n] = a; bhops[n] = h; bown[n] = 1; n++; }
        else if (h < bhops[f]) { bhops[f] = h; bown[f] = 1; }
    }

    /* stable insertion sort by hop count (ties keep first-seen order). */
    for (j = 0; j < n; j++) order[j] = j;
    for (j = 1; j < n; j++) {
        int64_t q = order[j], h = bhops[q], w = j;
        while (w > 0 && bhops[order[w - 1]] > h) {
            order[w] = order[w - 1];
            w--;
        }
        order[w] = q;
    }
    m = n;

    /* healer/swapper pre-truncation. */
    if (m > c && (g_H || g_S)) {
        int64_t surplus = m - c;
        if (g_H) {
            int64_t drop = g_H < surplus ? g_H : surplus;
            m -= drop;                      /* oldest = tail of the sort */
            surplus -= drop;
        }
        if (surplus > 0 && g_S) {
            int64_t todrop = g_S < surplus ? g_S : surplus, w = 0;
            for (j = 0; j < m; j++) {
                int64_t q = order[j];
                if (todrop && bown[q]) { todrop--; continue; }
                order[w++] = q;
            }
            m = w;
        }
    }

    /* view-selection truncation. */
    if (m > c) {
        if (g_vs == 1) {                     /* head */
            m = c;
        } else if (g_vs == 2) {              /* tail */
            memmove(order, order + (m - c), (size_t)c * sizeof(int64_t));
            m = c;
        } else {                             /* rand */
            int64_t *chosen = s_pool;        /* reused after sampling */
            if (g_fs_keyed) fs_sample(g_fs_key, m, c, s_picked, s_pool);
            else sample_range(m, c, s_picked, s_pool);
            for (j = 0; j < c; j++) chosen[j] = order[s_picked[j]];
            /* stable re-sort by hop count keeps the sample order on ties,
               like select_rand's chosen.sort(key=hop_count). */
            for (j = 1; j < c; j++) {
                int64_t q = chosen[j], h = bhops[q], w = j;
                while (w > 0 && bhops[chosen[w - 1]] > h) {
                    chosen[w] = chosen[w - 1];
                    w--;
                }
                chosen[w] = q;
            }
            memcpy(order, chosen, (size_t)c * sizeof(int64_t));
            m = c;
        }
    }

    for (j = 0; j < m; j++) {
        g_vids[base + j] = bids[order[j]];
        g_vhops[base + j] = bhops[order[j]];
    }
    g_vlen[row] = m;
}

/* Random-bootstrap all views: node i (address == id == 0..n-1) receives
   the first `fill` values != i of Random.sample(range(n), k).  Replicates
   CPython's sample() draw-for-draw -- both the pool algorithm (small n)
   and the selection-set algorithm with its rejection loop (large n),
   including the floating-point setsize cutoff -- so the RNG stream stays
   byte-identical with the reference engine's bootstrap.  rstate as in
   fc_run_cycle. */
void fc_bootstrap(int64_t n, int64_t k, int64_t fill, int64_t *rstate) {
    int64_t i, j, t, w;
    int64_t setsize = 21;
    int64_t *chosen = malloc((size_t)k * sizeof(int64_t));
    int64_t *pool = NULL;
    unsigned char *sel = NULL;
    for (t = 0; t < MT_N; t++) g_mt[t] = (uint32_t)rstate[t];
    g_mti = (int)rstate[MT_N];
    if (k > 5) {
        /* random.py: setsize += 4 ** ceil(log(k * 3, 4)) */
        setsize += (int64_t)pow(4.0,
                                ceil(log((double)(k * 3)) / log(4.0)));
    }
    if (n <= setsize) {
        pool = malloc((size_t)n * sizeof(int64_t));
    } else {
        sel = calloc((size_t)n, 1);
    }
    for (i = 0; i < n; i++) {
        int64_t row = g_rowof[i], base = row * g_c;
        if (pool) {
            for (t = 0; t < n; t++) pool[t] = t;
            for (t = 0; t < k; t++) {
                j = randbelow(n - t);
                chosen[t] = pool[j];
                pool[j] = pool[n - t - 1];
            }
        } else {
            for (t = 0; t < k; t++) {
                j = randbelow(n);
                while (sel[j]) j = randbelow(n);
                sel[j] = 1;
                chosen[t] = j;
            }
            for (t = 0; t < k; t++) sel[chosen[t]] = 0;
        }
        w = 0;
        for (t = 0; t < k; t++) {
            if (chosen[t] != i) {
                if (w == fill) break;
                g_vids[base + w] = chosen[t];
                g_vhops[base + w] = 0;
                w++;
            }
        }
        g_vlen[row] = w;
    }
    free(chosen);
    free(pool);
    free(sel);
    for (t = 0; t < MT_N; t++) rstate[t] = (int64_t)g_mt[t];
    rstate[MT_N] = g_mti;
}

/* ------------------------------------------------------------------ */
/* Event-driven entry points: per-exchange steps over the same kernel  */
/* state, driven by the fast event engine's tick scheduler.  Unlike    */
/* fc_run_cycle, the MT19937 state stays *resident* between calls      */
/* (fc_load_state / fc_store_state bracket a scheduling slice);        */
/* Python-side draws in between (loss, latency) go through fc_random / */
/* fc_getrandbits, so there is still one seamless logical RNG stream.  */
/* ------------------------------------------------------------------ */

static int64_t *g_mids, *g_mhops, *g_mlen;   /* message slot pool */
static int64_t *g_msrc, *g_mdst;             /* per-slot source/destination */

void fc_load_state(int64_t *rstate) {
    int k;
    for (k = 0; k < MT_N; k++) g_mt[k] = (uint32_t)rstate[k];
    g_mti = (int)rstate[MT_N];
}

void fc_store_state(int64_t *rstate) {
    int k;
    for (k = 0; k < MT_N; k++) rstate[k] = (int64_t)g_mt[k];
    rstate[MT_N] = g_mti;
}

/* Random.random(): genrand_res53, bit-exact with _randommodule.c. */
double fc_random(void) {
    uint32_t a = genrand_uint32() >> 5, b = genrand_uint32() >> 6;
    return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0);
}

/* Random.getrandbits(k) for 1 <= k <= 32 (one MT word). */
uint32_t fc_getrandbits(int k) {
    return genrand_uint32() >> (32 - k);
}

void fc_event_setup(int64_t *mids, int64_t *mhops, int64_t *mlen,
                    int64_t *msrc, int64_t *mdst) {
    g_mids = mids; g_mhops = mhops; g_mlen = mlen;
    g_msrc = msrc; g_mdst = mdst;
}

/* First half of the active thread for node i (GossipNode.begin_exchange):
   age the view, select the exchange partner, build the request payload --
   merge(view, {(me, 0)}) with the receiver-side increaseHopCount already
   applied -- into message slot `slot`.  out = {peer (-1: none), npay}.
   Under non-omniscient selection the peer may be dead; the caller
   delivers anyway and the failure is counted at delivery, exactly like
   the object-per-node event engine. */
void fc_event_begin(int64_t i, int64_t slot, int64_t *out) {
    int64_t row = g_rowof[i], base = row * g_c, ln = g_vlen[row];
    int64_t p = -1, npay = 0, k;
    for (k = 0; k < ln; k++) g_vhops[base + k]++;
    if (ln) {
        if (g_omniscient) {
            int64_t nc = 0;
            for (k = 0; k < ln; k++) {
                int64_t a = g_vids[base + k];
                if (g_alive[a]) s_cand[nc++] = a;
            }
            if (nc) {
                if (g_ps == 0) p = s_cand[randbelow(nc)];
                else if (g_ps == 1) p = s_cand[0];
                else p = s_cand[nc - 1];
            }
        } else {
            if (g_ps == 0) p = g_vids[base + randbelow(ln)];
            else if (g_ps == 1) p = g_vids[base];
            else p = g_vids[base + ln - 1];
        }
    }
    if (p >= 0 && g_push) {
        int64_t off = slot * (g_c + 1);
        g_mids[off] = i; g_mhops[off] = 1;
        for (k = 0; k < ln; k++) {
            g_mids[off + 1 + k] = g_vids[base + k];
            g_mhops[off + 1 + k] = g_vhops[base + k] + 1;
        }
        npay = ln + 1;
    }
    g_mlen[slot] = npay;
    out[0] = p; out[1] = npay;
}

/* Deliver message slot `slot` to node `dst`.  For pull replies
   (reply_slot >= 0) the reply snapshot is built BEFORE the merge,
   exactly like the passive thread in Figure 1; an empty payload (the
   pull-only request) skips the merge, which is draw- and state-neutral
   (no truncation can trigger below capacity).  out = {nreply}. */
void fc_event_deliver(int64_t dst, int64_t slot, int64_t reply_slot,
                      int64_t *out) {
    int64_t off = slot * (g_c + 1), n = g_mlen[slot];
    int64_t nreply = 0, k;
    if (reply_slot >= 0) {
        int64_t row = g_rowof[dst], base = row * g_c, ln = g_vlen[row];
        int64_t roff = reply_slot * (g_c + 1);
        g_mids[roff] = dst; g_mhops[roff] = 1;
        for (k = 0; k < ln; k++) {
            g_mids[roff + 1 + k] = g_vids[base + k];
            g_mhops[roff + 1 + k] = g_vhops[base + k] + 1;
        }
        nreply = ln + 1;
        g_mlen[reply_slot] = nreply;
    }
    if (n) merge_into(dst, g_mids + off, g_mhops + off, n);
    out[0] = nreply;
}

/* ------------------------------------------------------------------ */
/* Whole-slice event loop: a native (tick, seq, data) binary min-heap  */
/* over caller-owned int64 arrays, dispatching timers and deliveries   */
/* entirely in C until a cycle boundary (observers run in Python), the */
/* end of the slice, or a capacity limit is hit.  Keys are unique      */
/* (tick, seq) pairs, so the pop order is exactly the Python packed-   */
/* int heap's order -- internal arrangement never matters.             */
/* ------------------------------------------------------------------ */

#define EVR_END 0
#define EVR_BOUNDARY 1
#define EVR_HEAP_FULL 2
#define EVR_POOL_FULL 3
#define EVR_EMPTY 4

#define EV_KIND_SHIFT 26
#define EV_IDX_MASK ((1 << EV_KIND_SHIFT) - 1)
#define EV_REQUEST (1 << EV_KIND_SHIFT)
#define EV_REPLY (2 << EV_KIND_SHIFT)

static void heap_sift_up(int64_t *ht, int64_t *hs, int64_t *hd,
                         int64_t pos, int64_t tick, int64_t seqv,
                         int64_t data) {
    while (pos > 0) {
        int64_t parent = (pos - 1) >> 1;
        if (ht[parent] < tick
            || (ht[parent] == tick && hs[parent] < seqv)) break;
        ht[pos] = ht[parent]; hs[pos] = hs[parent]; hd[pos] = hd[parent];
        pos = parent;
    }
    ht[pos] = tick; hs[pos] = seqv; hd[pos] = data;
}

void fc_heap_push(int64_t tick, int64_t seqv, int64_t data,
                  int64_t *ht, int64_t *hs, int64_t *hd,
                  int64_t *heap_len) {
    heap_sift_up(ht, hs, hd, (*heap_len)++, tick, seqv, data);
}

static void heap_remove_top(int64_t *ht, int64_t *hs, int64_t *hd,
                            int64_t n /* new length */) {
    int64_t tick = ht[n], seqv = hs[n], data = hd[n], pos = 0, child;
    while ((child = 2 * pos + 1) < n) {
        if (child + 1 < n
            && (ht[child + 1] < ht[child]
                || (ht[child + 1] == ht[child]
                    && hs[child + 1] < hs[child]))) child++;
        if (ht[child] > tick
            || (ht[child] == tick && hs[child] > seqv)) break;
        ht[pos] = ht[child]; hs[pos] = hs[child]; hd[pos] = hd[child];
        pos = child;
    }
    ht[pos] = tick; hs[pos] = seqv; hd[pos] = data;
}

/* Run the event loop until end_tick (inclusive), the next cycle
   boundary, an empty heap, or a capacity limit.  The caller re-enters
   after handling the return reason; counters accumulate
   {completed, failed, sent, lost} and now_io tracks the last dispatched
   tick (the Python scheduler's notion of "now").  Loss is decided
   before latency is sampled, per message, exactly like the reference
   event engine; loss_code 1 = Bernoulli(loss_p); lat_code 0 = constant
   (const_delay ticks), 1 = uniform(lat_a + lat_b * random()),
   2 = exponential(-log(1 - random()) / lat_a), all bit-exact with the
   corresponding random.Random expressions. */
int64_t fc_event_run(int64_t end_tick, int64_t boundary_tick,
                     int64_t *ht, int64_t *hs, int64_t *hd,
                     int64_t *heap_len, int64_t heap_cap,
                     int64_t *freelist, int64_t *free_len,
                     int64_t *pool_fresh, int64_t pool_cap,
                     int64_t *seq_io, int64_t *now_io,
                     int64_t loss_code, double loss_p,
                     int64_t lat_code, int64_t const_delay,
                     double lat_a, double lat_b,
                     double tick_scale, int64_t period_ticks,
                     int64_t *counters, int64_t *top_tick_out) {
    for (;;) {
        int64_t tick, data, n, i, slot, p;
        if (*heap_len == 0) return EVR_EMPTY;
        tick = ht[0];
        if (tick > end_tick) return EVR_END;
        if (tick >= boundary_tick) { *top_tick_out = tick; return EVR_BOUNDARY; }
        /* conservative per-event guards: at most 2 pushes, 1 fresh slot */
        if (*heap_len + 2 > heap_cap) return EVR_HEAP_FULL;
        if (*free_len == 0 && *pool_fresh >= pool_cap) return EVR_POOL_FULL;
        data = hd[0];
        n = --(*heap_len);
        heap_remove_top(ht, hs, hd, n);
        *now_io = tick;

        if (data < EV_REQUEST) {                      /* timer */
            i = data;
            if (!g_alive[i]) continue;   /* the timer dies with the node */
            slot = *free_len ? freelist[--(*free_len)] : (*pool_fresh)++;
            {
                int64_t out2[2];
                fc_event_begin(i, slot, out2);
                p = out2[0];
            }
            if (p >= 0) {
                counters[2]++;                        /* sent */
                if (loss_code == 1 && fc_random() < loss_p) {
                    counters[3]++;                    /* lost */
                    freelist[(*free_len)++] = slot;
                } else {
                    int64_t delay =
                        lat_code == 0 ? const_delay
                        : lat_code == 1
                            ? (int64_t)((lat_a + lat_b * fc_random())
                                        * tick_scale)
                            : (int64_t)(-log(1.0 - fc_random()) / lat_a
                                        * tick_scale);
                    g_msrc[slot] = i; g_mdst[slot] = p;
                    heap_sift_up(ht, hs, hd, (*heap_len)++,
                                 tick + delay, (*seq_io)++,
                                 EV_REQUEST | slot);
                }
            } else {
                freelist[(*free_len)++] = slot;
            }
            /* the timer survives even when no exchange started */
            heap_sift_up(ht, hs, hd, (*heap_len)++,
                         tick + period_ticks, (*seq_io)++, data);

        } else if (data < EV_REPLY) {                 /* request delivery */
            int64_t dst, src;
            slot = data & EV_IDX_MASK;
            dst = g_mdst[slot];
            if (!g_alive[dst]) {
                counters[1]++;                        /* failed */
                freelist[(*free_len)++] = slot;
                continue;
            }
            src = g_msrc[slot];
            if (g_pull) {
                int64_t out2[2];
                int64_t rslot =
                    *free_len ? freelist[--(*free_len)] : (*pool_fresh)++;
                fc_event_deliver(dst, slot, rslot, out2);
                counters[0]++;                        /* completed */
                freelist[(*free_len)++] = slot;
                counters[2]++;                        /* sent */
                if (loss_code == 1 && fc_random() < loss_p) {
                    counters[3]++;
                    freelist[(*free_len)++] = rslot;
                } else {
                    int64_t delay =
                        lat_code == 0 ? const_delay
                        : lat_code == 1
                            ? (int64_t)((lat_a + lat_b * fc_random())
                                        * tick_scale)
                            : (int64_t)(-log(1.0 - fc_random()) / lat_a
                                        * tick_scale);
                    g_msrc[rslot] = dst; g_mdst[rslot] = src;
                    heap_sift_up(ht, hs, hd, (*heap_len)++,
                                 tick + delay, (*seq_io)++,
                                 EV_REPLY | rslot);
                }
            } else {
                int64_t out2[2];
                fc_event_deliver(dst, slot, -1, out2);
                counters[0]++;
                freelist[(*free_len)++] = slot;
            }

        } else {                                      /* reply delivery */
            int64_t dst, out2[2];
            slot = data & EV_IDX_MASK;
            dst = g_mdst[slot];
            if (!g_alive[dst]) {
                counters[1]++;
                freelist[(*free_len)++] = slot;
                continue;
            }
            fc_event_deliver(dst, slot, -1, out2);
            freelist[(*free_len)++] = slot;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Sharded synchronous rounds (engine "fast-sharded"): stateless       */
/* splitmix64 counter RNG plus the BSP phase kernels.  Unlike the      */
/* MT19937 paths above, every draw is a pure function of               */
/* (phase_seed, purpose, round, node, source, counter), so any shard   */
/* -- in any process, in any order -- reproduces exactly the same      */
/* exchanges: results depend on the seed, never on the shard count.    */
/* The pure-Python fallback in repro.simulation.sharded implements     */
/* the identical derivation chain; the differential suite pins the     */
/* two backends together.                                              */
/* ------------------------------------------------------------------ */

#define FS_SELECT 1
#define FS_REQ 2
#define FS_REP 3

static uint64_t fs_sm64(uint64_t z) {
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

static uint64_t fs_key(uint64_t seed, uint64_t purpose, uint64_t rnd,
                       uint64_t a, uint64_t b) {
    uint64_t k = fs_sm64(seed + purpose);
    k = fs_sm64(k + rnd);
    k = fs_sm64(k + a);
    return fs_sm64(k + b);
}

/* Draw t of the stream under `key`, reduced mod n. */
static int64_t fs_below(uint64_t key, uint64_t t, int64_t n) {
    return (int64_t)(fs_sm64(key + 1 + t) % (uint64_t)n);
}

/* Keyed counterpart of sample_range: the same pool algorithm, fed by
   the counter stream instead of MT19937. */
static void fs_sample(uint64_t key, int64_t m, int64_t k,
                      int64_t *result, int64_t *pool) {
    int64_t i, j;
    for (i = 0; i < m; i++) pool[i] = i;
    for (i = 0; i < k; i++) {
        j = fs_below(key, (uint64_t)i, m - i);
        result[i] = pool[j];
        pool[j] = pool[m - i - 1];
    }
}

/* Message record layout, stride 2*(c+1) + 3 int64 apiece:
   [src, dst, npay, ids[c+1], hops[c+1]]; payload hop counts are stored
   with the receiver-side increaseHopCount already applied. */

/* Phase 1 (active threads, request half) for the ids of one shard:
   age the view, select the peer via the keyed stream, emit one request
   record per initiating node into `outbox`.  Returns the record count. */
int64_t fs_request_phase(uint64_t seed, uint64_t rnd,
                         int64_t shard, int64_t nshards, int64_t n_ids,
                         int64_t *outbox) {
    int64_t stride = 2 * (g_c + 1) + 3;
    int64_t w = 0, i, k;
    for (i = shard; i < n_ids; i += nshards) {
        int64_t row, base, ln, p = -1, *msg, npay = 0;
        if (!g_alive[i]) continue;
        row = g_rowof[i];
        base = row * g_c;
        ln = g_vlen[row];
        if (!ln) continue;
        for (k = 0; k < ln; k++) g_vhops[base + k]++;
        if (g_omniscient) {
            int64_t nc = 0;
            for (k = 0; k < ln; k++) {
                int64_t a = g_vids[base + k];
                if (g_alive[a]) s_cand[nc++] = a;
            }
            if (!nc) continue;
            if (g_ps == 0)
                p = s_cand[fs_below(
                    fs_key(seed, FS_SELECT, rnd, (uint64_t)i, 0), 0, nc)];
            else if (g_ps == 1) p = s_cand[0];
            else p = s_cand[nc - 1];
        } else {
            if (g_ps == 0)
                p = g_vids[base + fs_below(
                    fs_key(seed, FS_SELECT, rnd, (uint64_t)i, 0), 0, ln)];
            else if (g_ps == 1) p = g_vids[base];
            else p = g_vids[base + ln - 1];
        }
        msg = outbox + w * stride;
        msg[0] = i; msg[1] = p;
        if (g_push) {
            msg[3] = i; msg[3 + g_c + 1] = 1;
            for (k = 0; k < ln; k++) {
                msg[4 + k] = g_vids[base + k];
                msg[4 + g_c + 1 + k] = g_vhops[base + k] + 1;
            }
            npay = ln + 1;
        }
        msg[2] = npay;
        w++;
    }
    return w;
}

typedef struct { int64_t dst, src; int64_t *msg; } fs_ref;

static int fs_cmp(const void *x, const void *y) {
    const fs_ref *a = (const fs_ref *)x, *b = (const fs_ref *)y;
    if (a->dst != b->dst) return a->dst < b->dst ? -1 : 1;
    if (a->src != b->src) return a->src < b->src ? -1 : 1;
    return 0;
}

/* Phases 2 and 3: deliver every record whose destination belongs to
   this shard, in canonical (dst, src) order -- each source sends at
   most one request (and receives at most one reply) per round, so the
   order is total and identical however the records were boxed.  For
   requests under pull (`do_reply`), the reply snapshot is built BEFORE
   the merge, exactly like the passive thread of Figure 1; an empty
   payload (pull-only request) skips the merge.  `box_addrs` carries
   the outbox base addresses as int64 (the boxes may live in shared
   memory segments mapped at different addresses per process).
   out = {completed, failed, nreplies}. */
void fs_deliver(uint64_t seed, uint64_t rnd, int64_t is_request,
                int64_t shard, int64_t nshards,
                int64_t *box_addrs, int64_t *box_counts, int64_t nboxes,
                int64_t do_reply, int64_t *reply_box, int64_t *out) {
    int64_t stride = 2 * (g_c + 1) + 3;
    int64_t total = 0, nsel = 0, b, k;
    int64_t completed = 0, failed = 0, nreply = 0;
    fs_ref *refs;
    for (b = 0; b < nboxes; b++) total += box_counts[b];
    refs = malloc((size_t)(total ? total : 1) * sizeof(fs_ref));
    for (b = 0; b < nboxes; b++) {
        int64_t *box = (int64_t *)(intptr_t)box_addrs[b];
        for (k = 0; k < box_counts[b]; k++) {
            int64_t *msg = box + k * stride;
            if (msg[1] % nshards == shard) {
                refs[nsel].dst = msg[1];
                refs[nsel].src = msg[0];
                refs[nsel].msg = msg;
                nsel++;
            }
        }
    }
    qsort(refs, (size_t)nsel, sizeof(fs_ref), fs_cmp);
    for (k = 0; k < nsel; k++) {
        int64_t dst = refs[k].dst, src = refs[k].src;
        int64_t *msg = refs[k].msg;
        int64_t npay = msg[2], j;
        if (!g_alive[dst]) {
            if (is_request) failed++;
            continue;
        }
        if (do_reply) {
            int64_t row = g_rowof[dst], rb = row * g_c, rln = g_vlen[row];
            int64_t *rep = reply_box + nreply * stride;
            rep[0] = dst; rep[1] = src; rep[2] = rln + 1;
            rep[3] = dst; rep[3 + g_c + 1] = 1;
            for (j = 0; j < rln; j++) {
                rep[4 + j] = g_vids[rb + j];
                rep[4 + g_c + 1 + j] = g_vhops[rb + j] + 1;
            }
            nreply++;
        }
        if (npay) {
            g_fs_key = fs_key(seed, is_request ? FS_REQ : FS_REP, rnd,
                              (uint64_t)dst, (uint64_t)src);
            g_fs_keyed = 1;
            merge_into(dst, msg + 3, msg + 3 + g_c + 1, npay);
            g_fs_keyed = 0;
        }
        if (is_request) completed++;
    }
    free(refs);
    out[0] = completed; out[1] = failed; out[2] = nreply;
}

/* One full cycle.  order: live ids in insertion order (shuffled in place
   when enabled); rstate: the 625-word Mersenne Twister state from
   Random.getstate(), mutated in place; out: {completed, failed}. */
void fc_run_cycle(int64_t *order, int64_t norder, int64_t *rstate,
                  int64_t *out) {
    int64_t completed = 0, failed = 0, oi, k;
    for (k = 0; k < MT_N; k++) g_mt[k] = (uint32_t)rstate[k];
    g_mti = (int)rstate[MT_N];

    if (g_shuffle) shuffle_ids(order, norder);
    for (oi = 0; oi < norder; oi++) {
        int64_t i = order[oi], row, base, ln, p = -1, nrq = 0;
        if (!g_alive[i]) continue;
        row = g_rowof[i];
        base = row * g_c;
        ln = g_vlen[row];
        if (!ln) continue;
        /* active thread, first half: age view, select peer. */
        for (k = 0; k < ln; k++) g_vhops[base + k]++;
        if (g_omniscient) {
            int64_t nc = 0;
            for (k = 0; k < ln; k++) {
                int64_t a = g_vids[base + k];
                if (g_alive[a]) s_cand[nc++] = a;
            }
            if (!nc) continue;
            if (g_ps == 0) p = s_cand[randbelow(nc)];
            else if (g_ps == 1) p = s_cand[0];
            else p = s_cand[nc - 1];
        } else {
            if (g_ps == 0) p = g_vids[base + randbelow(ln)];
            else if (g_ps == 1) p = g_vids[base];
            else p = g_vids[base + ln - 1];
            if (!g_alive[p]) { failed++; continue; }
        }
        /* request payload: merge(view, {(me, 0)}), receiver-incremented. */
        if (g_push) {
            s_rqi[0] = i; s_rqh[0] = 1;
            for (k = 0; k < ln; k++) {
                s_rqi[k + 1] = g_vids[base + k];
                s_rqh[k + 1] = g_vhops[base + k] + 1;
            }
            nrq = ln + 1;
        }
        if (g_pull) {
            /* passive thread: reply snapshot precedes the merge. */
            int64_t prow = g_rowof[p], pbase = prow * g_c;
            int64_t pln = g_vlen[prow];
            s_rpi[0] = p; s_rph[0] = 1;
            for (k = 0; k < pln; k++) {
                s_rpi[k + 1] = g_vids[pbase + k];
                s_rph[k + 1] = g_vhops[pbase + k] + 1;
            }
            merge_into(p, s_rqi, s_rqh, nrq);
            /* active thread, second half: merge the pulled view. */
            merge_into(i, s_rpi, s_rph, pln + 1);
        } else {
            merge_into(p, s_rqi, s_rqh, nrq);
        }
        completed++;
    }

    out[0] = completed;
    out[1] = failed;
    for (k = 0; k < MT_N; k++) rstate[k] = (int64_t)g_mt[k];
    rstate[MT_N] = g_mti;
}
"""

_CFLAGS = ("-O2", "-ffp-contract=off", "-fPIC", "-shared")
"""Compile flags; part of the library cache key because they are
semantically load-bearing: ``-ffp-contract=off`` stops compilers that
contract ``a*b + c`` into fma by default (aarch64) from skipping the
intermediate rounding CPython's float arithmetic performs -- the
event-path latency expressions must round identically or a delay can
land on the other side of an integer-tick boundary and silently break
the byte-identity contract."""

_I64P = ctypes.POINTER(ctypes.c_int64)
_U8P = ctypes.POINTER(ctypes.c_ubyte)


class Accelerator:
    """ctypes handle to the compiled cycle core."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        lib.fc_setup.argtypes = [
            _I64P, _I64P, _I64P, _I64P, _U8P,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int, ctypes.c_int, ctypes.c_int,
            ctypes.c_int, ctypes.c_int, ctypes.c_int, ctypes.c_int,
        ]
        lib.fc_setup.restype = None
        lib.fc_run_cycle.argtypes = [
            _I64P, ctypes.c_int64, _I64P, _I64P,
        ]
        lib.fc_run_cycle.restype = None
        lib.fc_bootstrap.argtypes = [
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, _I64P,
        ]
        lib.fc_bootstrap.restype = None
        lib.fc_load_state.argtypes = [_I64P]
        lib.fc_load_state.restype = None
        lib.fc_store_state.argtypes = [_I64P]
        lib.fc_store_state.restype = None
        lib.fc_random.argtypes = []
        lib.fc_random.restype = ctypes.c_double
        lib.fc_getrandbits.argtypes = [ctypes.c_int]
        lib.fc_getrandbits.restype = ctypes.c_uint32
        lib.fc_event_setup.argtypes = [_I64P, _I64P, _I64P, _I64P, _I64P]
        lib.fc_event_setup.restype = None
        lib.fc_event_begin.argtypes = [
            ctypes.c_int64, ctypes.c_int64, _I64P,
        ]
        lib.fc_event_begin.restype = None
        lib.fc_event_deliver.argtypes = [
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, _I64P,
        ]
        lib.fc_event_deliver.restype = None
        lib.fc_heap_push.argtypes = [
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64P, _I64P, _I64P, _I64P,
        ]
        lib.fc_heap_push.restype = None
        lib.fc_event_run.argtypes = [
            ctypes.c_int64, ctypes.c_int64,            # end, boundary
            _I64P, _I64P, _I64P,                       # heap tick/seq/data
            _I64P, ctypes.c_int64,                     # heap_len, heap_cap
            _I64P, _I64P,                              # freelist, free_len
            _I64P, ctypes.c_int64,                     # pool_fresh, pool_cap
            _I64P, _I64P,                              # seq_io, now_io
            ctypes.c_int64, ctypes.c_double,           # loss_code, loss_p
            ctypes.c_int64, ctypes.c_int64,            # lat_code, const_delay
            ctypes.c_double, ctypes.c_double,          # lat_a, lat_b
            ctypes.c_double, ctypes.c_int64,           # tick_scale, period
            _I64P, _I64P,                              # counters, top_tick
        ]
        lib.fc_event_run.restype = ctypes.c_int64
        lib.fs_request_phase.argtypes = [
            ctypes.c_uint64, ctypes.c_uint64,          # phase seed, round
            ctypes.c_int64, ctypes.c_int64,            # shard, nshards
            ctypes.c_int64, _I64P,                     # n_ids, outbox
        ]
        lib.fs_request_phase.restype = ctypes.c_int64
        lib.fs_deliver.argtypes = [
            ctypes.c_uint64, ctypes.c_uint64,          # phase seed, round
            ctypes.c_int64,                            # is_request
            ctypes.c_int64, ctypes.c_int64,            # shard, nshards
            _I64P, _I64P, ctypes.c_int64,              # box addrs/counts/n
            ctypes.c_int64, _I64P,                     # do_reply, reply_box
            _I64P,                                     # out
        ]
        lib.fs_deliver.restype = None
        self.setup = lib.fc_setup
        self.run_cycle = lib.fc_run_cycle
        self.bootstrap = lib.fc_bootstrap
        self.load_state = lib.fc_load_state
        self.store_state = lib.fc_store_state
        self.rand_double = lib.fc_random
        self.rand_bits = lib.fc_getrandbits
        self.event_setup = lib.fc_event_setup
        self.event_begin = lib.fc_event_begin
        self.event_deliver = lib.fc_event_deliver
        self.heap_push = lib.fc_heap_push
        self.event_run = lib.fc_event_run
        self.shard_request = lib.fs_request_phase
        self.shard_deliver = lib.fs_deliver

    @staticmethod
    def pointer(buffer_address: int) -> "ctypes.POINTER(ctypes.c_int64)":
        """An ``int64*`` for an ``array('q')`` buffer address."""
        return ctypes.cast(buffer_address, _I64P)

    @staticmethod
    def byte_pointer(buffer_address: int) -> "ctypes.POINTER(ctypes.c_ubyte)":
        """An ``unsigned char*`` for a ``bytearray`` buffer address."""
        return ctypes.cast(buffer_address, _U8P)


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> str:
    """A private, per-user cache directory for the compiled library.

    Never a world-writable shared location: loading a ``.so`` from a
    predictable path in ``/tmp`` would let another local user pre-plant
    code.  The directory is created ``0700`` and verified to be owned by
    the current user and not group/world-writable; on any doubt a fresh
    ``mkdtemp`` (private by construction) is used instead.
    """
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    path = os.path.join(base, "repro-fastcore")
    try:
        os.makedirs(path, mode=0o700, exist_ok=True)
        info = os.stat(path)
        owner_ok = not hasattr(os, "getuid") or info.st_uid == os.getuid()
        if not owner_ok or info.st_mode & 0o022:
            raise OSError("untrusted cache directory")
        return path
    except OSError:
        return tempfile.mkdtemp(prefix="repro-fastcore-")


def _cache_path() -> str:
    # Hash source AND flags: a flags-only change must not reuse a stale
    # library compiled under different floating-point semantics.
    digest = hashlib.sha256(
        (_SOURCE + repr(_CFLAGS)).encode()
    ).hexdigest()[:16]
    tag = f"repro_fastcore_{digest}_py{sys.version_info[0]}{sys.version_info[1]}"
    return os.path.join(_cache_dir(), f"{tag}.so")


def _build() -> Optional[str]:
    compiler = _find_compiler()
    if compiler is None:
        return None
    target = _cache_path()
    if os.path.exists(target):
        return target
    fd, c_path = tempfile.mkstemp(suffix=".c")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(_SOURCE)
        so_tmp = f"{target}.{os.getpid()}.tmp"
        result = subprocess.run(
            [compiler, *_CFLAGS, "-o", so_tmp, c_path, "-lm"],
            capture_output=True,
        )
        if result.returncode != 0:
            return None
        os.replace(so_tmp, target)  # atomic against concurrent builders
        return target
    except OSError:
        return None
    finally:
        try:
            os.unlink(c_path)
        except OSError:
            pass


_cached: Optional[Accelerator] = None
_attempted = False
_private_count = 0


def _load_private() -> Optional[Accelerator]:
    """A fresh accelerator instance with its *own* C globals.

    ``dlopen`` deduplicates by file identity, so loading the cached
    library twice would hand back the same globals.  Copying the ``.so``
    to a unique path first yields an independent instance; the copy is
    unlinked immediately after loading (the mapping stays valid), so
    nothing litters the cache directory.  Each private instance carries
    its own MT19937 state, engine context and scratch buffers -- two
    engines bound to two private instances can therefore run their C hot
    loops *concurrently* from different threads: ctypes releases the GIL
    for the duration of every call.
    """
    global _private_count
    path = _build()
    if path is None:
        return None
    _private_count += 1
    clone = f"{path}.private.{os.getpid()}.{_private_count}"
    try:
        shutil.copy(path, clone)
        try:
            return Accelerator(ctypes.CDLL(clone))
        finally:
            try:
                os.unlink(clone)
            except OSError:
                pass
    except OSError:
        return None


def load_accelerator(private: bool = False) -> Optional[Accelerator]:
    """The process-wide accelerator, or ``None`` when unavailable.

    Compilation is attempted at most once per process; failures (no
    compiler, sandboxed tmp, ...) silently disable acceleration.

    ``private=True`` returns a *new* instance whose C state is not
    shared with the process-wide one (or with any other private
    instance) -- see :func:`_load_private`; callers own its lifetime.
    """
    global _cached, _attempted
    if os.environ.get(DISABLE_ENV_VAR):
        return None
    if private:
        try:
            return _load_private()
        except OSError:
            return None
    if _attempted:
        return _cached
    _attempted = True
    try:
        path = _build()
        if path is not None:
            _cached = Accelerator(ctypes.CDLL(path))
    except OSError:
        _cached = None
    return _cached

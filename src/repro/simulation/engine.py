"""Cycle-driven simulation engine (the paper's experimental model).

Semantics, matching the PeerSim-style setup the paper's numbers come from:

- Time advances in *cycles*.  In each cycle every live node executes the
  active thread of Figure 1 exactly once, in a fresh uniform random
  permutation of the nodes.
- An exchange completes synchronously within the initiator's turn: the
  request is delivered, the passive side replies (for pull/pushpull), and
  the initiator merges the reply, all before the next node's turn.
- A message to an address with no live node is silently lost -- the paper
  models no failure detector; dead links disappear only through the view
  dynamics themselves (this is exactly what the self-healing experiment,
  Figure 7, measures).

The engine is deterministic given a seed: a single :class:`random.Random`
instance drives node policies, the per-cycle permutation and any churn.
"""

from __future__ import annotations

from repro.simulation.base import BaseEngine, NodeFactory

__all__ = ["CycleEngine", "NodeFactory"]


class CycleEngine(BaseEngine):
    """Cycle-driven executor for a population of gossip nodes.

    See :class:`~repro.simulation.base.BaseEngine` for the constructor and
    population-management API.

    Example
    -------
    >>> from repro import CycleEngine, newscast
    >>> from repro.simulation.scenarios import random_bootstrap
    >>> engine = CycleEngine(newscast(view_size=10), seed=1)
    >>> random_bootstrap(engine, n_nodes=100)
    >>> engine.run(cycles=20)
    >>> engine.cycle
    20
    """

    shuffle_each_cycle: bool = True
    """When ``True`` (the default, and the paper's model) nodes initiate in
    a fresh random permutation each cycle.  Setting this to ``False`` fixes
    the insertion order; the ordering ablation benchmark uses this."""

    def run_cycle(self) -> None:
        """Execute one full cycle: every live node initiates once."""
        self._notify_before_cycle()
        order = list(self._nodes)
        if self.shuffle_each_cycle:
            self.rng.shuffle(order)
        for address in order:
            node = self._nodes.get(address)
            if node is None:
                continue  # crashed by an observer mid-cycle
            exchange = node.begin_exchange()
            if exchange is None:
                continue
            peer = self._nodes.get(exchange.peer)
            if peer is None:
                # Message to a dead/unknown address: silently lost.
                self.failed_exchanges += 1
                continue
            if self.reachable is not None and not self.reachable(
                address, exchange.peer
            ):
                self.failed_exchanges += 1
                continue
            response = peer.handle_request(address, exchange.payload)
            if response is not None:
                node.handle_response(exchange.peer, response)
            self.completed_exchanges += 1
        self.cycle += 1
        self._notify_after_cycle()

    def run(self, cycles: int) -> None:
        """Execute ``cycles`` consecutive cycles."""
        for _ in range(cycles):
            self.run_cycle()

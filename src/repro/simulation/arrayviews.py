"""Flat-array protocol kernel: the view storage and exchange primitives
shared by every array-backed engine.

The paper's Figure 1 describes one gossip participant as a partial view
plus two threads.  :class:`FlatArrayEngine` implements that participant --
for an entire population at once -- as index arithmetic over preallocated
``array('q')`` buffers, so that both the synchronous cycle executor
(:class:`~repro.simulation.fast.FastCycleEngine`) and the asynchronous
event executor (:class:`~repro.simulation.fast_event.FastEventEngine`)
drive the *same* kernel and cannot drift apart.

Mapping back to Figure 1 of the paper
-------------------------------------

==============================  =================================================
Figure 1 step                   kernel primitive
==============================  =================================================
``view`` (the partial view)     one row of the flat buffers: ``_vids[row*c+k]``
                                holds the interned peer id of the ``k``-th
                                descriptor, ``_vhops`` its hop count,
                                ``_vlen[row]`` the fill level; rows are
                                compacted in increasing hop-count order,
                                exactly the invariant ``PartialView`` keeps
``selectPeer()``                policy dispatch over one row (``rand`` = one
                                ``_randbelow`` draw, ``head``/``tail`` = the
                                first/last compacted slot), restricted to live
                                ids when the engine is omniscient -- see
                                ``FastCycleEngine._run_cycle_python`` and
                                ``FastEventEngine`` for the two call sites
``increaseHopCount(view_p)``    receiver-side ``+1`` applied when a payload is
                                built (the increment is deterministic, so the
                                kernel pre-applies it: payload hop ``h`` is
                                stored as ``h + 1``)
``view.increaseAge()``          in-place increment of one row's ``_vhops``
                                slice at the start of the active thread (the
                                TOCS-2007 formalization of local aging; see
                                ``GossipNode.age_view``)
``merge(view_p, view)``         :meth:`FlatArrayEngine._merge_into`: duplicate
                                elimination keeping the lowest hop count with
                                received-first tie order, in index space
``selectView(...)``             the tail of :meth:`FlatArrayEngine._merge_into`:
                                healer/swapper pre-truncation followed by the
                                ``head``/``rand``/``tail`` truncation, drawing
                                from the engine RNG exactly as the reference
                                ``ViewSelection.select`` does
``init(contacts)``              :meth:`FlatArrayEngine.add_node` /
                                :meth:`FlatArrayEngine.bootstrap_random_views`
                                (the out-of-band bootstrap of paper Section 3)
==============================  =================================================

Storage model
-------------

Every address ever seen is *interned* to a small permanent integer id (a
crashed node that rejoins keeps its id, so stale descriptors in other
views correctly point at the rejoined node, exactly as address-keyed
dictionaries behave in the reference engines).  Per-id state lives in
parallel arrays -- ``_addr_of`` (inverse interning), ``_alive``
(liveness), ``_row_of`` (view row, ``-1`` when dead) -- and a free-list
recycles view rows under churn, so memory is bounded by the peak live
population, not by the total number of joins.

RNG discipline
--------------

Every primitive consumes the engine's ``random.Random`` in exactly the
order and quantity the object-per-node reference engines do (one
``_randbelow`` per ``rand`` peer selection, one ``sample`` per ``rand``
view truncation, and so on).  This is what makes the array engines
*byte-identical* to their reference counterparts for the same seed --
the differential suites pin it.  The optional C core
(:mod:`repro.simulation._fastcore`) upholds the same contract by
reimplementing CPython's MT19937 draw helpers bit for bit.
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.config import ProtocolConfig
from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import (
    ConfigurationError,
    NodeNotFoundError,
    ViewError,
)
from repro.core.policies import ViewSelection
from repro.core.view import merge
from repro.simulation._fastcore import Accelerator, load_accelerator
from repro.simulation.base import BaseEngine

__all__ = ["FlatArrayEngine", "FastNode", "FastViewProxy"]

_POLICY_CODE = {"rand": 0, "head": 1, "tail": 2}


class FastViewProxy:
    """A ``PartialView``-compatible window onto one node's view row.

    Reads materialize :class:`NodeDescriptor` objects on demand; writes go
    straight back into the engine's flat arrays.  Only the introspection /
    bootstrap paths use this class -- the exchange hot paths never do.
    """

    __slots__ = ("_engine", "_id")

    def __init__(self, engine: "FlatArrayEngine", node_id: int) -> None:
        self._engine = engine
        self._id = node_id

    @property
    def capacity(self) -> int:
        """The view capacity ``c`` (shared by all nodes of the engine)."""
        return self._engine.config.view_size

    def _bounds(self) -> "tuple":
        engine = self._engine
        row = engine._row_of[self._id]
        if row < 0:
            return 0, 0
        base = row * engine.config.view_size
        return base, base + engine._vlen[row]

    # -- read access ------------------------------------------------------

    def __len__(self) -> int:
        base, end = self._bounds()
        return end - base

    def __iter__(self) -> Iterator[NodeDescriptor]:
        engine = self._engine
        base, end = self._bounds()
        for k in range(base, end):
            yield NodeDescriptor(
                engine._addr_of[engine._vids[k]], engine._vhops[k]
            )

    def __contains__(self, address: Address) -> bool:
        peer = self._engine._id_of.get(address)
        if peer is None:
            return False
        base, end = self._bounds()
        return peer in self._engine._vids[base:end]

    def __repr__(self) -> str:
        return (
            f"FastViewProxy(capacity={self.capacity}, size={len(self)})"
        )

    @property
    def entries(self) -> List[NodeDescriptor]:
        """Fresh descriptors for the current entries, hop-count ordered."""
        return list(self)

    def addresses(self) -> List[Address]:
        """All addresses currently in the view, in hop-count order."""
        engine = self._engine
        base, end = self._bounds()
        addr_of = engine._addr_of
        return [addr_of[i] for i in engine._vids[base:end]]

    def descriptor_for(self, address: Address) -> Optional[NodeDescriptor]:
        """The descriptor stored for ``address``, or ``None``."""
        for descriptor in self:
            if descriptor.address == address:
                return descriptor
        return None

    def is_full(self) -> bool:
        """Whether the view holds ``capacity`` descriptors."""
        return len(self) >= self.capacity

    def head(self) -> Optional[NodeDescriptor]:
        """The descriptor with the lowest hop count, or ``None`` if empty."""
        base, end = self._bounds()
        if base == end:
            return None
        engine = self._engine
        return NodeDescriptor(
            engine._addr_of[engine._vids[base]], engine._vhops[base]
        )

    def tail(self) -> Optional[NodeDescriptor]:
        """The descriptor with the highest hop count, or ``None`` if empty."""
        base, end = self._bounds()
        if base == end:
            return None
        engine = self._engine
        return NodeDescriptor(
            engine._addr_of[engine._vids[end - 1]], engine._vhops[end - 1]
        )

    def random_entry(self, rng: random.Random) -> Optional[NodeDescriptor]:
        """A uniformly random descriptor, or ``None`` if empty.

        Consumes exactly one ``_randbelow`` draw, like
        ``random.Random.choice`` on the reference view's entry list.
        """
        base, end = self._bounds()
        if base == end:
            return None
        engine = self._engine
        k = base + rng.randrange(end - base)
        return NodeDescriptor(
            engine._addr_of[engine._vids[k]], engine._vhops[k]
        )

    # -- mutation ---------------------------------------------------------

    def replace(self, entries: Iterable[NodeDescriptor]) -> None:
        """Adopt ``entries`` as the new view content (bootstrap path).

        Same contract as :meth:`PartialView.replace`: deduplicate keeping
        the lowest hop count, order by hop count, reject overflow.
        """
        merged = merge(entries)
        if len(merged) > self.capacity:
            raise ViewError(
                f"{len(merged)} descriptors exceed view capacity "
                f"{self.capacity}"
            )
        engine = self._engine
        row = engine._row_of[self._id]
        if row < 0:
            raise NodeNotFoundError(engine._addr_of[self._id])
        base = row * engine.config.view_size
        vids = engine._vids
        vhops = engine._vhops
        intern = engine._intern
        for k, descriptor in enumerate(merged):
            entry_id = intern(descriptor.address)
            if not engine._alive[entry_id]:
                engine._maybe_dead_refs = True
            vids[base + k] = entry_id
            vhops[base + k] = descriptor.hop_count
        engine._vlen[row] = len(merged)

    def increase_hop_counts(self) -> None:
        """Increment every stored entry's hop count in place."""
        base, end = self._bounds()
        vhops = self._engine._vhops
        for k in range(base, end):
            vhops[k] += 1

    def remove(self, address: Address) -> bool:
        """Drop the descriptor for ``address``; return whether it existed."""
        engine = self._engine
        peer = engine._id_of.get(address)
        if peer is None:
            return False
        base, end = self._bounds()
        vids = engine._vids
        for k in range(base, end):
            if vids[k] == peer:
                row = engine._row_of[self._id]
                vids[k:end - 1] = vids[k + 1:end]
                engine._vhops[k:end - 1] = engine._vhops[k + 1:end]
                engine._vlen[row] -= 1
                return True
        return False

    def clear(self) -> None:
        """Remove every descriptor."""
        engine = self._engine
        row = engine._row_of[self._id]
        if row >= 0:
            engine._vlen[row] = 0


class FastNode:
    """A ``GossipNode``-shaped handle onto one live node of the engine.

    Supports everything the population-level consumers need --
    ``PeerSamplingService``, the bootstrap scenarios, the observers --
    without holding any per-node state of its own.
    """

    __slots__ = ("_engine", "address", "view")

    def __init__(self, engine: "FlatArrayEngine", node_id: int) -> None:
        self._engine = engine
        self.address = engine._addr_of[node_id]
        self.view = FastViewProxy(engine, node_id)

    @property
    def config(self) -> ProtocolConfig:
        """The protocol instance every node of the engine runs."""
        return self._engine.config

    @property
    def liveness(self):
        """The engine's membership test (see ``GossipNode.liveness``)."""
        if self._engine.omniscient_peer_selection:
            return self._engine.is_alive
        return None

    def sample_peer(self) -> Optional[Address]:
        """A uniform random address from the current view (``getPeer``)."""
        entry = self.view.random_entry(self._engine.rng)
        return None if entry is None else entry.address

    def __repr__(self) -> str:
        return (
            f"FastNode(address={self.address!r}, "
            f"protocol={self._engine.config.label}, "
            f"view_size={len(self.view)})"
        )


class FlatArrayEngine(BaseEngine):
    """Population storage and exchange primitives over flat arrays.

    Subclasses provide the execution model --
    :class:`~repro.simulation.fast.FastCycleEngine` runs the PeerSim-style
    synchronous cycle loop, :class:`~repro.simulation.fast_event.FastEventEngine`
    an asynchronous discrete-event loop -- while this base owns everything
    they share: interning, view rows, churn bookkeeping, bulk bootstrap,
    the merge/truncate pipeline and the optional C accelerator handle.

    Implements the full :class:`~repro.simulation.base.BaseEngine`
    population API (``add_node`` / ``remove_node`` / ``crash_random_nodes``
    / ``views`` / ``dead_link_count`` / observers / ``reachable``), so the
    scenario helpers, ``GraphSnapshot.from_engine`` and the experiment
    runners work unchanged.  Custom ``node_factory`` protocols are not
    supported -- extension protocols keep using the object-per-node
    engines.

    Parameters
    ----------
    accelerate:
        ``None`` (default): use the compiled C core when available,
        falling back to pure Python silently.  ``False``: never use the C
        core.  ``True``: require it (raises
        :class:`~repro.core.errors.ConfigurationError` when no C compiler
        is usable).  Both backends produce byte-identical results.
    accelerator:
        An explicit :class:`~repro.simulation._fastcore.Accelerator` to
        drive instead of the process-wide shared one -- in particular a
        *private* instance (``load_accelerator(private=True)``), whose C
        globals are not shared with any other engine, so two engines can
        run their C hot loops concurrently from different threads (the
        ctypes calls release the GIL).  Takes precedence over
        ``accelerate``.
    """

    shuffle_each_cycle: bool = True
    """Whether cycle-driven subclasses permute the activation order each
    cycle (see ``CycleEngine.shuffle_each_cycle``); event-driven
    subclasses ignore it (activation order emerges from the timers)."""

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        node_factory=None,
        omniscient_peer_selection: bool = True,
        accelerate: Optional[bool] = None,
        accelerator: Optional[Accelerator] = None,
    ) -> None:
        if node_factory is not None:
            raise ConfigurationError(
                f"{type(self).__name__} runs the built-in generic protocol "
                "only; use CycleEngine/EventEngine for custom node factories"
            )
        super().__init__(
            config=config,
            seed=seed,
            rng=rng,
            omniscient_peer_selection=omniscient_peer_selection,
        )
        assert self.config is not None
        if accelerator is not None:
            self._accel: Optional[Accelerator] = accelerator
        elif accelerate is False:
            self._accel = None
        else:
            self._accel = load_accelerator()
            if accelerate is True and self._accel is None:
                raise ConfigurationError(
                    "accelerate=True but no C accelerator is available "
                    "(no usable C compiler, or REPRO_NO_ACCEL is set)"
                )
        # id-indexed state (permanent: ids are never reused).
        self._addr_of: List[Address] = []
        self._id_of: Dict[Address, int] = {}
        self._alive = array("B")
        self._row_of = array("q")
        # live ids, in the reference engine's dict-insertion order.
        self._live: Dict[int, None] = {}
        # flat view storage: c slots per row, free-list recycling.
        self._vids = array("q")
        self._vhops = array("q")
        self._vlen = array("q")
        self._free_rows: List[int] = []
        self._zero_row = bytes(8 * self.config.view_size)
        # False until a crash/ghost contact makes dead view entries
        # possible; while False, the Python path skips liveness filtering
        # (the C path always filters -- same candidate set either way).
        self._maybe_dead_refs = False
        # Growing an array('q') may move its buffer; consumers that hand
        # raw pointers to the C core (the event engine) re-register when
        # this is set.  The cycle engine re-registers every cycle anyway.
        self._ptr_dirty = True

    @property
    def accelerated(self) -> bool:
        """Whether the compiled C core is in use."""
        return self._accel is not None

    # -- id / storage management ------------------------------------------

    def _intern(self, address: Address) -> int:
        """The permanent integer id for ``address`` (allocating one if new)."""
        node_id = self._id_of.get(address)
        if node_id is None:
            node_id = len(self._addr_of)
            self._id_of[address] = node_id
            self._addr_of.append(address)
            self._alive.append(0)
            self._row_of.append(-1)
            self._ptr_dirty = True
        return node_id

    def _allocate_row(self) -> int:
        if self._free_rows:
            return self._free_rows.pop()
        row = len(self._vlen)
        self._vlen.append(0)
        self._vids.frombytes(self._zero_row)
        self._vhops.frombytes(self._zero_row)
        self._ptr_dirty = True
        return row

    def _accel_setup(self, accel: Accelerator) -> None:
        """Register the engine's buffers and protocol with the C core.

        Must be re-issued whenever a buffer may have moved (any growth)
        or another engine used the core in between; the cycle engine
        simply calls it once per accelerated entry point.
        """
        config = self.config
        pointer = Accelerator.pointer
        accel.setup(
            pointer(self._vids.buffer_info()[0]),
            pointer(self._vhops.buffer_info()[0]),
            pointer(self._vlen.buffer_info()[0]),
            pointer(self._row_of.buffer_info()[0]),
            Accelerator.byte_pointer(self._alive.buffer_info()[0]),
            config.view_size,
            config.healer,
            config.swapper,
            int(config.keep_self_descriptors),
            int(config.push),
            int(config.pull),
            _POLICY_CODE[config.peer_selection.value],
            _POLICY_CODE[config.view_selection.value],
            int(self.omniscient_peer_selection),
            int(self.shuffle_each_cycle),
        )

    # -- population management --------------------------------------------

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, address: Address) -> bool:
        node_id = self._id_of.get(address)
        return node_id is not None and bool(self._alive[node_id])

    def addresses(self) -> List[Address]:
        """All live node addresses, in insertion order."""
        addr_of = self._addr_of
        return [addr_of[i] for i in self._live]

    def nodes(self) -> List[FastNode]:
        """Lightweight handles for all live nodes, in insertion order."""
        return [FastNode(self, i) for i in self._live]

    def node(self, address: Address) -> FastNode:
        """A handle for the live node at ``address`` (raises if absent)."""
        node_id = self._id_of.get(address)
        if node_id is None or not self._alive[node_id]:
            raise NodeNotFoundError(address)
        return FastNode(self, node_id)

    def is_alive(self, address: Address) -> bool:
        """Whether a live node exists at ``address``."""
        node_id = self._id_of.get(address)
        return node_id is not None and bool(self._alive[node_id])

    def add_node(
        self,
        address: Optional[Address] = None,
        contacts: Iterable[Address] = (),
    ) -> Address:
        """Create a live node, optionally seeding its view with contacts.

        Identical contract (and auto-address sequence) to
        :meth:`BaseEngine.add_node`: contacts enter with hop count 0, a
        node's own address is filtered out, the list is truncated to the
        view capacity before deduplication -- matching what
        ``PeerSamplingService.init`` does on the reference engine.
        """
        if address is None:
            while self._next_auto_address in self:
                self._next_auto_address += 1
            address = self._next_auto_address
            self._next_auto_address += 1
        if address in self:
            raise ConfigurationError(f"node {address!r} already exists")
        node_id = self._intern(address)
        self._alive[node_id] = 1
        row = self._allocate_row()
        self._row_of[node_id] = row
        self._vlen[row] = 0
        self._live[node_id] = None
        c = self.config.view_size
        base = row * c
        n = 0
        taken = 0  # duplicates consume capacity slots, like init's [:c]
        seen = set()
        for contact in contacts:
            if contact == address:
                continue
            if taken >= c:
                break
            taken += 1
            contact_id = self._intern(contact)
            if not self._alive[contact_id]:
                self._maybe_dead_refs = True
            if contact_id in seen:
                continue
            seen.add(contact_id)
            self._vids[base + n] = contact_id
            self._vhops[base + n] = 0
            n += 1
        self._vlen[row] = n
        self._on_node_added(address)
        return address

    def remove_node(self, address: Address) -> None:
        """Crash the node at ``address`` (other views keep its descriptors)."""
        node_id = self._id_of.get(address)
        if node_id is None or not self._alive[node_id]:
            raise NodeNotFoundError(address)
        self._kill(node_id)

    def _kill(self, node_id: int) -> None:
        self._alive[node_id] = 0
        self._free_rows.append(self._row_of[node_id])
        self._row_of[node_id] = -1
        del self._live[node_id]
        self._maybe_dead_refs = True

    def crash_random_nodes(self, count: int) -> List[Address]:
        """Crash ``count`` uniformly random nodes; return their addresses.

        Consumes the RNG exactly like the reference engine (one ``sample``
        over the insertion-ordered live address list).
        """
        if count > len(self._live):
            raise ConfigurationError(
                f"cannot crash {count} of {len(self._live)} nodes"
            )
        addr_of = self._addr_of
        victims = self.rng.sample([addr_of[i] for i in self._live], count)
        for victim in victims:
            self._kill(self._id_of[victim])
        return victims

    # -- bulk bootstrap ----------------------------------------------------

    def bootstrap_random_views(
        self, addresses: List[Address], view_fill: Optional[int] = None
    ) -> bool:
        """Fill every view with a random sample, entirely in index space.

        The flat-array fast path behind
        :func:`~repro.simulation.scenarios.random_bootstrap`: no
        ``NodeDescriptor`` objects, no per-entry merge -- and with the C
        core, no interpreted sampling loop at all.  Consumes the RNG
        *exactly* like the generic path (the same ``sample()`` draws in
        the same order), so overlays stay byte-identical across engines
        for the same seed; the differential suite pins this.

        Returns ``False`` -- leaving all state untouched -- when the
        engine is not a freshly auto-addressed population of exactly
        ``addresses`` (the only case worth specializing); the caller then
        falls back to the generic path.
        """
        n = len(addresses)
        if (
            len(self._live) != n
            or len(self._addr_of) != n
            or self._free_rows
            or self._addr_of != list(range(n))
            or addresses != self._addr_of
        ):
            return False
        c = self.config.view_size
        fill = c if view_fill is None else view_fill
        fill = min(fill, n - 1, c)
        if fill <= 0:
            return True  # single node / zero fill: every view stays empty
        rng = self.rng
        k = fill + 1
        if self._accel is not None and type(rng) is random.Random:
            self._bootstrap_c(self._accel, n, k, fill)
            return True
        vids = self._vids
        vhops = self._vhops
        vlen = self._vlen
        row_of = self._row_of
        sample = rng.sample
        zeros = array("q", bytes(8 * fill))
        for i in range(n):
            others = sample(addresses, k)
            row = row_of[i]
            base = row * c
            w = 0
            for peer in others:
                if peer != i:
                    if w == fill:
                        break
                    vids[base + w] = peer
                    w += 1
            vhops[base : base + fill] = zeros
            vlen[row] = w
        return True

    def _bootstrap_c(self, accel: Accelerator, n: int, k: int, fill: int) -> None:
        """Run ``fc_bootstrap`` (bit-exact ``sample()`` draws in C)."""
        rng = self.rng
        state_before = rng.getstate()
        state = array("q", state_before[1])
        self._accel_setup(accel)
        accel.bootstrap(n, k, fill, Accelerator.pointer(state.buffer_info()[0]))
        rng.setstate((state_before[0], tuple(state), state_before[2]))

    # -- introspection ----------------------------------------------------

    def views(self) -> Dict[Address, Sequence[NodeDescriptor]]:
        """A snapshot of every node's current view entries.

        Same key order (node insertion) and entry order (increasing hop
        count) as the reference engine's ``views()``.
        """
        c = self.config.view_size
        addr_of = self._addr_of
        vids = self._vids
        vhops = self._vhops
        row_of = self._row_of
        vlen = self._vlen
        result: Dict[Address, Sequence[NodeDescriptor]] = {}
        for node_id in self._live:
            row = row_of[node_id]
            base = row * c
            result[addr_of[node_id]] = [
                NodeDescriptor(addr_of[vids[k]], vhops[k])
                for k in range(base, base + vlen[row])
            ]
        return result

    def dead_link_count(self) -> int:
        """Total descriptors across all views pointing at dead addresses."""
        c = self.config.view_size
        alive = self._alive
        vids = self._vids
        row_of = self._row_of
        vlen = self._vlen
        count = 0
        for node_id in self._live:
            row = row_of[node_id]
            base = row * c
            for k in range(base, base + vlen[row]):
                if not alive[vids[k]]:
                    count += 1
        return count

    # -- the shared merge/truncate pipeline ---------------------------------

    def _merge_into(
        self, target: int, r_ids: List[int], r_hops: List[int], sample=None
    ) -> None:
        """``view <- selectView(merge(received, view))`` for one node.

        Replicates, in index space, the exact pipeline of
        ``GossipNode.handle_request`` / ``handle_response``: duplicate
        elimination keeping the lowest hop count with first-seen
        (received-first) tie order, a stable hop-count sort, the
        healer/swapper pre-truncation, and the head/rand/tail
        view-selection policy -- consuming the RNG exactly as the
        reference engine does.  ``r_hops`` arrive with the receiver-side
        ``increaseHopCount`` already applied; both input lists are fresh
        per exchange and are consumed destructively.

        ``sample`` optionally replaces the engine-RNG draw of the RAND
        truncation: a callable ``(m, c) -> list`` returning the chosen
        positions in sample order.  The sharded engine passes its keyed
        counter-based sampler here, so both execution families share this
        one merge implementation and cannot drift apart.

        The hot path leans on C-speed primitives: set intersection for
        duplicate detection (received and own views rarely overlap in
        more than a couple of addresses), and ``sorted(range(n), key=...)``
        whose range tie order reproduces the reference merge's stable
        first-seen ordering exactly.
        """
        config = self.config
        c = config.view_size
        vids = self._vids
        vhops = self._vhops
        row = self._row_of[target]
        base = row * c
        ln = self._vlen[row]
        own_ids = vids[base:base + ln]
        own_hops = vhops[base:base + ln]
        if not config.keep_self_descriptors:
            # The receiver's own address appears at most once in a payload
            # (sender self-descriptor + duplicate-free view) and never in
            # its own view; drop it like merge(..., exclude=me) does.
            if target in r_ids:
                k = r_ids.index(target)
                del r_ids[k]
                del r_hops[k]
        else:
            rset0 = set(r_ids)
            if len(rset0) != len(r_ids):
                # keep_self payloads can carry the sender's address twice
                # (fresh self-descriptor + stored copy).  Received hops
                # are ascending, so keeping the first occurrence keeps
                # the lowest hop count, as the reference merge does.
                seen = set()
                seen_add = seen.add
                dup_ids = r_ids
                dup_hops = r_hops
                r_ids = []
                r_hops = []
                for k, a in enumerate(dup_ids):
                    if a not in seen:
                        seen_add(a)
                        r_ids.append(a)
                        r_hops.append(dup_hops[k])
        swap_flags = None
        common = set(r_ids).intersection(own_ids)
        if common:
            # Shared addresses: keep the lowest hop count at the received
            # (first-seen) position; strictly fresher own copies make the
            # surviving entry own-origin for the swapper policy.  The
            # intersection of two partial views is almost always tiny, so
            # this is the only per-element interpreted loop on the path.
            if config.swapper:
                swap_flags = bytearray(len(r_ids))
            drop_idx = []
            for a in common:
                k = own_ids.index(a)
                drop_idx.append(k)
                h = own_hops[k]
                pos = r_ids.index(a)
                if h < r_hops[pos]:
                    r_hops[pos] = h
                    if swap_flags is not None:
                        swap_flags[pos] = 1
            drop_idx.sort(reverse=True)
            for k in drop_idx:
                del own_ids[k]
                del own_hops[k]
        n_r = len(r_ids)
        cids = r_ids
        cids += own_ids  # destructive extend: the payload is owned here
        chops = r_hops
        chops += own_hops
        n = len(cids)
        # stable hop-count sort; range order is the first-seen tie order.
        order = sorted(range(n), key=chops.__getitem__)
        m = n
        # healer/swapper pre-truncation (no-ops when H = S = 0).
        if m > c and (config.healer or config.swapper):
            surplus = m - c
            healer = config.healer
            if healer:
                drop = healer if healer < surplus else surplus
                del order[m - drop:]
                m -= drop
                surplus -= drop
            if surplus > 0 and config.swapper:
                to_drop = config.swapper if config.swapper < surplus else surplus
                kept = []
                for q in order:
                    if to_drop and (
                        q >= n_r
                        or (swap_flags is not None and swap_flags[q])
                    ):
                        to_drop -= 1
                    else:
                        kept.append(q)
                order = kept
                m = len(order)
        # view-selection truncation.
        if m > c:
            view_sel = config.view_selection
            if view_sel is ViewSelection.HEAD:
                del order[c:]
            elif view_sel is ViewSelection.TAIL:
                del order[:m - c]
            else:
                # RAND: same draws as sample(list, c); the stable re-sort
                # by hop count keeps the sample order on ties, like
                # select_rand's chosen.sort(key=hop_count).
                if sample is None:
                    picked = self.rng.sample(range(m), c)
                else:
                    picked = sample(m, c)
                picked.sort(key=lambda q: chops[order[q]])
                order = [order[q] for q in picked]
            m = c
        vids[base:base + m] = array("q", map(cids.__getitem__, order))
        vhops[base:base + m] = array("q", map(chops.__getitem__, order))
        self._vlen[row] = m

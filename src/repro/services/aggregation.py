"""Push-pull gossip averaging over the peer sampling service.

Aggregation is the paper's second motivating application (Section 1,
citing Jelasity & Montresor's push-pull averaging).  Every node holds a
number; each round, in a shuffled order, every node draws a peer through
its sampling service and both set their value to the pair's average.
The population variance decays exponentially -- IF the sampling is good
enough, which is exactly the property the peer sampling service is
evaluated on.

Under churn a draw may return a departed node's address (a stale
descriptor).  :class:`PushPullAveraging` skips such draws and counts
them in :attr:`AveragingResult.stale_samples` instead of crashing with a
``KeyError`` -- staleness becomes part of the measurement.
"""

from __future__ import annotations

import dataclasses
import random
import statistics
from typing import Dict, List, Mapping, Optional

from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError
from repro.services.base import SamplingService, participant_list

__all__ = ["AveragingResult", "PushPullAveraging"]


@dataclasses.dataclass(frozen=True)
class AveragingResult:
    """Per-round variance tracking for one averaging run."""

    n_nodes: int
    rounds: int
    true_mean: float
    """The exact mean of the initial values -- the quantity every node
    is converging towards (averaging conserves the sum)."""
    variances: List[float]
    """Population variance after each round; ``variances[0]`` is the
    initial variance, ``variances[r]`` the variance after round ``r``."""
    stale_samples: int
    """Draws that landed outside the value table (dead links under
    churn); each skipped the exchange instead of raising."""

    @property
    def reduction_factor(self) -> Optional[float]:
        """Geometric per-round variance shrink factor over the run.

        ``None`` when it cannot be computed (zero initial or final
        variance); values well below 1 mean exponential convergence.
        """
        if not self.rounds:
            return None
        first, last = self.variances[0], self.variances[-1]
        if first <= 0 or last <= 0:
            return None
        return (last / first) ** (1.0 / self.rounds)


class PushPullAveraging:
    """Gossip aggregation consuming only ``get_peer()`` draws.

    Parameters
    ----------
    services:
        ``address -> sampling service`` mapping (see
        :func:`~repro.services.base.sampling_services`).
    values:
        Initial value per participant.  ``None`` draws uniform values
        from ``[0, 100)`` using ``rng`` (every participant must have a
        value otherwise).
    rounds:
        Averaging rounds to execute.
    rng:
        Source of the per-round shuffle (and of the default initial
        values).  Pass the engine's RNG for runs that must be
        byte-identical across `cycle`/`fast`; defaults to a fresh
        ``Random(0)``.
    """

    def __init__(
        self,
        services: Mapping[Address, SamplingService],
        *,
        values: Optional[Mapping[Address, float]] = None,
        rounds: int = 15,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not services:
            raise ConfigurationError("averaging needs at least one service")
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        self.services = dict(services)
        self.rounds = rounds
        self.rng = rng if rng is not None else random.Random(0)
        if values is None:
            self.values: Dict[Address, float] = {
                address: self.rng.uniform(0, 100) for address in self.services
            }
        else:
            missing = [a for a in self.services if a not in values]
            if missing:
                raise ConfigurationError(
                    f"values missing for {len(missing)} participant(s), "
                    f"e.g. {missing[0]!r}"
                )
            self.values = {a: float(values[a]) for a in self.services}

    def run(self) -> AveragingResult:
        """Execute the configured rounds; return the variance series."""
        values = self.values
        addresses = participant_list(self.services)
        true_mean = statistics.fmean(values.values())
        variances = [statistics.pvariance(values.values())]
        stale = 0
        for _ in range(self.rounds):
            order = list(addresses)
            self.rng.shuffle(order)
            for address in order:
                peer = self.services[address].get_peer()
                if peer is None:
                    continue
                if peer not in values:
                    # Stale descriptor (departed node still referenced
                    # by a view): skip-and-count, never KeyError.
                    stale += 1
                    continue
                mean = (values[address] + values[peer]) / 2
                values[address] = mean
                values[peer] = mean
            variances.append(statistics.pvariance(values.values()))
        return AveragingResult(
            n_nodes=len(addresses),
            rounds=self.rounds,
            true_mean=true_mean,
            variances=variances,
            stale_samples=stale,
        )

"""Gossip-merged frequent-items sketches (space-saving / Misra-Gries).

Cafaro et al. (PAPERS.md) mine frequent items in fully distributed
streams by gossiping *mergeable* counter sketches over an unstructured
overlay -- another service that needs nothing but ``getPeer()``.
:class:`FrequentItemsSketch` is the classic space-saving summary (at
most ``capacity`` monitored items; every estimate carries an error
bound), and :class:`GossipFrequentItems` push-pull merges one sketch per
node until the population agrees on the globally heaviest item.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError
from repro.services.base import SamplingService, participant_list

__all__ = ["FrequentItemsResult", "FrequentItemsSketch", "GossipFrequentItems"]


class FrequentItemsSketch:
    """A space-saving summary of an item stream.

    Tracks at most ``capacity`` items; adding a new item beyond capacity
    evicts the current minimum and inherits its count as the new item's
    error bound.  Estimated counts over-approximate true counts by at
    most the per-item ``error``; any item with true count above
    ``N / capacity`` (N = stream length) is guaranteed monitored.
    """

    __slots__ = ("capacity", "_counts", "_errors")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"sketch capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._counts: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._counts)

    def add(self, item: str, count: int = 1) -> None:
        """Record ``count`` occurrences of ``item``."""
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if item in self._counts:
            self._counts[item] += count
            return
        if len(self._counts) < self.capacity:
            self._counts[item] = count
            self._errors[item] = 0
            return
        # Space-saving eviction: replace the minimum (ties broken by the
        # item key for determinism), inheriting its count as error.
        victim = min(self._counts, key=lambda k: (self._counts[k], str(k)))
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[item] = floor + count
        self._errors[item] = floor

    def extend(self, items: Iterable[str]) -> None:
        """Record a whole stream."""
        for item in items:
            self.add(item)

    def estimate(self, item: str) -> Tuple[int, int]:
        """``(estimated_count, error_bound)`` for ``item`` (0, 0 if
        unmonitored)."""
        return self._counts.get(item, 0), self._errors.get(item, 0)

    def top(self, m: int = 1) -> List[Tuple[str, int]]:
        """The ``m`` heaviest monitored items as ``(item, estimate)``,
        heaviest first; ties broken by item key for determinism."""
        ranked = sorted(
            self._counts.items(), key=lambda kv: (-kv[1], str(kv[0]))
        )
        return ranked[:m]

    @classmethod
    def merged(
        cls, first: "FrequentItemsSketch", second: "FrequentItemsSketch"
    ) -> "FrequentItemsSketch":
        """The space-saving merge of two sketches (Cafaro et al.).

        Counts (and error bounds) add item-wise; an item present in only
        one sketch inherits the other's minimum count as extra error,
        and the combined summary is cut back to the larger capacity.
        """
        capacity = max(first.capacity, second.capacity)
        result = cls(capacity)

        def floor(sketch: "FrequentItemsSketch") -> int:
            if len(sketch._counts) < sketch.capacity:
                return 0
            return min(sketch._counts.values())

        first_floor, second_floor = floor(first), floor(second)
        combined: Dict[str, Tuple[int, int]] = {}
        for item, count in first._counts.items():
            error = first._errors[item]
            if item in second._counts:
                count += second._counts[item]
                error += second._errors[item]
            else:
                count += second_floor
                error += second_floor
            combined[item] = (count, error)
        for item, count in second._counts.items():
            if item in first._counts:
                continue
            combined[item] = (
                count + first_floor,
                second._errors[item] + first_floor,
            )
        ranked = sorted(
            combined.items(), key=lambda kv: (-kv[1][0], str(kv[0]))
        )
        for item, (count, error) in ranked[:capacity]:
            result._counts[item] = count
            result._errors[item] = error
        return result


@dataclasses.dataclass(frozen=True)
class FrequentItemsResult:
    """Convergence accounting for one gossip-merge run."""

    n_nodes: int
    rounds: int
    capacity: int
    global_top: str
    """The true heaviest item over the union of all streams."""
    agreement: List[float]
    """Fraction of nodes whose sketch ranks ``global_top`` first, after
    each round (``agreement[0]`` = from local streams alone)."""
    stale_samples: int

    @property
    def converged(self) -> bool:
        """Whether every node agreed on the heaviest item at the end."""
        return bool(self.agreement) and self.agreement[-1] == 1.0


class GossipFrequentItems:
    """Push-pull sketch merging over ``get_peer()`` draws.

    Each participant summarizes its local stream into a
    :class:`FrequentItemsSketch`; every round each node (in shuffled
    order) draws a peer and both replace their sketches with the merge.
    Stale draws are skipped and counted.

    Parameters
    ----------
    services:
        ``address -> sampling service`` mapping.
    streams:
        Local item stream per participant (missing participants start
        with an empty sketch).
    capacity:
        Monitored items per sketch.
    rounds:
        Merge rounds to execute.
    rng:
        Shuffles the per-round node order; pass the engine's RNG for
        byte-identical runs across ``cycle``/``fast``.
    """

    def __init__(
        self,
        services: Mapping[Address, SamplingService],
        streams: Mapping[Address, Iterable[str]],
        *,
        capacity: int = 8,
        rounds: int = 10,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not services:
            raise ConfigurationError("sketch gossip needs >= 1 service")
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        self.services = dict(services)
        self.capacity = capacity
        self.rounds = rounds
        self.rng = rng if rng is not None else random.Random(0)
        self.sketches: Dict[Address, FrequentItemsSketch] = {}
        totals: Dict[str, int] = {}
        for address in self.services:
            sketch = FrequentItemsSketch(capacity)
            for item in streams.get(address, ()):
                sketch.add(item)
                totals[item] = totals.get(item, 0) + 1
            self.sketches[address] = sketch
        if not totals:
            raise ConfigurationError("all streams are empty")
        self.global_top = min(
            totals, key=lambda item: (-totals[item], str(item))
        )

    def _agreement(self) -> float:
        agreeing = sum(
            1
            for sketch in self.sketches.values()
            if sketch.top(1) and sketch.top(1)[0][0] == self.global_top
        )
        return agreeing / len(self.sketches)

    def run(self) -> FrequentItemsResult:
        """Execute the merge rounds; return the agreement trajectory."""
        addresses = participant_list(self.services)
        agreement = [self._agreement()]
        stale = 0
        for _ in range(self.rounds):
            order = list(addresses)
            self.rng.shuffle(order)
            for address in order:
                peer = self.services[address].get_peer()
                if peer is None:
                    continue
                if peer not in self.sketches:
                    stale += 1
                    continue
                merged = FrequentItemsSketch.merged(
                    self.sketches[address], self.sketches[peer]
                )
                self.sketches[address] = merged
                self.sketches[peer] = merged
            agreement.append(self._agreement())
        return FrequentItemsResult(
            n_nodes=len(addresses),
            rounds=self.rounds,
            capacity=self.capacity,
            global_top=self.global_top,
            agreement=agreement,
            stale_samples=stale,
        )

"""TTL random-walk search over the peer sampling service.

Unstructured-overlay lookup in the style of Ferretti's gossip search
(PAPERS.md): a query starts at an origin node and performs a random walk
-- each hop drawn from the *current* node's sampling service -- until it
reaches a node storing the wanted key or the TTL expires.  With
near-uniform sampling and the key replicated on a fraction ``p`` of the
nodes, the hit probability after ``t`` hops approaches
``1 - (1 - p)**t`` -- which is why sampling quality shows up directly in
the hit rate.

Stale draws (addresses outside the participant set, i.e. departed nodes
under churn) consume a TTL step without moving the walk and are counted
in :attr:`SearchResult.stale_samples` -- a walk through a churny overlay
pays for its dead links.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Mapping, Optional, Sequence, Set

from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError
from repro.services.base import SamplingService, participant_list

__all__ = ["RandomWalkSearch", "SearchResult", "scatter_key"]


def scatter_key(
    addresses: Sequence[Address],
    copies: int,
    rng: random.Random,
) -> Set[Address]:
    """Choose ``copies`` distinct holders for a key, uniformly."""
    if not 1 <= copies <= len(addresses):
        raise ConfigurationError(
            f"copies must be in [1, {len(addresses)}], got {copies}"
        )
    return set(rng.sample(list(addresses), copies))


@dataclasses.dataclass(frozen=True)
class SearchResult:
    """Hit-rate accounting for a batch of random-walk lookups."""

    n_nodes: int
    holders: int
    """Nodes storing the key."""
    ttl: int
    queries: int
    hops: List[Optional[int]]
    """Per query: hops until the key was found, ``None`` on a miss."""
    stale_samples: int
    """Draws that landed outside the participant set; each consumed one
    TTL step without advancing the walk."""

    @property
    def hits(self) -> int:
        return sum(1 for h in self.hops if h is not None)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    @property
    def mean_hops(self) -> Optional[float]:
        """Mean hops over the successful queries (``None`` if none)."""
        found = [h for h in self.hops if h is not None]
        if not found:
            return None
        return sum(found) / len(found)


class RandomWalkSearch:
    """TTL-bounded random-walk lookup consuming only ``get_peer()``.

    Parameters
    ----------
    services:
        ``address -> sampling service`` mapping (see
        :func:`~repro.services.base.sampling_services`).
    holders:
        The addresses storing the key (e.g. from :func:`scatter_key`).
        Holders outside the participant set are ignored.
    ttl:
        Maximum steps per walk.
    rng:
        Draws the query origins in :meth:`run`.  Pass the engine's RNG
        for byte-identical runs across ``cycle``/``fast``; defaults to
        a fresh ``Random(0)``.
    """

    def __init__(
        self,
        services: Mapping[Address, SamplingService],
        holders: Sequence[Address],
        *,
        ttl: int = 64,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not services:
            raise ConfigurationError("search needs at least one service")
        if ttl < 1:
            raise ConfigurationError(f"ttl must be >= 1, got {ttl}")
        self.services = dict(services)
        self.holders = {h for h in holders if h in self.services}
        if not self.holders:
            raise ConfigurationError(
                "no holder is a participant -- the key is unfindable"
            )
        self.ttl = ttl
        self.rng = rng if rng is not None else random.Random(0)
        self._stale = 0

    def search(self, origin: Address) -> Optional[int]:
        """One walk from ``origin``; hops to a holder, or ``None``.

        A walk starting *at* a holder returns 0 hops.
        """
        if origin not in self.services:
            raise ConfigurationError(
                f"origin {origin!r} is not a participant"
            )
        if origin in self.holders:
            return 0
        current = origin
        for step in range(1, self.ttl + 1):
            peer = self.services[current].get_peer()
            if peer is None or peer not in self.services:
                if peer is not None:
                    self._stale += 1
                # Stale or empty draw: the step is spent, the walk stays.
                continue
            current = peer
            if current in self.holders:
                return step
        return None

    def run(self, queries: int) -> SearchResult:
        """Execute ``queries`` walks from uniform random origins."""
        if queries < 1:
            raise ConfigurationError(
                f"queries must be >= 1, got {queries}"
            )
        addresses = participant_list(self.services)
        self._stale = 0
        hops = [
            self.search(self.rng.choice(addresses)) for _ in range(queries)
        ]
        return SearchResult(
            n_nodes=len(addresses),
            holders=len(self.holders),
            ttl=self.ttl,
            queries=queries,
            hops=hops,
            stale_samples=self._stale,
        )

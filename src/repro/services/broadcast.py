"""Anti-entropy rumor spreading over the peer sampling service.

Information dissemination is the motivating application of gossip
protocols (paper Section 1; D'Angelo & Ferretti study exactly this layer
over unstructured overlays).  :class:`AntiEntropyBroadcast` runs the
classic synchronous rounds:

- ``push``: every informed node sends the rumor to ``fanout`` peers
  drawn from its sampling service;
- ``pushpull``: every node (informed or not) contacts ``fanout`` peers
  and the rumor spreads in either direction of each contact.

The result records the informed count after every round
(rounds-to-coverage accounting), whether full coverage was actually
reached within ``max_rounds`` -- partial coverage is reported as such,
never rounded up to success -- and how many draws landed on stale
descriptors (addresses outside the participant set, e.g. departed nodes
still referenced by views under churn).
"""

from __future__ import annotations

import dataclasses
from typing import List, Mapping, Optional, Set

from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError
from repro.services.base import SamplingService, participant_list

__all__ = ["AntiEntropyBroadcast", "BroadcastResult"]

MODES = ("push", "pushpull")


@dataclasses.dataclass(frozen=True)
class BroadcastResult:
    """Rounds-to-coverage accounting for one rumor-spreading run."""

    origin: Address
    n_nodes: int
    mode: str
    fanout: int
    coverage: List[int]
    """Informed-node count after each round; ``coverage[0]`` is 1 (the
    origin), ``coverage[r]`` the count after round ``r``."""
    covered: bool
    """Whether every participant was informed within ``max_rounds``.
    ``False`` means the run stopped at the cap -- check
    :attr:`coverage_fraction` for how far it got."""
    stale_samples: int
    """Draws that landed outside the participant set (dead links)."""

    @property
    def rounds(self) -> int:
        """Rounds executed (= rounds to coverage when :attr:`covered`)."""
        return len(self.coverage) - 1

    @property
    def informed(self) -> int:
        """Final informed-node count."""
        return self.coverage[-1]

    @property
    def coverage_fraction(self) -> float:
        """Final informed fraction of the participant set."""
        return self.informed / self.n_nodes if self.n_nodes else 0.0

    def summary(self) -> str:
        """One honest line: coverage in N rounds, or how far it got."""
        if self.covered:
            return f"full coverage in {self.rounds} rounds"
        return (
            f"NO full coverage after {self.rounds} rounds "
            f"({self.informed}/{self.n_nodes} informed)"
        )


class AntiEntropyBroadcast:
    """Push / push-pull rumor spreading over ``get_peer()`` draws.

    Parameters
    ----------
    services:
        ``address -> sampling service`` mapping (see
        :func:`~repro.services.base.sampling_services`).  The mapping's
        key set is the participant universe: draws outside it count as
        stale samples and do not spread the rumor.
    fanout:
        Peers contacted per informed node (``push``) or per node
        (``pushpull``) each round.
    mode:
        ``"push"`` or ``"pushpull"``.
    origin:
        The initially informed node; defaults to the first mapping key.
    max_rounds:
        Hard cap on rounds; hitting it yields ``covered=False``.
    """

    def __init__(
        self,
        services: Mapping[Address, SamplingService],
        *,
        fanout: int = 2,
        mode: str = "push",
        origin: Optional[Address] = None,
        max_rounds: int = 100,
    ) -> None:
        if not services:
            raise ConfigurationError("broadcast needs at least one service")
        if mode not in MODES:
            raise ConfigurationError(
                f"unknown broadcast mode {mode!r}; choose from {MODES}"
            )
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        if max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {max_rounds}"
            )
        self.services = dict(services)
        self.fanout = fanout
        self.mode = mode
        self.max_rounds = max_rounds
        if origin is None:
            origin = next(iter(self.services))
        elif origin not in self.services:
            raise ConfigurationError(
                f"origin {origin!r} is not a participant"
            )
        self.origin = origin

    def run(self) -> BroadcastResult:
        """Execute rounds until full coverage or ``max_rounds``."""
        addresses = participant_list(self.services)
        population = set(addresses)
        informed: Set[Address] = {self.origin}
        coverage = [1]
        stale = 0
        while len(informed) < len(addresses) and len(coverage) <= self.max_rounds:
            # Round-start snapshot: freshly informed nodes start pushing
            # only next round (synchronous round semantics).  Iteration
            # follows the deterministic participant order, never set
            # order -- hash-order iteration would make runs depend on
            # interning accidents rather than only on the views and RNG.
            newly: Set[Address] = set()
            for address in addresses:
                active = address in informed
                if self.mode == "push" and not active:
                    continue
                for _ in range(self.fanout):
                    peer = self.services[address].get_peer()
                    if peer is None:
                        continue
                    if peer not in population:
                        stale += 1
                        continue
                    if self.mode == "pushpull":
                        # The rumor crosses the contact in whichever
                        # direction has it (round-start state).
                        if active and peer not in informed:
                            newly.add(peer)
                        elif not active and peer in informed:
                            newly.add(address)
                    elif peer not in informed:
                        newly.add(peer)
            informed |= newly
            coverage.append(len(informed))
        return BroadcastResult(
            origin=self.origin,
            n_nodes=len(addresses),
            mode=self.mode,
            fanout=self.fanout,
            coverage=coverage,
            covered=len(informed) == len(addresses),
            stale_samples=stale,
        )

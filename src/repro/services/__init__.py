"""Gossip services layered on the two-method peer sampling API.

The paper's thesis is that peer sampling is *middleware*: a substrate
that dissemination, aggregation and search services build on (Section
1).  This package makes the claim executable.  Every service consumes
nothing but ``get_peer()`` draws from an ``address -> sampling service``
mapping (:func:`sampling_services` builds one from any engine, a
:class:`~repro.net.cluster.LocalCluster` of live daemons, or the
:class:`~repro.baselines.oracle.OracleGroup` baseline), so the same
service code runs on a 10^4-10^5-node flat-array simulation and over
real UDP sockets:

- :class:`AntiEntropyBroadcast` -- push / push-pull rumor spreading with
  fanout and honest rounds-to-coverage accounting;
- :class:`PushPullAveraging` -- gossip aggregation with per-round
  variance tracking and a stale-sample counter;
- :class:`RandomWalkSearch` -- TTL random-walk lookup with hit-rate
  accounting (:func:`scatter_key` places the replicas);
- :class:`GossipFrequentItems` / :class:`FrequentItemsSketch` --
  space-saving heavy-hitter sketches merged by gossip.

The matching workload measurements (``broadcast-coverage``,
``aggregation-variance``, ``search-hit-rate``) attach to any
:class:`~repro.workloads.plan.ExperimentPlan` cell, and the
``services`` experiment artefact re-derives the paper's punchline:
near-uniform sampling is good enough for all of them, even under churn.
"""

from repro.services.aggregation import AveragingResult, PushPullAveraging
from repro.services.base import (
    SamplingService,
    participant_list,
    sampling_services,
)
from repro.services.broadcast import AntiEntropyBroadcast, BroadcastResult
from repro.services.search import RandomWalkSearch, SearchResult, scatter_key
from repro.services.sketch import (
    FrequentItemsResult,
    FrequentItemsSketch,
    GossipFrequentItems,
)

__all__ = [
    "AntiEntropyBroadcast",
    "AveragingResult",
    "BroadcastResult",
    "FrequentItemsResult",
    "FrequentItemsSketch",
    "GossipFrequentItems",
    "PushPullAveraging",
    "RandomWalkSearch",
    "SamplingService",
    "SearchResult",
    "participant_list",
    "sampling_services",
    "scatter_key",
]

"""Shared plumbing for gossip services built on the two-method API.

Every service in this package consumes nothing but a mapping
``address -> sampling service`` where each value answers ``get_peer()``
-- the paper's contract.  :func:`sampling_services` builds that mapping
from any peer-sampling substrate the repository offers:

- a simulation engine (``cycle``/``fast``/``event``/``fast-event``/
  ``live``): one :class:`~repro.core.service.PeerSamplingService` per
  live address;
- a :class:`~repro.net.cluster.LocalCluster`: each daemon's own
  thread-safe service (shares the daemon's view lock);
- an :class:`~repro.baselines.oracle.OracleGroup`: the ideal uniform
  sampler, for baselines.

Because the services never reach past ``get_peer()``, the same service
code runs unchanged on a 10^5-node flat-array simulation and on live
UDP daemons.

Under churn a sampled address may point at a departed node (a stale
descriptor -- the paper's dead links).  The services in this package
never crash on one: a draw outside the known participant set is skipped
and counted in the result's ``stale_samples``, making staleness a
measured quantity instead of a KeyError.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence

from repro.core.descriptor import Address

__all__ = ["SamplingService", "participant_list", "sampling_services"]


class SamplingService(Protocol):
    """The structural contract every service consumes: ``getPeer()``."""

    def get_peer(self):  # pragma: no cover - protocol declaration
        ...


def sampling_services(source) -> Dict[Address, SamplingService]:
    """Build the ``address -> sampling service`` mapping for ``source``.

    ``source`` may be any engine of the registry (``service(address)``
    per live address), a :class:`~repro.net.cluster.LocalCluster`
    (``daemon.service`` per daemon -- the handles used by the daemons'
    own gossip loops, so application draws serialize on the same lock),
    or an :class:`~repro.baselines.oracle.OracleGroup` (``members()``
    plus ``service(address)``).  The mapping's iteration order is the
    substrate's address order, which is what makes service runs
    deterministic for a fixed seed.
    """
    daemons = getattr(source, "daemons", None)
    if isinstance(daemons, dict):
        return {
            address: daemon.service for address, daemon in daemons.items()
        }
    if hasattr(source, "addresses"):
        addresses: Sequence[Address] = source.addresses()
    elif hasattr(source, "members"):
        addresses = source.members()
    else:
        raise TypeError(
            f"cannot derive sampling services from {type(source).__name__}: "
            "expected an engine, a LocalCluster or an OracleGroup"
        )
    return {address: source.service(address) for address in addresses}


def participant_list(services) -> List[Address]:
    """The service mapping's addresses, in deterministic mapping order."""
    return list(services)

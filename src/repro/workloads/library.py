"""Built-in named scenarios: the paper's workloads plus ROADMAP follow-ups.

Every entry is a factory ``(scale) -> ScenarioSpec`` so that cycle counts
and churn magnitudes stay proportional to the selected
:class:`~repro.experiments.common.Scale` preset, exactly like the paper's
parameters scale down in the artefact modules.  Resolve one by name with
:func:`named_scenario`; plans (:mod:`repro.workloads.plan`) accept these
names wherever an inline :class:`~repro.workloads.spec.ScenarioSpec` is
accepted.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.errors import ConfigurationError
from repro.workloads.spec import (
    CatastrophicFailure,
    ChurnTrace,
    ContinuousChurn,
    Grow,
    Heal,
    Partition,
    ScenarioSpec,
)

__all__ = ["SCENARIOS", "named_scenario", "scenario_descriptions"]


def _random_convergence(scale) -> ScenarioSpec:
    return ScenarioSpec(
        name="random-convergence",
        bootstrap="random",
        description=(
            "the paper's main scenario: random initial views, run to "
            "convergence (Sections 5.3-7)"
        ),
    )


def _lattice_convergence(scale) -> ScenarioSpec:
    return ScenarioSpec(
        name="lattice-convergence",
        bootstrap="lattice",
        description=(
            "structured ring-lattice start, run to convergence "
            "(Section 5.2 / Figure 3)"
        ),
    )


def _growing_overlay(scale) -> ScenarioSpec:
    return ScenarioSpec(
        name="growing-overlay",
        bootstrap="empty",
        events=(Grow(),),
        description=(
            "grow from one node, joiners know only the oldest node "
            "(Section 5.1 / Table 1 / Figure 2)"
        ),
    )


def _catastrophic_failure(scale) -> ScenarioSpec:
    healing = max(30, scale.cycles // 2)
    return ScenarioSpec(
        name="catastrophic-failure",
        bootstrap="random",
        cycles=scale.cycles + healing,
        events=(CatastrophicFailure(at_cycle=scale.cycles, fraction=0.5),),
        description=(
            "converge, crash 50% of all nodes, keep running -- the "
            "self-healing experiment (Section 7 / Figure 7)"
        ),
    )


def _continuous_churn(scale) -> ScenarioSpec:
    rate = max(1, scale.n_nodes // 100)
    return ScenarioSpec(
        name="continuous-churn",
        bootstrap="random",
        events=(
            ContinuousChurn(joins_per_cycle=rate, leaves_per_cycle=rate),
        ),
        description=(
            "steady-state batch churn: 1% of the population joins and "
            "leaves every cycle"
        ),
    )


def _churn_trace(scale) -> ScenarioSpec:
    return ScenarioSpec(
        name="churn-trace",
        bootstrap="random",
        events=(
            ChurnTrace(
                rate=max(1, scale.n_nodes // 100),
                session_length=scale.cycles / 10.0,
                trace_seed=0,
            ),
        ),
        description=(
            "event-driven churn trace: Poisson arrivals, exponential "
            "session lengths, sub-cycle execution on the event engines"
        ),
    )


def _partition_heal(scale) -> ScenarioSpec:
    third = max(1, scale.cycles // 3)
    return ScenarioSpec(
        name="partition-heal",
        bootstrap="random",
        events=(
            Partition(at_cycle=third, n_groups=2),
            Heal(at_cycle=2 * third),
        ),
        description=(
            "temporary network split that later heals -- the Section 8 "
            "discussion scenario"
        ),
    )


SCENARIOS: Dict[str, Callable[..., ScenarioSpec]] = {
    "random-convergence": _random_convergence,
    "lattice-convergence": _lattice_convergence,
    "growing-overlay": _growing_overlay,
    "catastrophic-failure": _catastrophic_failure,
    "continuous-churn": _continuous_churn,
    "churn-trace": _churn_trace,
    "partition-heal": _partition_heal,
}
"""Named scenario factories, keyed by the name plans reference."""


def named_scenario(name: str, scale) -> ScenarioSpec:
    """Resolve a built-in scenario name at a given scale.

    Raises :class:`~repro.core.errors.ConfigurationError` for unknown
    names, listing the registry -- same eager style as the engine
    resolution.
    """
    factory = SCENARIOS.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    return factory(scale)


def scenario_descriptions() -> Dict[str, str]:
    """``name -> one-line description`` for every built-in scenario.

    Factories are evaluated at the ``quick`` scale just to read the
    description text.
    """
    from repro.experiments.common import SCALES

    scale = SCALES["quick"]
    return {
        name: factory(scale).description or ""
        for name, factory in SCENARIOS.items()
    }

"""Declarative scenario specifications: one workload spec, every engine.

A :class:`ScenarioSpec` is a serializable description of *what happens to
the overlay* while a protocol runs -- how the population is bootstrapped
and a typed schedule of membership/network events -- independent of which
executor runs it.  The runtime (:mod:`repro.workloads.runtime`) compiles
a spec into the right observers and run-loop hooks for any engine of the
registry (``cycle``, ``fast``, ``event``, ``fast-event``, ``live``), so
the same JSON document drives the object-per-node reference engine, the
flat-array engines and the wire-level live engine.

The vocabulary covers the paper's scenarios and the ROADMAP follow-ups:

==================== ==========================================================
event kind           meaning
==================== ==========================================================
``grow``             the growing overlay of Section 5.1: joiners arrive in
                     batches at cycle starts, knowing only the oldest node
``catastrophic-      crash a fraction of all nodes at the start of one cycle
failure``            (Section 7 / Figure 7)
``continuous-churn`` steady join/leave batches at every cycle start
``churn-trace``      an event-driven churn trace: Poisson arrivals whose
                     sessions have exponentially distributed lengths; on the
                     event engines each join/leave executes at its exact
                     simulated time (sub-cycle), on the cycle engines it is
                     quantized to the enclosing cycle start
``partition``        split the network into groups (messages across groups
                     are dropped) until the matching ``heal``
``heal``             end the most recent open ``partition``
==================== ==========================================================

All parameters are validated eagerly at construction (and therefore at
:meth:`ScenarioSpec.from_json` time), mirroring the experiment runner's
eager engine validation: a typo'd event kind or an out-of-range fraction
raises :class:`~repro.core.errors.ConfigurationError` before any
simulation starts.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type

from repro.core.errors import ConfigurationError

__all__ = [
    "ADVERSARY_KINDS",
    "BOOTSTRAP_KINDS",
    "EVENT_KINDS",
    "AdversarySpec",
    "CatastrophicFailure",
    "ChurnTrace",
    "ContinuousChurn",
    "Grow",
    "Heal",
    "Partition",
    "ScenarioSpec",
    "ScenarioEvent",
]

BOOTSTRAP_KINDS = ("random", "lattice", "empty")
"""How the initial population is created before the schedule runs:
``random`` and ``lattice`` are the paper's Section 5.2/5.3 initial
topologies (``n_nodes`` views filled immediately); ``empty`` starts with
no nodes at all -- the ``grow`` event then builds the overlay (Section
5.1)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _check_int(value: Any, name: str, minimum: int = 0) -> None:
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{name} must be an integer, got {value!r}",
    )
    _require(value >= minimum, f"{name} must be >= {minimum}, got {value}")


def _check_number(
    value: Any,
    name: str,
    minimum: float = 0.0,
    maximum: Optional[float] = None,
    strict_min: bool = False,
) -> None:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{name} must be a number, got {value!r}",
    )
    _require(
        math.isfinite(value), f"{name} must be finite, got {value!r}"
    )
    if strict_min:
        _require(value > minimum, f"{name} must be > {minimum}, got {value}")
    else:
        _require(value >= minimum, f"{name} must be >= {minimum}, got {value}")
    if maximum is not None:
        _require(
            value <= maximum, f"{name} must be <= {maximum}, got {value}"
        )


@dataclasses.dataclass(frozen=True)
class ScenarioEvent:
    """Base class of schedule events; every subclass declares ``kind``."""

    kind = ""  # overridden per subclass

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping, ``kind`` first, ``None`` fields omitted."""
        payload: Dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value is not None:
                payload[field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioEvent":
        """Build the event named by ``payload['kind']``, eagerly validated."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"event must be a mapping, got {payload!r}"
            )
        kind = payload.get("kind")
        event_cls = EVENT_KINDS.get(kind)  # type: ignore[arg-type]
        if event_cls is None:
            raise ConfigurationError(
                f"unknown event kind {kind!r}; choose from "
                f"{sorted(EVENT_KINDS)}"
            )
        names = {field.name for field in dataclasses.fields(event_cls)}
        unknown = sorted(set(payload) - names - {"kind"})
        if unknown:
            raise ConfigurationError(
                f"unknown field(s) {unknown} for event kind {kind!r}; "
                f"valid fields: {sorted(names)}"
            )
        kwargs = {key: payload[key] for key in payload if key != "kind"}
        return event_cls(**kwargs)


@dataclasses.dataclass(frozen=True)
class Grow(ScenarioEvent):
    """Grow the overlay from a single node (paper Section 5.1).

    ``target`` and ``per_cycle`` default (``None``) to the run's node
    count and the scale's growth rate, so the same spec reproduces the
    paper's proportions at any scale.
    """

    kind = "grow"

    target: Optional[int] = None
    per_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.target is not None:
            _check_int(self.target, "grow.target", minimum=1)
        if self.per_cycle is not None:
            _check_int(self.per_cycle, "grow.per_cycle", minimum=1)


@dataclasses.dataclass(frozen=True)
class CatastrophicFailure(ScenarioEvent):
    """Crash ``fraction`` of all nodes at the start of cycle ``at_cycle``."""

    kind = "catastrophic-failure"

    at_cycle: int = 0
    fraction: float = 0.5

    def __post_init__(self) -> None:
        _check_int(self.at_cycle, "catastrophic-failure.at_cycle")
        _check_number(
            self.fraction, "catastrophic-failure.fraction", 0.0, 1.0
        )


@dataclasses.dataclass(frozen=True)
class ContinuousChurn(ScenarioEvent):
    """Steady batch churn: joins/leaves at the start of every cycle."""

    kind = "continuous-churn"

    joins_per_cycle: int = 0
    leaves_per_cycle: int = 0

    def __post_init__(self) -> None:
        _check_int(self.joins_per_cycle, "continuous-churn.joins_per_cycle")
        _check_int(self.leaves_per_cycle, "continuous-churn.leaves_per_cycle")
        _require(
            self.joins_per_cycle > 0 or self.leaves_per_cycle > 0,
            "continuous-churn needs joins_per_cycle > 0 or "
            "leaves_per_cycle > 0",
        )


@dataclasses.dataclass(frozen=True)
class ChurnTrace(ScenarioEvent):
    """An event-driven churn trace with exponential session lengths.

    Joiners arrive as a Poisson process of ``rate`` arrivals per gossip
    period between ``start_cycle`` and ``end_cycle`` (``None`` = the end
    of the run); each joiner bootstraps from one uniformly random live
    node and stays for an ``Exponential(session_length)`` duration, after
    which it crashes (if the run is still going).  The arrival/departure
    times are generated from the dedicated ``trace_seed`` -- the same
    trace is *replayed* identically on every engine and for every run
    seed, like a recorded availability trace would be.

    On the event-driven engines every join and leave executes at its
    exact simulated time (the runtime slices ``run_time`` around the
    trace); the cycle-driven engines quantize each event to the start of
    its enclosing cycle.
    """

    kind = "churn-trace"

    rate: float = 1.0
    session_length: float = 10.0
    start_cycle: int = 0
    end_cycle: Optional[int] = None
    trace_seed: int = 0

    def __post_init__(self) -> None:
        _check_number(self.rate, "churn-trace.rate", 0.0)
        _check_number(
            self.session_length,
            "churn-trace.session_length",
            0.0,
            strict_min=True,
        )
        _check_int(self.start_cycle, "churn-trace.start_cycle")
        if self.end_cycle is not None:
            _check_int(self.end_cycle, "churn-trace.end_cycle")
            _require(
                self.end_cycle > self.start_cycle,
                f"churn-trace.end_cycle ({self.end_cycle}) must be > "
                f"start_cycle ({self.start_cycle})",
            )
        _check_int(self.trace_seed, "churn-trace.trace_seed")


@dataclasses.dataclass(frozen=True)
class Partition(ScenarioEvent):
    """Split the network into ``n_groups`` at the start of ``at_cycle``.

    Must be closed by a later :class:`Heal` event; a spec whose partition
    never heals is rejected eagerly (run the heal at the final cycle to
    express "partitioned to the end").
    """

    kind = "partition"

    at_cycle: int = 0
    n_groups: int = 2

    def __post_init__(self) -> None:
        _check_int(self.at_cycle, "partition.at_cycle")
        _check_int(self.n_groups, "partition.n_groups", minimum=2)


@dataclasses.dataclass(frozen=True)
class Heal(ScenarioEvent):
    """Heal the most recent open partition at the start of ``at_cycle``."""

    kind = "heal"

    at_cycle: int = 0

    def __post_init__(self) -> None:
        _check_int(self.at_cycle, "heal.at_cycle")


EVENT_KINDS: Dict[str, Type[ScenarioEvent]] = {
    cls.kind: cls
    for cls in (
        Grow,
        CatastrophicFailure,
        ContinuousChurn,
        ChurnTrace,
        Partition,
        Heal,
    )
}
"""Registry of schedule event kinds, keyed by their wire name."""


ADVERSARY_KINDS = ("hub", "eclipse", "tamper", "drop")
"""Byzantine behaviors :mod:`repro.adversary` can inject: ``hub``
(over-advertise the attacker with fresh timestamps in every exchange),
``eclipse`` (answer a victim set's pulls with attacker-only
descriptors), ``tamper`` (zero the timestamps of honestly exchanged
buffers) and ``drop`` (silently swallow exchanged buffers)."""


_ADVERSARY_FIELDS = (
    "kind",
    "fraction",
    "attackers",
    "victims",
    "start_cycle",
    "stop_cycle",
    "placement_seed",
)


@dataclasses.dataclass(frozen=True)
class AdversarySpec:
    """The ``adversary`` block of a scenario: who misbehaves, how, when.

    Attackers are either a seeded ``fraction`` of the bootstrap
    population (placed deterministically from ``placement_seed``,
    independent of engine and run seed) or an explicit tuple of
    bootstrap indices -- the two are mutually exclusive.  ``victims``
    (bootstrap indices, eclipse only) name the nodes whose pulls are
    answered with attacker-only descriptors.  The attack is active for
    cycles ``start_cycle <= cycle < stop_cycle`` (``stop_cycle=None`` =
    to the end of the run); outside the window attackers behave
    honestly, so a demo can show the healer flushing the poison out.

    A ``fraction`` of 0.0 with no explicit attackers is a valid no-op:
    the run is byte-identical to the same spec without an adversary
    block, which keeps ``f = 0`` sweep cells honest baselines.
    """

    kind: str = "hub"
    fraction: float = 0.0
    attackers: Tuple[int, ...] = ()
    victims: Tuple[int, ...] = ()
    start_cycle: int = 0
    stop_cycle: Optional[int] = None
    placement_seed: int = 0

    def __post_init__(self) -> None:
        _require(
            self.kind in ADVERSARY_KINDS,
            f"unknown adversary kind {self.kind!r}; choose from "
            f"{list(ADVERSARY_KINDS)}",
        )
        _check_number(self.fraction, "adversary.fraction", 0.0, 1.0)
        object.__setattr__(self, "attackers", tuple(self.attackers))
        object.__setattr__(self, "victims", tuple(self.victims))
        for index in self.attackers:
            _check_int(index, "adversary.attackers entries")
        for index in self.victims:
            _check_int(index, "adversary.victims entries")
        _require(
            len(set(self.attackers)) == len(self.attackers),
            f"adversary.attackers contains duplicates: {self.attackers}",
        )
        _require(
            len(set(self.victims)) == len(self.victims),
            f"adversary.victims contains duplicates: {self.victims}",
        )
        _require(
            not (self.fraction > 0.0 and self.attackers),
            "adversary.fraction and adversary.attackers are mutually "
            "exclusive; give a seeded fraction or explicit indices, "
            "not both",
        )
        overlap = sorted(set(self.attackers) & set(self.victims))
        _require(
            not overlap,
            f"adversary.victims overlap the attackers at indices {overlap}",
        )
        if self.kind == "eclipse":
            _require(
                bool(self.victims),
                "an 'eclipse' adversary needs a non-empty victims tuple",
            )
        else:
            _require(
                not self.victims,
                f"adversary.victims only applies to kind 'eclipse', "
                f"got kind {self.kind!r}",
            )
        _check_int(self.start_cycle, "adversary.start_cycle")
        if self.stop_cycle is not None:
            _check_int(self.stop_cycle, "adversary.stop_cycle")
            _require(
                self.stop_cycle > self.start_cycle,
                f"adversary.stop_cycle ({self.stop_cycle}) must be > "
                f"start_cycle ({self.start_cycle})",
            )
        _check_int(self.placement_seed, "adversary.placement_seed")

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (``None``/empty fields omitted)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.fraction:
            payload["fraction"] = self.fraction
        if self.attackers:
            payload["attackers"] = list(self.attackers)
        if self.victims:
            payload["victims"] = list(self.victims)
        if self.start_cycle:
            payload["start_cycle"] = self.start_cycle
        if self.stop_cycle is not None:
            payload["stop_cycle"] = self.stop_cycle
        if self.placement_seed:
            payload["placement_seed"] = self.placement_seed
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AdversarySpec":
        """Parse a mapping; unknown keys raise eagerly."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"adversary block must be a mapping, got {payload!r}"
            )
        unknown = sorted(set(payload) - set(_ADVERSARY_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown adversary field(s) {unknown}; valid fields: "
                f"{sorted(_ADVERSARY_FIELDS)}"
            )
        kwargs: Dict[str, Any] = dict(payload)
        for key in ("attackers", "victims"):
            if key in kwargs:
                if not isinstance(kwargs[key], (list, tuple)):
                    raise ConfigurationError(
                        f"adversary.{key} must be a list, got "
                        f"{kwargs[key]!r}"
                    )
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    def replace(self, **changes: Any) -> "AdversarySpec":
        """A copy of this block with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


_SPEC_FIELDS = (
    "name",
    "bootstrap",
    "events",
    "cycles",
    "view_fill",
    "latency",
    "loss",
    "adversary",
    "description",
)


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A declarative, serializable workload description.

    Parameters
    ----------
    name:
        Identifier used in reports and the scenario registry.
    bootstrap:
        One of :data:`BOOTSTRAP_KINDS`.
    events:
        The typed schedule (any :class:`ScenarioEvent` subclasses).
    cycles:
        Run length in gossip cycles; ``None`` defers to the scale preset.
    view_fill:
        Bootstrap view fill level; ``None`` = the view capacity.
    latency / loss:
        Constant per-message latency (in gossip periods) and Bernoulli
        loss probability.  Only the event-driven engines model message
        timing, so compiling a spec that sets these for a cycle-family
        engine is a :class:`~repro.core.errors.ConfigurationError` --
        the same eager rule the experiment runner applies to its
        ``--latency`` / ``--loss`` flags.
    adversary:
        Optional :class:`AdversarySpec` Byzantine block: a deterministic
        subset of the bootstrap population misbehaves (hub poisoning,
        eclipse, tampering, dropping) for a window of cycles.  Placement
        indices are defined over the bootstrap population, so an
        ``empty`` bootstrap cannot carry an adversary block.  Supported
        by the cycle-family engines (``cycle``, ``fast``, ``live``).
    description:
        Optional human-readable summary (shown by ``list-scenarios``).
    """

    name: str = "scenario"
    bootstrap: str = "random"
    events: Tuple[ScenarioEvent, ...] = ()
    cycles: Optional[int] = None
    view_fill: Optional[int] = None
    latency: Optional[float] = None
    loss: Optional[float] = None
    adversary: Optional[AdversarySpec] = None
    description: Optional[str] = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name),
            f"scenario name must be a non-empty string, got {self.name!r}",
        )
        _require(
            self.bootstrap in BOOTSTRAP_KINDS,
            f"unknown bootstrap kind {self.bootstrap!r}; choose from "
            f"{list(BOOTSTRAP_KINDS)}",
        )
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            _require(
                isinstance(event, ScenarioEvent),
                f"events must be ScenarioEvent instances, got {event!r}",
            )
        if self.cycles is not None:
            _check_int(self.cycles, "cycles", minimum=1)
        if self.view_fill is not None:
            _check_int(self.view_fill, "view_fill", minimum=1)
        if self.latency is not None:
            _check_number(self.latency, "latency", 0.0)
        if self.loss is not None:
            _check_number(self.loss, "loss", 0.0, 1.0)
        if self.adversary is not None:
            _require(
                isinstance(self.adversary, AdversarySpec),
                f"adversary must be an AdversarySpec, got {self.adversary!r}",
            )
            _require(
                self.bootstrap != "empty",
                "an adversary block places attackers over the bootstrap "
                "population; an 'empty' bootstrap has none",
            )
        self._check_partitions()
        if self.bootstrap == "empty":
            _require(
                any(isinstance(e, Grow) for e in self.events),
                "an 'empty' bootstrap needs a 'grow' event to ever "
                "populate the overlay",
            )

    def _check_partitions(self) -> None:
        """Partitions must nest properly: every ``partition`` is closed by
        exactly one later ``heal``, and splits never overlap."""
        open_at: Optional[int] = None
        timeline = sorted(
            (e for e in self.events if isinstance(e, (Partition, Heal))),
            key=lambda e: (e.at_cycle, isinstance(e, Partition)),
        )
        for event in timeline:
            if isinstance(event, Partition):
                _require(
                    open_at is None,
                    f"partition at cycle {event.at_cycle} overlaps the "
                    f"unhealed partition from cycle {open_at}",
                )
                open_at = event.at_cycle
            else:
                _require(
                    open_at is not None,
                    f"heal at cycle {event.at_cycle} has no preceding "
                    "partition",
                )
                _require(
                    event.at_cycle > open_at,  # type: ignore[operator]
                    f"heal at cycle {event.at_cycle} must come after its "
                    f"partition (cycle {open_at})",
                )
                open_at = None
        _require(
            open_at is None,
            f"partition at cycle {open_at} is never healed; add a 'heal' "
            "event (at the final cycle to stay split to the end)",
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (``None`` fields omitted, events inline)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "bootstrap": self.bootstrap,
            "events": [event.to_dict() for event in self.events],
        }
        for key in ("cycles", "view_fill", "latency", "loss", "description"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.adversary is not None:
            payload["adversary"] = self.adversary.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Parse a mapping; unknown keys and event kinds raise eagerly."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"scenario spec must be a mapping, got {payload!r}"
            )
        unknown = sorted(set(payload) - set(_SPEC_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown scenario field(s) {unknown}; valid fields: "
                f"{sorted(_SPEC_FIELDS)}"
            )
        raw_events = payload.get("events", [])
        if not isinstance(raw_events, (list, tuple)):
            raise ConfigurationError(
                f"'events' must be a list, got {raw_events!r}"
            )
        events = tuple(ScenarioEvent.from_dict(e) for e in raw_events)
        kwargs = {
            key: payload[key]
            for key in _SPEC_FIELDS
            if key not in ("events", "adversary") and key in payload
        }
        adversary = None
        if payload.get("adversary") is not None:
            adversary = AdversarySpec.from_dict(payload["adversary"])
        return cls(events=events, adversary=adversary, **kwargs)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "ScenarioSpec":
        """Parse a JSON document produced by :meth:`to_json`."""
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"scenario spec is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(payload)

    # -- convenience -------------------------------------------------------

    def events_of(self, kind: Type[ScenarioEvent]) -> List[ScenarioEvent]:
        """All schedule events of one kind, in declaration order."""
        return [event for event in self.events if isinstance(event, kind)]

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """A copy of this spec with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

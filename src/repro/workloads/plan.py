"""Experiment plans: ``protocols x scenario x scales x engines x seeds``.

An :class:`ExperimentPlan` is the serializable cross-product description
of a whole study: which protocol instances (paper tuple labels, H/S
suffixes included), which scenario (inline
:class:`~repro.workloads.spec.ScenarioSpec` or a built-in name from
:mod:`repro.workloads.library`), at which scale presets, on which
engines, over which seeds -- plus the measurements to record per run.
:func:`run_plan` executes the cross-product through
:func:`~repro.workloads.runtime.prepare_run` and returns one
:class:`RunRecord` per cell, each carrying a canonical
:func:`~repro.workloads.runtime.views_digest` of the final overlay (what
the cross-engine identity tests compare) and the extracted measurement
series.

Like the specs, plans validate eagerly: unknown engines, scales,
measurements or unparsable protocol labels raise
:class:`~repro.core.errors.ConfigurationError` at construction (and
therefore at :meth:`ExperimentPlan.from_json` time), never mid-study.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Tuple,
    Union,
)

from repro.core.config import ProtocolConfig
from repro.core.errors import ConfigurationError
from repro.workloads.library import SCENARIOS, named_scenario
from repro.workloads.runtime import ScenarioRuntime, prepare_run
from repro.workloads.spec import ScenarioSpec

__all__ = [
    "MEASUREMENTS",
    "ExperimentPlan",
    "PlanResult",
    "RunRecord",
    "run_plan",
]


# -- measurements ------------------------------------------------------------


class Measurement(NamedTuple):
    """One recordable quantity: attach observers, then extract a result."""

    description: str
    setup: Callable[[ScenarioRuntime, Any], Callable[[], Any]]
    """``setup(runtime, scale)`` runs after the bootstrap and returns the
    zero-argument extractor called once the run completes."""


def _measure_metrics(runtime: ScenarioRuntime, scale) -> Callable[[], Any]:
    from repro.simulation.trace import MetricsRecorder

    recorder = MetricsRecorder(
        every=scale.metrics_every,
        clustering_sample=scale.clustering_sample,
        path_sources=scale.path_sources,
        record_initial=False,
    )
    runtime.add_observer(recorder)
    return recorder.as_dict


def _measure_dead_links(runtime: ScenarioRuntime, scale) -> Callable[[], Any]:
    from repro.simulation.trace import DeadLinkCensus

    census = DeadLinkCensus(every=1)
    runtime.add_observer(census)
    return lambda: {
        "cycles": list(census.cycles),
        "dead_links": list(census.dead_links),
    }


def _measure_view_sizes(runtime: ScenarioRuntime, scale) -> Callable[[], Any]:
    from repro.simulation.trace import ViewSizeRecorder

    recorder = ViewSizeRecorder(every=scale.metrics_every)
    runtime.add_observer(recorder)
    return lambda: {
        "cycles": list(recorder.cycles),
        "min": list(recorder.min_size),
        "mean": list(recorder.mean_size),
        "max": list(recorder.max_size),
    }


def _measure_degree_trace(runtime: ScenarioRuntime, scale) -> Callable[[], Any]:
    from repro.simulation.trace import DegreeTracer

    tracer = DegreeTracer(
        runtime.bootstrap_addresses[: scale.traced_nodes]
    )
    runtime.add_observer(tracer)
    return lambda: {"cycles": list(tracer.cycles), "series": tracer.matrix()}


def _measure_components(runtime: ScenarioRuntime, scale) -> Callable[[], Any]:
    def extract() -> List[int]:
        from repro.graph.components import component_sizes
        from repro.graph.snapshot import GraphSnapshot

        return component_sizes(GraphSnapshot.from_engine(runtime.engine))

    return extract


def _measure_degrees(runtime: ScenarioRuntime, scale) -> Callable[[], Any]:
    def extract() -> Dict[str, float]:
        from repro.graph.snapshot import GraphSnapshot

        degrees = GraphSnapshot.from_engine(runtime.engine).degrees()
        if degrees.size == 0:
            return {"mean": 0.0, "std": 0.0, "min": 0, "max": 0}
        return {
            "mean": float(degrees.mean()),
            "std": float(degrees.std()),
            "min": int(degrees.min()),
            "max": int(degrees.max()),
        }

    return extract


MEASUREMENTS: Dict[str, Measurement] = {
    "metrics": Measurement(
        "clustering / average degree / path length per cycle (Figure 2/3)",
        _measure_metrics,
    ),
    "dead-links": Measurement(
        "dead links after every cycle (Figure 7)", _measure_dead_links
    ),
    "view-sizes": Measurement(
        "min/mean/max view fill level", _measure_view_sizes
    ),
    "degree-trace": Measurement(
        "per-cycle degrees of the first traced_nodes bootstrap nodes "
        "(Table 2 / Figure 5)",
        _measure_degree_trace,
    ),
    "components": Measurement(
        "connected component sizes of the final overlay (Table 1)",
        _measure_components,
    ),
    "degrees": Measurement(
        "degree distribution summary of the final overlay (Figure 4)",
        _measure_degrees,
    ),
}
"""Measurements selectable by name in :class:`ExperimentPlan`."""


# -- the plan ----------------------------------------------------------------


_PLAN_FIELDS = (
    "name",
    "scenario",
    "protocols",
    "scales",
    "engines",
    "seeds",
    "n_nodes",
    "cycles",
    "measurements",
    "description",
)


@dataclasses.dataclass(frozen=True)
class ExperimentPlan:
    """The serializable cross-product of one study (module docstring).

    ``engines`` entries may be ``None`` (JSON ``null`` or the string
    ``"default"``): the scale preset's default engine then applies, like
    an experiment invoked without ``--engine``.  ``n_nodes`` and
    ``cycles`` override the scale preset (the spec's own ``cycles``
    field, if set, wins over the preset but loses to the plan override).
    """

    name: str = "plan"
    scenario: Union[str, ScenarioSpec] = "random-convergence"
    protocols: Tuple[str, ...] = ("(rand,head,pushpull)",)
    scales: Tuple[str, ...] = ("quick",)
    engines: Tuple[Optional[str], ...] = (None,)
    seeds: Tuple[int, ...] = (0,)
    n_nodes: Optional[int] = None
    cycles: Optional[int] = None
    measurements: Tuple[str, ...] = ()
    description: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.experiments.common import ENGINES, SCALES

        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"plan name must be a non-empty string, got {self.name!r}"
            )
        if isinstance(self.scenario, str):
            if self.scenario not in SCENARIOS:
                raise ConfigurationError(
                    f"unknown scenario {self.scenario!r}; choose from "
                    f"{sorted(SCENARIOS)} or inline a scenario spec"
                )
        elif not isinstance(self.scenario, ScenarioSpec):
            raise ConfigurationError(
                f"scenario must be a name or a ScenarioSpec, got "
                f"{self.scenario!r}"
            )
        for attr in ("protocols", "scales", "engines", "seeds", "measurements"):
            object.__setattr__(self, attr, tuple(getattr(self, attr)))
        if not self.protocols:
            raise ConfigurationError("plan needs at least one protocol")
        for label in self.protocols:
            ProtocolConfig.from_label(label)  # raises on bad labels
        if not self.scales:
            raise ConfigurationError("plan needs at least one scale")
        for scale_name in self.scales:
            if scale_name not in SCALES:
                raise ConfigurationError(
                    f"unknown scale {scale_name!r}; choose from "
                    f"{sorted(SCALES)}"
                )
        if not self.engines:
            raise ConfigurationError(
                "plan needs at least one engine (null = scale default)"
            )
        for engine_name in self.engines:
            if engine_name is not None and engine_name not in ENGINES:
                raise ConfigurationError(
                    f"unknown engine {engine_name!r}; choose from "
                    f"{sorted(ENGINES)} (or null for the scale default)"
                )
        if not self.seeds:
            raise ConfigurationError("plan needs at least one seed")
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ConfigurationError(
                    f"seeds must be integers, got {seed!r}"
                )
        for measurement in self.measurements:
            if measurement not in MEASUREMENTS:
                raise ConfigurationError(
                    f"unknown measurement {measurement!r}; choose from "
                    f"{sorted(MEASUREMENTS)}"
                )
        if self.n_nodes is not None and (
            not isinstance(self.n_nodes, int) or self.n_nodes < 1
        ):
            raise ConfigurationError(
                f"n_nodes must be a positive integer, got {self.n_nodes!r}"
            )
        if self.cycles is not None and (
            not isinstance(self.cycles, int) or self.cycles < 1
        ):
            raise ConfigurationError(
                f"cycles must be a positive integer, got {self.cycles!r}"
            )

    @property
    def total_runs(self) -> int:
        """Number of cells in the cross-product."""
        return (
            len(self.protocols)
            * len(self.scales)
            * len(self.engines)
            * len(self.seeds)
        )

    def resolve_scenario(self, scale) -> ScenarioSpec:
        """The concrete spec for one scale (named scenarios scale along)."""
        if isinstance(self.scenario, str):
            return named_scenario(self.scenario, scale)
        return self.scenario

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (``None`` engine entries become ``null``)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "scenario": (
                self.scenario
                if isinstance(self.scenario, str)
                else self.scenario.to_dict()
            ),
            "protocols": list(self.protocols),
            "scales": list(self.scales),
            "engines": list(self.engines),
            "seeds": list(self.seeds),
        }
        for key in ("n_nodes", "cycles", "description"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.measurements:
            payload["measurements"] = list(self.measurements)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentPlan":
        """Parse a mapping; unknown keys raise eagerly."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"experiment plan must be a mapping, got {payload!r}"
            )
        unknown = sorted(set(payload) - set(_PLAN_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown plan field(s) {unknown}; valid fields: "
                f"{sorted(_PLAN_FIELDS)}"
            )
        kwargs: Dict[str, Any] = {
            key: payload[key] for key in _PLAN_FIELDS if key in payload
        }
        scenario = kwargs.get("scenario")
        if isinstance(scenario, Mapping):
            kwargs["scenario"] = ScenarioSpec.from_dict(scenario)
        if "engines" in kwargs:
            kwargs["engines"] = tuple(
                None if engine in (None, "default") else engine
                for engine in kwargs["engines"]
            )
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "ExperimentPlan":
        """Parse a JSON document produced by :meth:`to_json`."""
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"experiment plan is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(payload)


# -- execution ---------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One executed cell of the plan's cross-product."""

    scenario: str
    protocol: str
    scale: str
    engine: str
    seed: int
    cycles: int
    final_nodes: int
    completed_exchanges: int
    failed_exchanges: int
    views_digest: str
    """Canonical overlay digest -- equal digests mean byte-identical
    final views (the cross-engine identity criterion)."""
    measurements: Dict[str, Any]
    elapsed_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class PlanResult:
    """Every record of one executed plan."""

    plan: ExperimentPlan
    records: List[RunRecord]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (plan inline, one entry per record)."""
        return {
            "plan": self.plan.to_dict(),
            "records": [record.to_dict() for record in self.records],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize results (plan included) to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)


def run_plan(
    plan: ExperimentPlan,
    on_record: Optional[Callable[[RunRecord], None]] = None,
) -> PlanResult:
    """Execute every cell of ``plan`` and collect the records.

    Cells run in deterministic order (scales, then engines, then
    protocols, then seeds); ``on_record`` is invoked after each cell,
    which is how the CLI streams progress.  Engine construction,
    bootstrap and schedule execution all go through
    :func:`~repro.workloads.runtime.prepare_run`, so a plan exercises
    exactly the code path the artefact modules use.
    """
    from repro.experiments.common import SCALES, resolve_engine_name

    records: List[RunRecord] = []
    for scale_name in plan.scales:
        scale = SCALES[scale_name]
        spec = plan.resolve_scenario(scale)
        for engine_name in plan.engines:
            effective_engine = resolve_engine_name(
                engine_name, default=scale.default_engine
            )
            for label in plan.protocols:
                config = ProtocolConfig.from_label(
                    label, view_size=scale.view_size
                )
                for seed in plan.seeds:
                    started = time.perf_counter()
                    runtime = prepare_run(
                        spec,
                        config,
                        scale=scale,
                        seed=seed,
                        engine=effective_engine,
                        n_nodes=plan.n_nodes,
                        cycles=plan.cycles,
                    )
                    extractors = {
                        name: MEASUREMENTS[name].setup(runtime, scale)
                        for name in plan.measurements
                    }
                    runtime.run_to_end()
                    record = RunRecord(
                        scenario=spec.name,
                        protocol=config.label,
                        scale=scale_name,
                        engine=effective_engine,
                        seed=seed,
                        cycles=runtime.cycles,
                        final_nodes=len(runtime.engine),
                        completed_exchanges=runtime.engine.completed_exchanges,
                        failed_exchanges=runtime.engine.failed_exchanges,
                        views_digest=runtime.views_digest(),
                        measurements={
                            name: extract()
                            for name, extract in extractors.items()
                        },
                        elapsed_seconds=time.perf_counter() - started,
                    )
                    records.append(record)
                    if on_record is not None:
                        on_record(record)
    return PlanResult(plan=plan, records=records)

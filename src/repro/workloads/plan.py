"""Experiment plans: ``protocols x scenario x scales x engines x seeds``.

An :class:`ExperimentPlan` is the serializable cross-product description
of a whole study: which protocol instances (paper tuple labels, H/S
suffixes included), which scenario (inline
:class:`~repro.workloads.spec.ScenarioSpec` or a built-in name from
:mod:`repro.workloads.library`), at which scale presets, on which
engines, over which seeds -- plus the measurements to record per run.
:func:`run_plan` executes the cross-product through
:func:`~repro.workloads.runtime.prepare_run` and returns one
:class:`RunRecord` per cell, each carrying a canonical
:func:`~repro.workloads.runtime.views_digest` of the final overlay (what
the cross-engine identity tests compare) and the extracted measurement
series.

Execution is serial by default and process-parallel on request
(``run_plan(plan, workers=N)`` / ``$REPRO_WORKERS``; ``full``-scale
plans default to one worker per core): the cross-product is expanded
into spawn-safe, picklable :class:`PlanCell` descriptors, dispatched to
a ``ProcessPoolExecutor``, and merged back **in deterministic plan
order** regardless of completion order.  Serial and parallel execution
are byte-identical -- same records, same ordering, same SHA-256 overlay
digests (:meth:`PlanResult.records_digest`; only per-cell wall-clock
timings differ) -- because every cell re-derives its entire state (spec,
protocol, engine, RNG seed) from the descriptor through the exact code
path in-process execution uses (:func:`execute_cell`).  The conformance
suite ``tests/workloads/test_parallel.py`` pins this across both engine
families.

Like the specs, plans validate eagerly: unknown engines, scales,
measurements or unparsable protocol labels raise
:class:`~repro.core.errors.ConfigurationError` at construction (and
therefore at :meth:`ExperimentPlan.from_json` time), never mid-study.
Failures *during* execution -- a cell raising, a worker process dying,
the ``timeout`` budget expiring -- cancel the remaining cells and raise
:class:`~repro.core.errors.PlanExecutionError` naming the cell.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import time
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.config import ProtocolConfig
from repro.core.errors import ConfigurationError, PlanExecutionError
from repro.workloads.library import SCENARIOS, named_scenario
from repro.workloads.runtime import (
    ScenarioRuntime,
    prepare_run,
    warm_shared_caches,
)
from repro.workloads.spec import ScenarioSpec

__all__ = [
    "MEASUREMENTS",
    "ExperimentPlan",
    "PlanCell",
    "PlanExecutionError",
    "PlanResult",
    "RunRecord",
    "execute_cell",
    "plan_cells",
    "plan_scales",
    "run_plan",
    "run_plans",
]


# -- measurements ------------------------------------------------------------


class Measurement(NamedTuple):
    """One recordable quantity: attach observers, then extract a result."""

    description: str
    setup: Callable[[ScenarioRuntime, Any], Callable[[], Any]]
    """``setup(runtime, scale)`` runs after the bootstrap and returns the
    zero-argument extractor called once the run completes."""


def _measure_metrics(runtime: ScenarioRuntime, scale) -> Callable[[], Any]:
    from repro.simulation.trace import MetricsRecorder

    recorder = MetricsRecorder(
        every=scale.metrics_every,
        clustering_sample=scale.clustering_sample,
        path_sources=scale.path_sources,
        record_initial=False,
    )
    runtime.add_observer(recorder)
    return recorder.as_dict


def _measure_dead_links(runtime: ScenarioRuntime, scale) -> Callable[[], Any]:
    from repro.simulation.trace import DeadLinkCensus

    census = DeadLinkCensus(every=1)
    runtime.add_observer(census)
    return lambda: {
        "cycles": list(census.cycles),
        "dead_links": list(census.dead_links),
    }


def _measure_dead_links_healing(
    runtime: ScenarioRuntime, scale
) -> Callable[[], Any]:
    from repro.simulation.trace import DeadLinkCensus
    from repro.workloads.spec import CatastrophicFailure

    # Only the healing window pays the per-cycle dead-link scan: cycles
    # up to and including the first crash have nothing to heal (without
    # a failure event the window is the whole run, like "dead-links").
    start = min(
        (
            event.at_cycle
            for event in runtime.spec.events_of(CatastrophicFailure)
        ),
        default=0,
    )

    class _WindowedCensus(DeadLinkCensus):
        def after_cycle(self, engine) -> None:
            if engine.cycle > start:
                super().after_cycle(engine)

    census = _WindowedCensus(every=1)
    runtime.add_observer(census)
    return lambda: {
        "cycles": list(census.cycles),
        "dead_links": list(census.dead_links),
    }


def _measure_dead_links_initial(
    runtime: ScenarioRuntime, scale
) -> Callable[[], Any]:
    def extract() -> Optional[int]:
        from repro.workloads.runtime import FailureHandle

        # Earliest crash, not declaration order: must agree with the
        # dead-links-healing window (min at_cycle) when a spec schedules
        # several failures out of chronological order.
        handles = [
            handle
            for handle in runtime.handles
            if isinstance(handle, FailureHandle)
        ]
        if not handles:
            return None
        return min(handles, key=lambda h: h.at_cycle).dead_links_after

    return extract


def _measure_view_sizes(runtime: ScenarioRuntime, scale) -> Callable[[], Any]:
    from repro.simulation.trace import ViewSizeRecorder

    recorder = ViewSizeRecorder(every=scale.metrics_every)
    runtime.add_observer(recorder)
    return lambda: {
        "cycles": list(recorder.cycles),
        "min": list(recorder.min_size),
        "mean": list(recorder.mean_size),
        "max": list(recorder.max_size),
    }


def _measure_degree_trace(runtime: ScenarioRuntime, scale) -> Callable[[], Any]:
    from repro.simulation.trace import DegreeTracer

    tracer = DegreeTracer(
        runtime.bootstrap_addresses[: scale.traced_nodes]
    )
    runtime.add_observer(tracer)
    return lambda: {"cycles": list(tracer.cycles), "series": tracer.matrix()}


def _measure_components(runtime: ScenarioRuntime, scale) -> Callable[[], Any]:
    def extract() -> List[int]:
        from repro.graph.components import component_sizes
        from repro.graph.snapshot import GraphSnapshot

        return component_sizes(GraphSnapshot.from_engine(runtime.engine))

    return extract


def _measure_degrees(runtime: ScenarioRuntime, scale) -> Callable[[], Any]:
    def extract() -> Dict[str, float]:
        from repro.graph.snapshot import GraphSnapshot

        degrees = GraphSnapshot.from_engine(runtime.engine).degrees()
        if degrees.size == 0:
            return {"mean": 0.0, "std": 0.0, "min": 0, "max": 0}
        return {
            "mean": float(degrees.mean()),
            "std": float(degrees.std()),
            "min": int(degrees.min()),
            "max": int(degrees.max()),
        }

    return extract


def _measure_broadcast_coverage(
    runtime: ScenarioRuntime, scale
) -> Callable[[], Any]:
    def extract() -> Dict[str, Any]:
        from repro.services import AntiEntropyBroadcast, sampling_services

        # Runs after run_to_end() and after the record's views_digest
        # was computed, over the final overlay.  get_peer draws never
        # mutate views, and the engine RNG is byte-identical across a
        # family post-run, so the extracted series is too.
        result = AntiEntropyBroadcast(
            sampling_services(runtime.engine), fanout=2, mode="push"
        ).run()
        return {
            "coverage": list(result.coverage),
            "rounds": result.rounds,
            "covered": result.covered,
            "stale_samples": result.stale_samples,
        }

    return extract


def _measure_aggregation_variance(
    runtime: ScenarioRuntime, scale
) -> Callable[[], Any]:
    def extract() -> Dict[str, Any]:
        from repro.services import PushPullAveraging, sampling_services

        result = PushPullAveraging(
            sampling_services(runtime.engine),
            rounds=15,
            rng=runtime.engine.rng,
        ).run()
        return {
            "variances": list(result.variances),
            "reduction_factor": result.reduction_factor,
            "stale_samples": result.stale_samples,
        }

    return extract


def _measure_search_hit_rate(
    runtime: ScenarioRuntime, scale
) -> Callable[[], Any]:
    def extract() -> Dict[str, Any]:
        from repro.services import (
            RandomWalkSearch,
            sampling_services,
            scatter_key,
        )

        services = sampling_services(runtime.engine)
        rng = runtime.engine.rng
        # ~1% replication (at least one copy), TTL sized so an ideal
        # uniform walk hits with high probability -- the gap to 100% is
        # then the sampling quality the cell is measuring.
        copies = max(1, len(services) // 100)
        result = RandomWalkSearch(
            services,
            scatter_key(list(services), copies, rng),
            ttl=min(256, 4 * max(1, len(services) // copies)),
            rng=rng,
        ).run(queries=min(64, len(services)))
        return {
            "hit_rate": result.hit_rate,
            "mean_hops": result.mean_hops,
            "queries": result.queries,
            "holders": result.holders,
            "ttl": result.ttl,
            "stale_samples": result.stale_samples,
        }

    return extract


def _measure_indegree_concentration(
    runtime: ScenarioRuntime, scale
) -> Callable[[], Any]:
    def extract() -> Dict[str, Any]:
        handle = getattr(runtime, "adversary", None)
        attackers = set(handle.attackers) if handle is not None else set()
        indegree: Dict[Any, int] = {}
        total = 0
        for entries in runtime.engine.views().values():
            for descriptor in entries:
                total += 1
                indegree[descriptor.address] = (
                    indegree.get(descriptor.address, 0) + 1
                )
        attacker_links = sum(indegree.get(a, 0) for a in attackers)
        return {
            "total_links": total,
            "attacker_links": attacker_links,
            "attacker_share": attacker_links / total if total else 0.0,
            "max_indegree_share": (
                max(indegree.values()) / total if total else 0.0
            ),
            "n_attackers": len(attackers),
        }

    return extract


def _measure_eclipse_exposure(
    runtime: ScenarioRuntime, scale
) -> Callable[[], Any]:
    from repro.simulation.trace import Observer

    handle = getattr(runtime, "adversary", None)
    attackers = frozenset(handle.attackers) if handle is not None else frozenset()
    victims = tuple(handle.victims) if handle is not None else ()
    cycles: List[int] = []
    exposure: List[float] = []

    class _ExposureCensus(Observer):
        def after_cycle(self, engine) -> None:
            rows = 0
            hits = 0
            for victim in victims:
                if not engine.is_alive(victim):
                    continue
                for descriptor in engine.node(victim).view:
                    rows += 1
                    if descriptor.address in attackers:
                        hits += 1
            cycles.append(engine.cycle)
            exposure.append(hits / rows if rows else 0.0)

    runtime.add_observer(_ExposureCensus())
    return lambda: {"cycles": list(cycles), "exposure": list(exposure)}


def _measure_sampling_distance(
    runtime: ScenarioRuntime, scale
) -> Callable[[], Any]:
    def extract() -> Dict[str, Any]:
        from repro.services import sampling_services
        from repro.stats.sampling_quality import (
            chi_square_uniformity,
            sample_frequencies,
            total_variation_from_uniform,
        )

        # Runs post-run and after the record's views_digest, like
        # broadcast-coverage: get_peer draws never mutate views and the
        # engine RNG is byte-identical across the cycle family post-run,
        # so the extracted distances are too.
        handle = getattr(runtime, "adversary", None)
        attackers = set(handle.attackers) if handle is not None else set()
        engine = runtime.engine
        population = engine.addresses()
        honest = [
            service
            for address, service in sampling_services(engine).items()
            if address not in attackers
        ]
        counts = sample_frequencies(honest, calls_per_service=25)
        result: Dict[str, Any] = {
            "population": len(population),
            "honest_callers": len(honest),
            "samples": sum(counts.values()),
            "total_variation": None,
            "normalized_chi_square": None,
        }
        # Distances are only defined over samples that actually land in
        # the current population: a fully eclipsed run can leave every
        # honest sample pointing at churned-out attackers, making the
        # in-population total zero even though ``counts`` is non-empty.
        in_population = sum(counts.get(address, 0) for address in population)
        if len(population) >= 2 and in_population:
            result["total_variation"] = total_variation_from_uniform(
                counts, population
            )
            result["normalized_chi_square"] = chi_square_uniformity(
                counts, population
            )
        return result

    return extract


MEASUREMENTS: Dict[str, Measurement] = {
    "metrics": Measurement(
        "clustering / average degree / path length per cycle (Figure 2/3)",
        _measure_metrics,
    ),
    "dead-links": Measurement(
        "dead links after every cycle (Figure 7)", _measure_dead_links
    ),
    "dead-links-healing": Measurement(
        "dead links after every cycle following the first "
        "catastrophic-failure (the Figure 7 healing window; the whole "
        "run when no failure event is scheduled)",
        _measure_dead_links_healing,
    ),
    "dead-links-initial": Measurement(
        "dead links immediately after the catastrophic-failure crash, "
        "before any healing exchange (Figure 7's 'initial'; null without "
        "a failure event)",
        _measure_dead_links_initial,
    ),
    "view-sizes": Measurement(
        "min/mean/max view fill level", _measure_view_sizes
    ),
    "degree-trace": Measurement(
        "per-cycle degrees of the first traced_nodes bootstrap nodes "
        "(Table 2 / Figure 5)",
        _measure_degree_trace,
    ),
    "components": Measurement(
        "connected component sizes of the final overlay (Table 1)",
        _measure_components,
    ),
    "degrees": Measurement(
        "degree distribution summary of the final overlay (Figure 4)",
        _measure_degrees,
    ),
    "broadcast-coverage": Measurement(
        "push rumor spreading over the final overlay: per-round informed "
        "counts, rounds-to-coverage and stale-sample count "
        "(repro.services.AntiEntropyBroadcast)",
        _measure_broadcast_coverage,
    ),
    "aggregation-variance": Measurement(
        "push-pull averaging over the final overlay: per-round variance "
        "decay and stale-sample count (repro.services.PushPullAveraging)",
        _measure_aggregation_variance,
    ),
    "search-hit-rate": Measurement(
        "TTL random-walk lookups over the final overlay: hit rate, mean "
        "hops and stale-sample count (repro.services.RandomWalkSearch)",
        _measure_search_hit_rate,
    ),
    "indegree-concentration": Measurement(
        "in-degree mass captured by the adversary in the final overlay: "
        "attacker link share and the single largest in-degree share "
        "(zeros without an adversary block)",
        _measure_indegree_concentration,
    ),
    "eclipse-exposure": Measurement(
        "per-cycle fraction of victim view entries pointing at "
        "attackers (empty exposure without eclipse victims)",
        _measure_eclipse_exposure,
    ),
    "sampling-distance": Measurement(
        "distance of honest nodes' pooled getPeer() streams from the "
        "uniform distribution over the final overlay: total variation "
        "and normalized chi-square (repro.stats.sampling_quality)",
        _measure_sampling_distance,
    ),
}
"""Measurements selectable by name in :class:`ExperimentPlan`."""


# -- the plan ----------------------------------------------------------------


_PLAN_FIELDS = (
    "name",
    "scenario",
    "protocols",
    "scales",
    "engines",
    "seeds",
    "n_nodes",
    "cycles",
    "measurements",
    "description",
)


@dataclasses.dataclass(frozen=True)
class ExperimentPlan:
    """The serializable cross-product of one study (module docstring).

    ``engines`` entries may be ``None`` (JSON ``null`` or the string
    ``"default"``): the scale preset's default engine then applies, like
    an experiment invoked without ``--engine``.  ``scales`` entries are
    preset names or -- symmetric with the inline-vs-named ``scenario``
    -- inline :class:`~repro.experiments.common.Scale` objects (JSON
    mappings of the Scale fields), which is how ad-hoc sizes outside the
    registry run through the plan machinery.  ``n_nodes`` and ``cycles``
    override the scale preset (the spec's own ``cycles`` field, if set,
    wins over the preset but loses to the plan override).
    """

    name: str = "plan"
    scenario: Union[str, ScenarioSpec] = "random-convergence"
    protocols: Tuple[str, ...] = ("(rand,head,pushpull)",)
    scales: Tuple[str, ...] = ("quick",)
    engines: Tuple[Optional[str], ...] = (None,)
    seeds: Tuple[int, ...] = (0,)
    n_nodes: Optional[int] = None
    cycles: Optional[int] = None
    measurements: Tuple[str, ...] = ()
    description: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.experiments.common import ENGINES, SCALES, Scale

        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"plan name must be a non-empty string, got {self.name!r}"
            )
        if isinstance(self.scenario, str):
            if self.scenario not in SCENARIOS:
                raise ConfigurationError(
                    f"unknown scenario {self.scenario!r}; choose from "
                    f"{sorted(SCENARIOS)} or inline a scenario spec"
                )
        elif not isinstance(self.scenario, ScenarioSpec):
            raise ConfigurationError(
                f"scenario must be a name or a ScenarioSpec, got "
                f"{self.scenario!r}"
            )
        for attr in ("protocols", "scales", "engines", "seeds", "measurements"):
            object.__setattr__(self, attr, tuple(getattr(self, attr)))
        if not self.protocols:
            raise ConfigurationError("plan needs at least one protocol")
        from repro.extensions.registry import is_extension_protocol

        for label in self.protocols:
            if is_extension_protocol(label):
                continue  # registry names (cyclon, peerswap) are valid
            ProtocolConfig.from_label(label)  # raises on bad labels
        if not self.scales:
            raise ConfigurationError("plan needs at least one scale")
        for scale_entry in self.scales:
            if isinstance(scale_entry, Scale):
                scale_entry.validate()  # eager, like every other axis
                continue
            if not isinstance(scale_entry, str) or scale_entry not in SCALES:
                raise ConfigurationError(
                    f"unknown scale {scale_entry!r}; choose from "
                    f"{sorted(SCALES)} or inline a Scale"
                )
        if not self.engines:
            raise ConfigurationError(
                "plan needs at least one engine (null = scale default)"
            )
        for engine_name in self.engines:
            if engine_name is not None and engine_name not in ENGINES:
                raise ConfigurationError(
                    f"unknown engine {engine_name!r}; choose from "
                    f"{sorted(ENGINES)} (or null for the scale default)"
                )
        if not self.seeds:
            raise ConfigurationError("plan needs at least one seed")
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ConfigurationError(
                    f"seeds must be integers, got {seed!r}"
                )
        for measurement in self.measurements:
            if measurement not in MEASUREMENTS:
                raise ConfigurationError(
                    f"unknown measurement {measurement!r}; choose from "
                    f"{sorted(MEASUREMENTS)}"
                )
        if self.n_nodes is not None and (
            not isinstance(self.n_nodes, int) or self.n_nodes < 1
        ):
            raise ConfigurationError(
                f"n_nodes must be a positive integer, got {self.n_nodes!r}"
            )
        if self.cycles is not None and (
            not isinstance(self.cycles, int) or self.cycles < 1
        ):
            raise ConfigurationError(
                f"cycles must be a positive integer, got {self.cycles!r}"
            )

    @property
    def total_runs(self) -> int:
        """Number of cells in the cross-product."""
        return (
            len(self.protocols)
            * len(self.scales)
            * len(self.engines)
            * len(self.seeds)
        )

    def resolve_scenario(self, scale) -> ScenarioSpec:
        """The concrete spec for one scale (named scenarios scale along)."""
        if isinstance(self.scenario, str):
            return named_scenario(self.scenario, scale)
        return self.scenario

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (``None`` engine entries become ``null``,
        inline scales become mappings of their fields)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "scenario": (
                self.scenario
                if isinstance(self.scenario, str)
                else self.scenario.to_dict()
            ),
            "protocols": list(self.protocols),
            "scales": [
                entry if isinstance(entry, str) else dataclasses.asdict(entry)
                for entry in self.scales
            ],
            "engines": list(self.engines),
            "seeds": list(self.seeds),
        }
        for key in ("n_nodes", "cycles", "description"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.measurements:
            payload["measurements"] = list(self.measurements)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentPlan":
        """Parse a mapping; unknown keys raise eagerly."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"experiment plan must be a mapping, got {payload!r}"
            )
        unknown = sorted(set(payload) - set(_PLAN_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown plan field(s) {unknown}; valid fields: "
                f"{sorted(_PLAN_FIELDS)}"
            )
        kwargs: Dict[str, Any] = {
            key: payload[key] for key in _PLAN_FIELDS if key in payload
        }
        scenario = kwargs.get("scenario")
        if isinstance(scenario, Mapping):
            kwargs["scenario"] = ScenarioSpec.from_dict(scenario)
        if "scales" in kwargs and isinstance(kwargs["scales"], (list, tuple)):
            from repro.experiments.common import Scale

            converted = []
            for entry in kwargs["scales"]:
                if isinstance(entry, Mapping):
                    try:
                        converted.append(Scale(**entry))
                    except TypeError as exc:
                        raise ConfigurationError(
                            f"invalid inline scale {dict(entry)!r}: {exc}"
                        ) from None
                else:
                    converted.append(entry)
            kwargs["scales"] = tuple(converted)
        if "engines" in kwargs:
            kwargs["engines"] = tuple(
                None if engine in (None, "default") else engine
                for engine in kwargs["engines"]
            )
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, document: str) -> "ExperimentPlan":
        """Parse a JSON document produced by :meth:`to_json`."""
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"experiment plan is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(payload)


# -- execution ---------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One executed cell of the plan's cross-product."""

    scenario: str
    protocol: str
    scale: str
    engine: str
    """The engine that actually ran the cell, always resolved -- when the
    plan's engine entry was ``None``, this is whatever ``$REPRO_ENGINE``
    or the scale preset's default supplied."""
    engine_requested: Optional[str]
    """The plan's engine axis entry for this cell: an explicit registry
    name, or ``None`` when the cell deferred to the default.  Together
    with :attr:`engine` this makes ``--out`` records self-describing --
    a defaulted run is distinguishable from an explicit ``--engine``."""
    seed: int
    cycles: int
    final_nodes: int
    completed_exchanges: int
    failed_exchanges: int
    views_digest: str
    """Canonical overlay digest -- equal digests mean byte-identical
    final views (the cross-engine identity criterion)."""
    measurements: Dict[str, Any]
    elapsed_seconds: float
    """Wall-clock seconds the cell took *where it ran* (in the worker
    process under parallel execution).  The only record field excluded
    from the serial/parallel identity contract -- see
    :meth:`canonical_dict`."""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        return dataclasses.asdict(self)

    def canonical_dict(self) -> Dict[str, Any]:
        """The record without :attr:`elapsed_seconds`.

        This is the byte-identity contract of plan execution: two runs of
        the same plan -- serial, parallel, any worker count -- must
        produce equal canonical dicts in the same order (pinned by
        ``tests/workloads/test_parallel.py``).
        """
        payload = self.to_dict()
        del payload["elapsed_seconds"]
        return payload


@dataclasses.dataclass(frozen=True)
class PlanResult:
    """Every record of one executed plan."""

    plan: ExperimentPlan
    records: List[RunRecord]
    workers: int = 1
    """Worker processes the plan executed on (1 = in-process serial).
    Provenance only -- results are byte-identical for every value."""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (plan inline, one entry per record)."""
        return {
            "plan": self.plan.to_dict(),
            "workers": self.workers,
            "records": [record.to_dict() for record in self.records],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize results (plan included) to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def records_digest(self) -> str:
        """SHA-256 over the canonical records, in order.

        Equal digests mean the two executions produced byte-identical
        records (overlay digests, measurements, metadata and ordering;
        wall-clock timings excluded) -- the single number the
        serial-vs-parallel conformance suite and the benchmark compare.
        """
        canonical = json.dumps(
            [record.canonical_dict() for record in self.records],
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class PlanCell:
    """A spawn-safe description of one plan cell.

    Every field is a picklable primitive (the scenario is its JSON
    mapping), so a cell can cross a ``spawn`` process boundary and be
    re-executed bit-for-bit: :func:`execute_cell` rebuilds the spec via
    :meth:`~repro.workloads.spec.ScenarioSpec.from_dict` and the protocol
    via :meth:`~repro.core.config.ProtocolConfig.from_label` -- both
    round-trips are pinned identity-preserving -- and seeds a fresh
    engine, so a cell's record never depends on which process ran it.
    The engine name is resolved (env and scale defaults applied) in the
    parent before the cell is built: workers never consult the
    environment for it.
    """

    scenario: Mapping[str, Any]
    protocol: str
    scale: Any
    """A preset name, or the inline
    :class:`~repro.experiments.common.Scale` itself (a frozen dataclass
    of primitives -- equally spawn-picklable)."""
    engine: str
    engine_requested: Optional[str]
    seed: int
    n_nodes: Optional[int]
    cycles: Optional[int]
    measurements: Tuple[str, ...]

    @property
    def scale_name(self) -> str:
        return self.scale if isinstance(self.scale, str) else self.scale.name

    def resolve_scale(self):
        """The cell's :class:`~repro.experiments.common.Scale` object."""
        from repro.experiments.common import SCALES

        return (
            SCALES[self.scale] if isinstance(self.scale, str) else self.scale
        )

    def describe(self) -> str:
        """Human-readable cell identity for progress and error messages."""
        return (
            f"scenario {self.scenario.get('name', '?')!r}, protocol "
            f"{self.protocol}, scale {self.scale_name}, engine "
            f"{self.engine}, seed {self.seed}"
        )


def plan_scales(plan: ExperimentPlan) -> Tuple[Any, ...]:
    """The resolved :class:`Scale` object of every ``scales`` entry."""
    from repro.experiments.common import SCALES

    return tuple(
        SCALES[entry] if isinstance(entry, str) else entry
        for entry in plan.scales
    )


def plan_cells(plan: ExperimentPlan) -> List[PlanCell]:
    """Expand a plan's cross-product into cells, in deterministic order.

    The order -- scales, then engines, then protocols, then seeds -- is
    the execution *and* record order of :func:`run_plan`, independent of
    worker count and completion order.
    """
    from repro.adversary.harness import ADVERSARY_ENGINE_NAMES
    from repro.experiments.common import resolve_engine_name
    from repro.extensions.registry import is_extension_protocol

    cells: List[PlanCell] = []
    for scale_entry, scale in zip(plan.scales, plan_scales(plan)):
        spec = plan.resolve_scenario(scale)
        spec_payload = spec.to_dict()
        for engine_name in plan.engines:
            effective_engine = resolve_engine_name(
                engine_name, default=scale.default_engine
            )
            if (
                spec.adversary is not None
                and effective_engine not in ADVERSARY_ENGINE_NAMES
            ):
                raise ConfigurationError(
                    f"scenario {spec.name!r} carries an adversary block, "
                    f"which runs on the {sorted(ADVERSARY_ENGINE_NAMES)} "
                    f"engines only; cell resolved to {effective_engine!r}"
                )
            for label in plan.protocols:
                if is_extension_protocol(label) and effective_engine != "cycle":
                    raise ConfigurationError(
                        f"extension protocol {label!r} runs on the 'cycle' "
                        f"engine only (bespoke node factory); cell "
                        f"resolved to {effective_engine!r}"
                    )
                for seed in plan.seeds:
                    cells.append(
                        PlanCell(
                            scenario=spec_payload,
                            protocol=label,
                            scale=scale_entry,
                            engine=effective_engine,
                            engine_requested=engine_name,
                            seed=seed,
                            n_nodes=plan.n_nodes,
                            cycles=plan.cycles,
                            measurements=plan.measurements,
                        )
                    )
    return cells


def execute_cell(cell: PlanCell) -> RunRecord:
    """Run one cell to completion and build its record.

    The single execution path behind both serial and parallel plan
    execution (it is the worker-process entry point's body), so the two
    modes cannot drift: everything a run depends on -- spec, protocol,
    scale, engine, seed -- comes out of the cell, and the engine RNG is
    seeded exactly as an in-process run would seed it.
    """
    from repro.extensions.registry import (
        extension_protocol,
        is_extension_protocol,
    )

    scale = cell.resolve_scale()
    spec = ScenarioSpec.from_dict(cell.scenario)
    started = time.perf_counter()
    if is_extension_protocol(cell.protocol):
        # A registry name: the cell runs a bespoke node factory on the
        # plain cycle engine instead of a generic ProtocolConfig.
        entry = extension_protocol(cell.protocol)
        ext_config = entry.make_config(scale.view_size)
        runtime = prepare_run(
            spec,
            None,
            scale=scale,
            seed=cell.seed,
            engine=cell.engine,
            n_nodes=cell.n_nodes,
            cycles=cell.cycles,
            node_factory=entry.make_factory(ext_config),
        )
        protocol_label = ext_config.label
    else:
        config = ProtocolConfig.from_label(
            cell.protocol, view_size=scale.view_size
        )
        runtime = prepare_run(
            spec,
            config,
            scale=scale,
            seed=cell.seed,
            engine=cell.engine,
            n_nodes=cell.n_nodes,
            cycles=cell.cycles,
        )
        protocol_label = config.label
    extractors = {
        name: MEASUREMENTS[name].setup(runtime, scale)
        for name in cell.measurements
    }
    runtime.run_to_end()
    return RunRecord(
        scenario=spec.name,
        protocol=protocol_label,
        scale=cell.scale_name,
        engine=cell.engine,
        engine_requested=cell.engine_requested,
        seed=cell.seed,
        cycles=runtime.cycles,
        final_nodes=len(runtime.engine),
        completed_exchanges=runtime.engine.completed_exchanges,
        failed_exchanges=runtime.engine.failed_exchanges,
        views_digest=runtime.views_digest(),
        measurements={
            name: extract() for name, extract in extractors.items()
        },
        elapsed_seconds=time.perf_counter() - started,
    )


_FAULT_ENV = "REPRO_WORKLOADS_FAULT"
"""Fault-injection hook for the crash-propagation tests: when set to
``"exit"``, workers die before executing anything, simulating a child
process killed mid-plan (OOM, segfault in native code, ...)."""


def _cell_worker(cell: PlanCell) -> RunRecord:
    """Worker-process entry point (module-level: picklable under spawn)."""
    if os.environ.get(_FAULT_ENV) == "exit":
        os._exit(13)
    return execute_cell(cell)


def _cell_failure(cell: PlanCell, error: BaseException) -> PlanExecutionError:
    return PlanExecutionError(
        f"plan cell ({cell.describe()}) failed: {error}"
    )


def _timeout_failure(
    timeout: float, completed: int, total: int
) -> PlanExecutionError:
    return PlanExecutionError(
        f"plan execution timed out after {timeout}s "
        f"({completed}/{total} cells completed)"
    )


def _run_cells_serial(
    cells: List[PlanCell],
    on_record: Optional[Callable[[RunRecord], None]],
    timeout: Optional[float],
) -> List[RunRecord]:
    deadline = None if timeout is None else time.monotonic() + timeout
    records: List[RunRecord] = []
    for cell in cells:
        if deadline is not None and time.monotonic() > deadline:
            raise _timeout_failure(timeout, len(records), len(cells))
        try:
            record = execute_cell(cell)
        except Exception as error:
            raise _cell_failure(cell, error) from error
        records.append(record)
        if on_record is not None:
            on_record(record)
    return records


def _run_cells_parallel(
    cells: List[PlanCell],
    on_record: Optional[Callable[[RunRecord], None]],
    workers: int,
    timeout: Optional[float],
) -> List[RunRecord]:
    """Dispatch cells to a spawn process pool; merge in plan order.

    Completion order is whatever the pool produces; records are buffered
    and released to ``on_record`` (and the returned list) strictly in
    plan-cell order, so streaming consumers observe exactly the serial
    sequence.  Any cell failure, worker death or timeout cancels the
    remaining cells and surfaces as
    :class:`~repro.core.errors.PlanExecutionError`.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    # Compile the shared C core once here, in the parent, so cold
    # workers load the cached library instead of each racing a compiler.
    warm_shared_caches([cell.engine for cell in cells])
    context = multiprocessing.get_context("spawn")
    executor = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    deadline = None if timeout is None else time.monotonic() + timeout
    results: Dict[int, RunRecord] = {}
    emitted = 0
    try:
        index_of = {
            executor.submit(_cell_worker, cell): index
            for index, cell in enumerate(cells)
        }
        pending = set(index_of)
        while pending:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise _timeout_failure(timeout, len(results), len(cells))
            done, pending = wait(
                pending, timeout=remaining, return_when=FIRST_COMPLETED
            )
            if not done:
                raise _timeout_failure(timeout, len(results), len(cells))
            for future in done:
                cell = cells[index_of[future]]
                try:
                    record = future.result()
                except BrokenProcessPool as error:
                    # A dead worker breaks *every* outstanding future at
                    # once, so the victim cell cannot be pinpointed --
                    # report the unfinished set instead of misdirecting
                    # the user at an arbitrary one.
                    unfinished = len(cells) - len(results)
                    raise PlanExecutionError(
                        f"a worker process died mid-plan ({unfinished} of "
                        f"{len(cells)} cells unfinished; the dying cell "
                        f"cannot be identified): {error}"
                    ) from error
                except Exception as error:
                    raise _cell_failure(cell, error) from error
                results[index_of[future]] = record
            # Release the longest completed prefix, in plan order.
            while emitted in results:
                if on_record is not None:
                    on_record(results[emitted])
                emitted += 1
    except BaseException:
        executor.shutdown(wait=False, cancel_futures=True)
        # Best effort: running cells cannot be cancelled through the
        # executor API, so put abandoned workers out of their misery
        # instead of letting a timed-out cell burn CPU to completion.
        for process in list(
            (getattr(executor, "_processes", None) or {}).values()
        ):
            try:
                process.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
        raise
    executor.shutdown(wait=True)
    return [results[index] for index in range(len(cells))]


def effective_workers(
    plans: Sequence[ExperimentPlan], workers: Optional[int] = None
) -> int:
    """The worker count a :func:`run_plans` call would actually use.

    Resolution (explicit > ``$REPRO_WORKERS`` > scale defaults, 0 = one
    per core) clamped to the plans' total cell count -- the single
    source of truth shared by the executor and the CLI's progress
    header, so the printed count always matches the
    :attr:`PlanResult.workers` provenance.
    """
    from repro.experiments.common import resolve_workers

    resolved = resolve_workers(
        workers,
        scales=tuple(
            scale for plan in plans for scale in plan_scales(plan)
        ),
    )
    total_cells = sum(plan.total_runs for plan in plans)
    return max(1, min(resolved, total_cells))


def run_plans(
    plans: Sequence[ExperimentPlan],
    *,
    workers: Optional[int] = None,
    on_record: Optional[Callable[[RunRecord], None]] = None,
    timeout: Optional[float] = None,
) -> List[PlanResult]:
    """Execute several plans through one (optionally parallel) executor.

    All plans' cells share the worker pool -- how the artefact modules
    parallelize studies whose per-run seeds differ across protocols
    (each protocol is its own single-axis plan, but every cell still
    lands on an idle core).  Records stream to ``on_record`` and are
    returned in deterministic order: plans in the given order, cells in
    :func:`plan_cells` order within each plan, regardless of completion
    order.

    ``workers`` resolves through
    :func:`~repro.experiments.common.resolve_workers`: explicit value >
    ``$REPRO_WORKERS`` > the largest ``default_workers`` among the
    plans' scale presets (``full`` defaults to one worker per core) >
    serial.  ``workers=1`` executes in-process; anything higher
    dispatches cells to a ``spawn`` process pool.  Either way the
    records -- including every overlay digest and measurement series --
    are byte-identical (:meth:`PlanResult.records_digest`).

    ``timeout`` bounds the whole execution in wall-clock seconds; on
    expiry (or on any cell failure or worker death) outstanding cells
    are cancelled and :class:`~repro.core.errors.PlanExecutionError` is
    raised.  Parallel mode enforces the deadline *while* cells run
    (abandoned workers are terminated); serial in-process execution
    cannot interrupt a running cell, so it checks the deadline between
    cells -- a single long cell finishes before the expiry is noticed.
    """
    cells: List[PlanCell] = []
    bounds: List[Tuple[int, int]] = []
    for plan in plans:
        start = len(cells)
        cells.extend(plan_cells(plan))
        bounds.append((start, len(cells)))
    # More workers than cells would idle; the clamped value is also the
    # recorded provenance, so PlanResult.workers reports what actually
    # ran (1 = in-process serial).
    resolved_workers = effective_workers(plans, workers)
    if resolved_workers <= 1:
        records = _run_cells_serial(cells, on_record, timeout)
    else:
        records = _run_cells_parallel(
            cells, on_record, resolved_workers, timeout
        )
    return [
        PlanResult(
            plan=plan,
            records=records[start:stop],
            workers=resolved_workers,
        )
        for plan, (start, stop) in zip(plans, bounds)
    ]


def run_plan(
    plan: ExperimentPlan,
    on_record: Optional[Callable[[RunRecord], None]] = None,
    *,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
) -> PlanResult:
    """Execute every cell of ``plan`` and collect the records.

    Cells run in deterministic order (scales, then engines, then
    protocols, then seeds); ``on_record`` is invoked after each cell in
    that order, which is how the CLI streams progress.  Engine
    construction, bootstrap and schedule execution all go through
    :func:`~repro.workloads.runtime.prepare_run`, so a plan exercises
    exactly the code path the artefact modules use.

    ``workers`` selects process-parallel execution (see
    :func:`run_plans` for resolution and semantics); results are
    byte-identical to serial execution for every worker count, pinned
    by ``tests/workloads/test_parallel.py``.
    """
    return run_plans(
        [plan], workers=workers, on_record=on_record, timeout=timeout
    )[0]

"""Compile a :class:`~repro.workloads.spec.ScenarioSpec` onto any engine.

:func:`prepare_run` builds an engine through the registry
(:func:`repro.experiments.common.make_engine`) and binds a spec to it;
:func:`compile_scenario` binds a spec to an engine the caller already
built (how extension protocols -- Cyclon, combined overlays -- ride the
declarative API).  Binding means:

- the bootstrap kind runs immediately (reusing the fast engines' bulk
  bootstrap path, so cycle-family byte-identity is preserved);
- integer-cycle events (``grow``, ``catastrophic-failure``,
  ``continuous-churn``, ``partition``/``heal``) become the proven
  observers of :mod:`repro.simulation.scenarios` /
  :mod:`repro.simulation.churn`, registered in declaration order;
- ``churn-trace`` events are expanded into a deterministic timeline of
  joins and leaves: on the cycle-driven engines an observer applies each
  batch at the start of its enclosing cycle, on the event-driven engines
  the returned :class:`ScenarioRuntime` slices ``run_time`` so every join
  and leave executes at its *exact* sub-cycle simulated time.

The runtime's :meth:`ScenarioRuntime.run_to_cycle` /
:meth:`~ScenarioRuntime.run_to_end` are the only driving entry points the
experiment harness needs; measurements attach through
:meth:`~ScenarioRuntime.add_observer` exactly like on a bare engine.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, List, NamedTuple, Optional, Sequence

from repro.core.config import ProtocolConfig
from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ConfigurationError
from repro.simulation import churn as churn_mod
from repro.simulation.base import BaseEngine
from repro.simulation.scenarios import (
    GrowingScenario,
    lattice_bootstrap,
    random_bootstrap,
)
from repro.simulation.trace import Observer
from repro.workloads.spec import (
    CatastrophicFailure,
    ChurnTrace,
    ContinuousChurn,
    Grow,
    Heal,
    Partition,
    ScenarioSpec,
)

__all__ = [
    "ScenarioRuntime",
    "compile_scenario",
    "prepare_run",
    "views_digest",
    "generate_trace",
    "warm_shared_caches",
    "TraceEvent",
]

_JOIN = 0
_LEAVE = 1


class TraceEvent(NamedTuple):
    """One resolved churn-trace action: a join or a leave of one session."""

    time: float
    """Absolute simulated time, in gossip periods."""
    action: int
    """``0`` = join, ``1`` = leave."""
    key: "tuple"
    """Session identity: ``(trace_index, arrival_index)``."""


def generate_trace(
    event: ChurnTrace, total_cycles: int, trace_index: int = 0
) -> List[TraceEvent]:
    """Expand one ``churn-trace`` event into its deterministic timeline.

    Arrivals form a Poisson process of ``event.rate`` per period on
    ``[start_cycle, end_cycle)``; each arrival's session length is an
    independent ``Exponential(session_length)`` draw.  All times come
    from a dedicated ``random.Random(event.trace_seed)``, never from the
    engine RNG -- the same spec therefore replays the identical trace on
    every engine and for every run seed, like a recorded availability
    trace.
    """
    if event.rate <= 0:
        return []
    rng = random.Random(event.trace_seed)
    end = float(
        total_cycles if event.end_cycle is None else event.end_cycle
    )
    end = min(end, float(total_cycles))
    events: List[TraceEvent] = []
    t = float(event.start_cycle)
    k = 0
    while True:
        t += rng.expovariate(event.rate)
        if t >= end:
            break
        session = rng.expovariate(1.0 / event.session_length)
        key = (trace_index, k)
        events.append(TraceEvent(t, _JOIN, key))
        leave = t + session
        if leave < total_cycles:
            events.append(TraceEvent(leave, _LEAVE, key))
        k += 1
    events.sort(key=lambda e: (e.time, e.key[1], e.action))
    return events


_ACCELERATED_ENGINES = frozenset({"fast", "fast-event", "fast-sharded"})
"""Registry engines that compile the shared C core at first use."""


def warm_shared_caches(engine_names: Sequence[Optional[str]]) -> None:
    """Populate on-disk caches the given engines share, once, up front.

    Called by the parallel plan executor in the *parent* process before
    any worker spawns: the flat-array engines compile the shared C core
    into ``~/.cache/repro-fastcore`` at first use, and while concurrent
    builds are safe (the writer renames atomically), N cold workers
    would otherwise each pay the full compile.  Warming here means every
    worker finds the finished library on disk and just ``dlopen``\\ s it.
    A no-op when no accelerated engine is requested or ``REPRO_NO_ACCEL``
    disables the core.
    """
    if _ACCELERATED_ENGINES.intersection(
        name for name in engine_names if name is not None
    ):
        from repro.simulation._fastcore import load_accelerator

        load_accelerator()


def views_digest(source: Any) -> str:
    """A canonical SHA-256 digest of an overlay's complete view state.

    ``source`` is an engine (anything with ``views()``) or a views
    mapping.  The digest covers node insertion order, every descriptor's
    address and hop count, and entry order within each view -- two runs
    are byte-identical if and only if their digests match.  This is what
    the cross-engine spec-execution tests pin.
    """
    views: Dict[Address, Sequence[NodeDescriptor]] = (
        source.views() if hasattr(source, "views") else source
    )
    h = hashlib.sha256()
    for address, entries in views.items():
        h.update(repr(address).encode())
        h.update(b":")
        for descriptor in entries:
            h.update(
                f"{descriptor.address!r},{descriptor.hop_count};".encode()
            )
        h.update(b"\n")
    return h.hexdigest()


class FailureHandle(churn_mod.CatastrophicFailure):
    """The compiled ``catastrophic-failure`` observer.

    Extends the simulation primitive with ``dead_links_after`` -- the
    dead-link count captured immediately after the crash, before any
    healing exchange -- which is the ``initial`` value the Figure 7
    artefact reports.
    """

    def __init__(self, at_cycle: int, fraction: float) -> None:
        super().__init__(at_cycle, fraction)
        self.dead_links_after: Optional[int] = None

    def before_cycle(self, engine: BaseEngine) -> None:  # type: ignore[override]
        fired_before = self.fired
        super().before_cycle(engine)
        if self.fired and not fired_before:
            self.dead_links_after = engine.dead_link_count()


class _CycleTraceObserver(Observer):
    """Quantized churn-trace execution for the cycle-driven engines.

    Every trace event whose time falls inside the upcoming cycle is
    applied at that cycle's start -- the closest synchronous analogue of
    the event engines' exact sub-cycle execution.
    """

    def __init__(self, runtime: "ScenarioRuntime") -> None:
        self._runtime = runtime

    def before_cycle(self, engine: BaseEngine) -> None:  # type: ignore[override]
        runtime = self._runtime
        trace = runtime.trace
        horizon = engine.cycle + 1
        while (
            runtime._trace_pos < len(trace)
            and trace[runtime._trace_pos].time < horizon
        ):
            runtime._apply_trace_event(trace[runtime._trace_pos])
            runtime._trace_pos += 1


class ScenarioRuntime:
    """A spec bound to one engine: compiled observers plus the run driver.

    Attributes
    ----------
    engine:
        The bound engine (any registry engine, or a caller-built one).
    spec:
        The scenario being executed.
    cycles:
        Total run length in gossip cycles.
    n_nodes:
        The resolved population parameter (bootstrap size or grow target).
    bootstrap_addresses:
        Addresses created by the bootstrap, in creation order (empty for
        the ``empty`` bootstrap) -- what the degree-tracing measurements
        sample from.
    handles:
        The compiled observer for every integer-cycle event, in
        declaration order (e.g. the :class:`FailureHandle` for a
        ``catastrophic-failure`` event).
    trace:
        The merged, time-sorted churn-trace timeline (empty without
        ``churn-trace`` events).
    adversary:
        The :class:`~repro.adversary.harness.AdversaryHandle` of the
        spec's ``adversary`` block (resolved attacker/victim placement),
        or ``None`` -- what the attack measurements read.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        engine: BaseEngine,
        cycles: int,
        n_nodes: int,
    ) -> None:
        self.spec = spec
        self.engine = engine
        self.cycles = cycles
        self.n_nodes = n_nodes
        self.bootstrap_addresses: List[Address] = []
        self.handles: List[Observer] = []
        self.trace: List[TraceEvent] = []
        self._sessions: Dict[tuple, Address] = {}
        self._trace_pos = 0
        # Event-driven engines expose run_time (sub-cycle advancement);
        # that is what makes exact-time trace execution possible.
        self._event_driven = callable(getattr(engine, "run_time", None))
        # The runtime clock advances on the engines' integer tick grid so
        # the rounded per-slice durations telescope exactly: the final
        # slice always lands on the cycle boundary (and fires its
        # observers) instead of one float-rounding tick short of it.
        self._ticks_per_period = (
            getattr(engine, "ticks_per_period", None) or (1 << 40)
        )
        # run_time takes simulated-time units; trace times and cycle
        # targets are denominated in gossip *periods*, so durations are
        # scaled by the engine's period on the way in.
        self._period = float(getattr(engine, "period", 1.0))
        self._clock_ticks = 0
        self.adversary = None

    # -- observer plumbing -------------------------------------------------

    def add_observer(self, observer: Observer) -> None:
        """Register a measurement observer on the bound engine."""
        self.engine.add_observer(observer)

    def handle(self, event_cls: type) -> Any:
        """The first compiled handle that is an ``event_cls`` instance."""
        for candidate in self.handles:
            if isinstance(candidate, event_cls):
                return candidate
        raise ConfigurationError(
            f"scenario {self.spec.name!r} compiled no {event_cls.__name__}"
        )

    # -- churn-trace execution ---------------------------------------------

    def _apply_trace_event(self, event: TraceEvent) -> None:
        engine = self.engine
        if event.action == _JOIN:
            alive = engine.addresses()
            contacts: List[Address] = (
                [engine.rng.choice(alive)] if alive else []
            )
            self._sessions[event.key] = engine.add_node(contacts=contacts)
        else:
            address = self._sessions.pop(event.key, None)
            if (
                address is not None
                and engine.is_alive(address)
                and len(engine) > 1
            ):
                engine.remove_node(address)

    # -- driving -----------------------------------------------------------

    def run_to_cycle(self, cycle: int) -> None:
        """Advance the run to the end of gossip cycle ``cycle``.

        Idempotent for cycles already completed.  On the event-driven
        engines the advancement is sliced around the churn-trace
        timeline so every join/leave executes at its exact simulated
        time; the cycle-driven engines apply trace events through their
        per-cycle observer instead.
        """
        if self._event_driven:
            tpp = self._ticks_per_period
            target_ticks = cycle * tpp
            trace = self.trace
            while self._trace_pos < len(trace):
                event = trace[self._trace_pos]
                event_ticks = round(event.time * tpp)
                if event_ticks > target_ticks:
                    break
                self._trace_pos += 1
                if event_ticks > self._clock_ticks:
                    self.engine.run_time(  # type: ignore[attr-defined]
                        (event_ticks - self._clock_ticks)
                        / tpp
                        * self._period
                    )
                    self._clock_ticks = event_ticks
                self._apply_trace_event(event)
            if target_ticks > self._clock_ticks:
                self.engine.run_time(  # type: ignore[attr-defined]
                    (target_ticks - self._clock_ticks) / tpp * self._period
                )
                self._clock_ticks = target_ticks
        else:
            delta = cycle - self.engine.cycle
            if delta > 0:
                self.engine.run(delta)

    def run_to_end(self) -> BaseEngine:
        """Run the remaining schedule; returns the engine for chaining."""
        self.run_to_cycle(self.cycles)
        return self.engine

    def views_digest(self) -> str:
        """Canonical digest of the engine's current overlay state."""
        return views_digest(self.engine)


def _resolve_growth(event: Grow, n_nodes: int, scale) -> GrowingScenario:
    target = event.target if event.target is not None else n_nodes
    if event.per_cycle is not None:
        per_cycle = event.per_cycle
    elif scale is not None:
        # ceil division: the paper's proportions at any target size.
        per_cycle = max(1, -(-target // scale.growth_cycles))
    else:
        per_cycle = max(1, target // 100)
    return GrowingScenario(target, per_cycle)


def compile_scenario(
    spec: ScenarioSpec,
    engine: BaseEngine,
    *,
    scale=None,
    n_nodes: Optional[int] = None,
    cycles: Optional[int] = None,
) -> ScenarioRuntime:
    """Bind ``spec`` to a caller-built ``engine`` and bootstrap it.

    ``n_nodes`` / ``cycles`` override the spec and the ``scale`` preset
    (resolution order: explicit argument > spec field > scale preset).
    The engine must be freshly constructed (the bootstrap populates it).
    Use :func:`prepare_run` to also build the engine from the registry.
    """
    resolved_nodes = n_nodes
    if resolved_nodes is None and scale is not None:
        resolved_nodes = scale.n_nodes
    if resolved_nodes is None:
        raise ConfigurationError(
            "compile_scenario needs n_nodes (explicitly or via scale=)"
        )
    resolved_cycles = cycles
    if resolved_cycles is None:
        resolved_cycles = spec.cycles
    if resolved_cycles is None and scale is not None:
        resolved_cycles = scale.cycles
    if resolved_cycles is None:
        raise ConfigurationError(
            "compile_scenario needs cycles (explicitly, via the spec, or "
            "via scale=)"
        )
    if (spec.latency is not None or spec.loss is not None) and not callable(
        getattr(engine, "run_time", None)
    ):
        raise ConfigurationError(
            f"scenario {spec.name!r} sets latency/loss, which only the "
            "event-driven engines model; compile it onto engine "
            "'event'/'fast-event' or drop the setting"
        )
    if len(engine) != 0:
        raise ConfigurationError(
            "compile_scenario bootstraps the population itself; pass a "
            f"freshly built engine (this one holds {len(engine)} nodes)"
        )
    runtime = ScenarioRuntime(spec, engine, resolved_cycles, resolved_nodes)
    # Partition/heal events pair by *time*, like the spec validation
    # nests them -- declaration order is free-form, so a heal may be
    # declared before its partition.  Validation guarantees the sorted
    # timelines alternate split/heal with heal strictly later.
    partition_pairs = list(
        zip(
            sorted(spec.events_of(Partition), key=lambda e: e.at_cycle),
            sorted(spec.events_of(Heal), key=lambda e: e.at_cycle),
        )
    )
    # 1. bootstrap (the fast engines take their bulk path inside
    #    random_bootstrap, so cycle-family byte-identity is preserved).
    if spec.bootstrap == "random":
        runtime.bootstrap_addresses = random_bootstrap(
            engine, resolved_nodes, view_fill=spec.view_fill
        )
    elif spec.bootstrap == "lattice":
        runtime.bootstrap_addresses = lattice_bootstrap(
            engine, resolved_nodes, view_fill=spec.view_fill
        )
    # "empty": nothing -- the grow event populates the overlay.
    # 1b. adversary placement binds to the bootstrap population, before
    #     any event observer runs (spec validation guarantees a non-empty
    #     bootstrap whenever an adversary block is present).
    if spec.adversary is not None:
        from repro.adversary.harness import install_adversary

        runtime.adversary = install_adversary(runtime)
    # 2. integer-cycle events become observers: grow/failure/churn in
    #    declaration order, then the time-paired partitions.
    trace_index = 0
    for event in spec.events:
        if isinstance(event, Grow):
            handle: Observer = _resolve_growth(event, resolved_nodes, scale)
        elif isinstance(event, CatastrophicFailure):
            handle = FailureHandle(event.at_cycle, event.fraction)
        elif isinstance(event, ContinuousChurn):
            handle = churn_mod.ContinuousChurn(
                event.joins_per_cycle, event.leaves_per_cycle
            )
        elif isinstance(event, (Partition, Heal)):
            continue  # paired by time above, compiled below
        elif isinstance(event, ChurnTrace):
            runtime.trace.extend(
                generate_trace(event, resolved_cycles, trace_index)
            )
            trace_index += 1
            continue
        else:  # pragma: no cover - spec validation rejects unknown events
            raise ConfigurationError(f"uncompilable event {event!r}")
        engine.add_observer(handle)
        runtime.handles.append(handle)
    for split, heal in partition_pairs:
        handle = churn_mod.TemporaryPartition(
            split.at_cycle, heal.at_cycle, split.n_groups
        )
        engine.add_observer(handle)
        runtime.handles.append(handle)
    if trace_index > 1:
        runtime.trace.sort(key=lambda e: (e.time, e.key, e.action))
    # 3. cycle-driven engines apply the trace through a per-cycle
    #    observer; event-driven engines slice run_time in run_to_cycle.
    if runtime.trace and not runtime._event_driven:
        engine.add_observer(_CycleTraceObserver(runtime))
    return runtime


def prepare_run(
    spec: ScenarioSpec,
    config: ProtocolConfig,
    *,
    scale=None,
    seed: Optional[int] = None,
    engine: Optional[str] = None,
    rng: Optional[random.Random] = None,
    n_nodes: Optional[int] = None,
    cycles: Optional[int] = None,
    **engine_kwargs: Any,
) -> ScenarioRuntime:
    """Build the engine named by ``engine`` / ``$REPRO_ENGINE`` and bind
    ``spec`` to it.

    This is the one entry point every artefact module uses: the engine
    comes from the registry (honoring the scale preset's default engine,
    exactly like :func:`~repro.experiments.common.make_engine`), the
    spec's latency/loss settings are forwarded -- and eagerly rejected
    for cycle-family engines -- and the bootstrap plus schedule are
    compiled as in :func:`compile_scenario`.
    """
    from repro.experiments.common import current_scale, make_engine

    if scale is None:
        scale = current_scale()
    instance = make_engine(
        config,
        seed=seed,
        engine=engine,
        rng=rng,
        scale=scale,
        latency=spec.latency,
        loss=spec.loss,
        **engine_kwargs,
    )
    return compile_scenario(
        spec, instance, scale=scale, n_nodes=n_nodes, cycles=cycles
    )

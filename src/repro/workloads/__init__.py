"""Declarative workload API: one scenario spec, every engine.

The package separates *what happens to the overlay* from *which executor
runs it*:

- :mod:`repro.workloads.spec` -- :class:`ScenarioSpec`, a serializable
  bootstrap + typed event schedule (``grow``, ``catastrophic-failure``,
  ``continuous-churn``, ``churn-trace``, ``partition``/``heal``) with
  eager validation and JSON round-tripping, plus the optional
  ``adversary`` block (:class:`AdversarySpec`) that arms
  :mod:`repro.adversary` attacks over the bootstrap population;
- :mod:`repro.workloads.library` -- the built-in named scenarios (the
  paper's workloads, scale-parameterized);
- :mod:`repro.workloads.runtime` -- :func:`prepare_run` /
  :func:`compile_scenario`, compiling a spec into the right observers
  and run-loop hooks for any registry engine (``cycle``, ``fast``,
  ``event``, ``fast-event``, ``live``), including exact sub-cycle
  churn-trace execution on the event engines;
- :mod:`repro.workloads.plan` -- :class:`ExperimentPlan`
  (``protocols x scenario x scales x engines x seeds``) and
  :func:`run_plan`, the single driver behind
  ``repro-experiments run-spec``.

Quickstart::

    from repro import newscast
    from repro.workloads import (
        CatastrophicFailure, ScenarioSpec, prepare_run,
    )

    spec = ScenarioSpec(
        name="heal-demo",
        bootstrap="random",
        cycles=60,
        events=(CatastrophicFailure(at_cycle=40, fraction=0.5),),
    )
    runtime = prepare_run(
        spec, newscast(view_size=12), n_nodes=300, seed=1, engine="fast"
    )
    runtime.run_to_end()
    print(runtime.handle(type(runtime.handles[0])).dead_links_after)

Every artefact module (``repro.experiments.table1`` ... ``figure7``)
builds its runs through this API; the cross-engine byte-identity of a
spec execution is pinned by ``tests/workloads/test_cross_engine.py``.
"""

from repro.core.errors import PlanExecutionError
from repro.workloads.library import SCENARIOS, named_scenario
from repro.workloads.plan import (
    MEASUREMENTS,
    ExperimentPlan,
    PlanCell,
    PlanResult,
    RunRecord,
    execute_cell,
    plan_cells,
    run_plan,
    run_plans,
)
from repro.workloads.runtime import (
    FailureHandle,
    ScenarioRuntime,
    compile_scenario,
    generate_trace,
    prepare_run,
    views_digest,
    warm_shared_caches,
)
from repro.workloads.spec import (
    ADVERSARY_KINDS,
    BOOTSTRAP_KINDS,
    EVENT_KINDS,
    AdversarySpec,
    CatastrophicFailure,
    ChurnTrace,
    ContinuousChurn,
    Grow,
    Heal,
    Partition,
    ScenarioEvent,
    ScenarioSpec,
)

__all__ = [
    "ADVERSARY_KINDS",
    "BOOTSTRAP_KINDS",
    "EVENT_KINDS",
    "MEASUREMENTS",
    "SCENARIOS",
    "AdversarySpec",
    "CatastrophicFailure",
    "ChurnTrace",
    "ContinuousChurn",
    "ExperimentPlan",
    "FailureHandle",
    "Grow",
    "Heal",
    "Partition",
    "PlanCell",
    "PlanExecutionError",
    "PlanResult",
    "RunRecord",
    "ScenarioEvent",
    "ScenarioRuntime",
    "ScenarioSpec",
    "compile_scenario",
    "execute_cell",
    "generate_trace",
    "named_scenario",
    "plan_cells",
    "prepare_run",
    "run_plan",
    "run_plans",
    "run_scenario",
    "views_digest",
    "warm_shared_caches",
]


def run_scenario(spec, config, **kwargs):
    """Prepare and run a spec in one call; returns the finished runtime.

    Convenience wrapper over :func:`prepare_run` +
    :meth:`~repro.workloads.runtime.ScenarioRuntime.run_to_end` for
    scripts that only need the final state.
    """
    runtime = prepare_run(spec, config, **kwargs)
    runtime.run_to_end()
    return runtime

"""``live``: an engine-shaped runner that gossips over real datagrams.

:class:`LiveEngine` implements the cycle-driven engine contract
(:class:`~repro.simulation.base.BaseEngine`: population management,
observers, ``views()``, ``run(cycles)``) but executes every exchange as
the deployed stack would: the request and reply are *encoded to wire
bytes* (codec v2), shipped through an in-process loopback datagram
transport on an asyncio loop, decoded, and merged by a
:class:`~repro.net.daemon.GossipDaemon` under the service lock.

Relation to the three simulation engines (see ROADMAP):

- like :class:`~repro.simulation.engine.CycleEngine`, time advances in
  cycles and every live node initiates once per cycle in a fresh random
  permutation; exchanges complete within the initiator's turn;
- unlike any simulator, nothing is passed by reference -- if the codec,
  the envelope, the transport or the daemon's correlation/timeout logic
  mishandled a message, the overlay would visibly diverge.

Because the wire round-trip is lossless and the node logic draws from the
shared engine RNG in the same order, a ``LiveEngine`` run is
**byte-identical** to a ``CycleEngine`` run with the same seed (pinned by
``tests/net/test_live_engine.py``) -- the strongest possible validation
that the deployment layer implements the same protocol the paper's
numbers come from.  It is meant for small-N validation, not scale: every
message is genuinely serialized, scheduled and parsed.

Select it like any other engine: ``make_engine(..., engine="live")`` or
``REPRO_ENGINE=live``.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Optional

from repro.core.config import NetworkConfig, ProtocolConfig
from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError
from repro.core.service import PeerSamplingService
from repro.net.daemon import GossipDaemon
from repro.net.transport import LoopbackNetwork, LoopbackTransport
from repro.simulation.base import BaseEngine

__all__ = ["LiveEngine"]


class LiveEngine(BaseEngine):
    """Cycle-driven executor whose exchanges cross a datagram transport.

    See the module docstring for semantics.  Custom ``node_factory``
    protocols are not supported: the daemon speaks the generic wire
    format, which encodes exactly the Figure 1 message kinds.

    Example
    -------
    >>> from repro.net.engine import LiveEngine
    >>> from repro.core.config import newscast
    >>> from repro.simulation.scenarios import random_bootstrap
    >>> engine = LiveEngine(newscast(view_size=10), seed=1)
    >>> random_bootstrap(engine, n_nodes=25)
    >>> engine.run(cycles=5)
    >>> engine.cycle
    5
    """

    shuffle_each_cycle: bool = True
    """Same contract as ``CycleEngine.shuffle_each_cycle``."""

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        node_factory=None,
        omniscient_peer_selection: bool = True,
        network: Optional[NetworkConfig] = None,
    ) -> None:
        if node_factory is not None:
            raise ConfigurationError(
                "LiveEngine runs the built-in generic protocol only; "
                "use CycleEngine for custom node factories"
            )
        super().__init__(
            config=config,
            seed=seed,
            rng=rng,
            omniscient_peer_selection=omniscient_peer_selection,
        )
        if network is None:
            # Lockstep cycles need no wall-clock pacing; the timeout only
            # fires for genuinely lost messages, so keep it short.
            network = NetworkConfig(
                cycle_seconds=0.05, jitter=0.0, request_timeout=0.2
            )
        self.network_config = network
        # No latency/loss models here: the live engine validates the wire
        # stack against the cycle model, where delivery is reliable.
        # Lossy/latency studies belong to LocalCluster and EventEngine.
        self._network = LoopbackNetwork(rng=random.Random(0))
        self._daemons: Dict[Address, GossipDaemon] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- event loop management --------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None or self._loop.is_closed():
            self._loop = asyncio.new_event_loop()
        return self._loop

    def close(self) -> None:
        """Release the engine's private event loop (idempotent)."""
        if self._loop is not None and not self._loop.is_closed():
            self._loop.close()
        self._loop = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- population management --------------------------------------------

    def _on_node_added(self, address: Address) -> None:
        node = self._nodes[address]
        transport = LoopbackTransport(self._network, address)
        transport.open()
        daemon = GossipDaemon(
            node,
            transport,
            self.network_config,
            # Daemon-local randomness (jitter, first exchange id) must not
            # consume the shared protocol RNG or parity with CycleEngine
            # would break; jitter is unused in lockstep anyway.
            rng=random.Random(len(self._daemons)),
        )
        self._daemons[address] = daemon

    def _teardown_daemon(self, address: Address) -> None:
        daemon = self._daemons.pop(address, None)
        if daemon is None:
            return
        daemon.transport.close_now()
        daemon.cancel_pending()

    def remove_node(self, address: Address) -> None:
        """Crash the node at ``address`` (other views keep its descriptors)."""
        super().remove_node(address)
        self._teardown_daemon(address)

    def crash_random_nodes(self, count: int) -> List[Address]:
        """Crash ``count`` uniformly random nodes; return their addresses."""
        victims = super().crash_random_nodes(count)
        for victim in victims:
            self._teardown_daemon(victim)
        return victims

    def service(self, address: Address) -> PeerSamplingService:
        """The *daemon's* service for ``address`` (shares its view lock)."""
        daemon = self._daemons.get(address)
        if daemon is not None:
            return daemon.service
        return super().service(address)

    def daemon(self, address: Address) -> GossipDaemon:
        """The daemon running the node at ``address`` (for instrumentation)."""
        return self._daemons[address]

    # -- execution ---------------------------------------------------------

    def run_cycle(self) -> None:
        """Execute one full cycle: every live node initiates once, over
        the wire."""
        self._notify_before_cycle()
        loop = self._ensure_loop()
        loop.run_until_complete(self._gossip_round())
        self.cycle += 1
        self._notify_after_cycle()

    def run(self, cycles: int) -> None:
        """Execute ``cycles`` consecutive cycles."""
        for _ in range(cycles):
            self.run_cycle()

    async def _gossip_round(self) -> None:
        order = list(self._nodes)
        if self.shuffle_each_cycle:
            self.rng.shuffle(order)
        for address in order:
            daemon = self._daemons.get(address)
            if daemon is None:
                continue  # crashed by an observer mid-cycle
            with daemon.service.lock:
                exchange = daemon.node.begin_exchange()
            if exchange is None:
                continue
            if exchange.peer not in self._nodes:
                # Message to a dead address: the cycle engine counts it
                # failed without a delivery attempt; mirroring that here
                # keeps the counters byte-identical under non-omniscient
                # peer selection (and skips a real-time pull timeout).
                self.failed_exchanges += 1
                continue
            if self.reachable is not None and not self.reachable(
                address, exchange.peer
            ):
                # Engine-level partition model, applied exactly where the
                # cycle engine applies it: after peer selection, before
                # the send -- no timeout is wasted on a known partition.
                self.failed_exchanges += 1
                continue
            completed = await daemon.initiate(exchange)
            if completed:
                if not daemon.node.config.pull:
                    # Push sends are fire-and-forget; give the loop one
                    # turn so the passive side merges before the next
                    # initiator acts (the cycle model's semantics).
                    await asyncio.sleep(0)
                self.completed_exchanges += 1
            else:
                # initiate() only returns False on a pull timeout: the
                # peer crashed (non-omniscient selection) or the reply
                # was lost -- a failed exchange in the cycle model too.
                self.failed_exchanges += 1

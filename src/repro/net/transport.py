"""Datagram transports for the deployed peer sampling service.

Two interchangeable implementations of one tiny abstraction
(:class:`DatagramTransport`): fire-and-forget datagrams between opaque
addresses, delivered to a receive callback.

- :class:`UdpTransport` -- real asyncio UDP sockets.  Addresses are
  ``"host:port"`` strings, which doubles as the node address on the wire:
  the source address of an incoming datagram *is* the sender's gossip
  address, so messages need no explicit sender field.
- :class:`LoopbackTransport` -- in-process delivery through a shared
  :class:`LoopbackNetwork`.  Deterministic given a seeded RNG, it reuses
  the simulation's :class:`~repro.simulation.network.LatencyModel` /
  :class:`~repro.simulation.network.LossModel` implementations to delay
  and drop datagrams, so the same network assumptions drive the
  event-driven simulator and the deployed daemon's tests.

Both transports deliver datagrams as ``receiver(data, sender_address)``
callbacks on the event loop thread and never raise from ``send`` for
transient conditions: an unroutable destination is a lost datagram, which
is exactly the failure model of the paper (no failure detector -- dead
links decay through the view dynamics).
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, Dict, Optional, Tuple

from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError, ReproError
from repro.simulation.network import LatencyModel, LossModel

__all__ = [
    "DatagramTransport",
    "LoopbackNetwork",
    "LoopbackTransport",
    "TransportError",
    "UdpTransport",
    "format_address",
    "parse_address",
]

Receiver = Callable[[bytes, Address], None]


class TransportError(ReproError):
    """A transport could not be started or used."""


def format_address(host: str, port: int) -> str:
    """The canonical ``"host:port"`` node address of a UDP endpoint."""
    return f"{host}:{port}"


def parse_address(address: Address) -> Tuple[str, int]:
    """Split a ``"host:port"`` node address into socket address parts."""
    if not isinstance(address, str) or ":" not in address:
        raise TransportError(f"not a host:port address: {address!r}")
    host, _, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise TransportError(f"not a host:port address: {address!r}") from None
    if not 0 < port < 65536:
        raise TransportError(f"port out of range in address: {address!r}")
    return host, port


class DatagramTransport:
    """Abstract fire-and-forget datagram endpoint.

    Lifecycle: construct, assign :attr:`receiver`, ``await start()``, use
    :meth:`send`, ``await close()``.  ``start`` is idempotent so owners
    that resolve their address early (ephemeral UDP ports) can start the
    transport before handing it to a daemon.
    """

    receiver: Optional[Receiver] = None
    """Callback ``(data, sender_address)`` for every received datagram."""

    @property
    def local_address(self) -> Address:
        """The address peers can reach this endpoint at."""
        raise NotImplementedError

    async def start(self) -> None:
        """Bind/register the endpoint (idempotent)."""
        raise NotImplementedError

    def send(self, destination: Address, data: bytes) -> None:
        """Send one datagram; losses are silent (the paper's model)."""
        raise NotImplementedError

    async def close(self) -> None:
        """Release the endpoint; no datagrams are delivered afterwards."""
        raise NotImplementedError


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self, owner: "UdpTransport") -> None:
        self._owner = owner

    def datagram_received(self, data: bytes, addr: Tuple) -> None:
        receiver = self._owner.receiver
        if receiver is not None:
            receiver(bytes(data), format_address(addr[0], addr[1]))

    def error_received(self, exc: Exception) -> None:
        # ICMP port-unreachable and friends: a lost datagram, by design.
        self._owner.send_errors += 1


class UdpTransport(DatagramTransport):
    """Asyncio UDP endpoint on ``host:port`` (port 0 = ephemeral).

    The bound address (known after :meth:`start`) is the node's gossip
    address; descriptors carrying it are routable by every other daemon.
    Because that identity travels in every message, binding a wildcard
    interface requires an explicit ``advertise_host`` -- advertising
    ``0.0.0.0`` would poison every view it reaches with an unroutable
    address.
    """

    _WILDCARDS = ("0.0.0.0", "::", "")

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        advertise_host: Optional[str] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._advertise_host = advertise_host
        self._transport: Optional[asyncio.DatagramTransport] = None
        self.send_errors = 0

    @property
    def local_address(self) -> str:
        if self._transport is None:
            raise TransportError("transport not started")
        return format_address(self._host, self._port)

    async def start(self) -> None:
        if self._transport is not None:
            return
        loop = asyncio.get_running_loop()
        try:
            transport, _ = await loop.create_datagram_endpoint(
                lambda: _UdpProtocol(self),
                local_addr=(self._host, self._port),
            )
        except OSError as exc:
            raise TransportError(
                f"cannot bind UDP {self._host}:{self._port}: {exc}"
            ) from exc
        self._transport = transport
        sockname = transport.get_extra_info("sockname")
        self._host, self._port = sockname[0], sockname[1]
        if self._advertise_host is not None:
            self._host = self._advertise_host
        elif self._host in self._WILDCARDS:
            transport.close()
            self._transport = None
            raise TransportError(
                f"bound to wildcard {sockname[0]!r}: peers could never "
                "route to it; bind a concrete interface or pass "
                "advertise_host"
            )

    def send(self, destination: Address, data: bytes) -> None:
        if self._transport is None or self._transport.is_closing():
            return
        try:
            self._transport.sendto(data, parse_address(destination))
        except (OSError, TransportError):
            self.send_errors += 1

    async def close(self) -> None:
        if self._transport is None:
            return
        self._transport.close()
        self._transport = None
        # Give the loop one turn to run the close callbacks.
        await asyncio.sleep(0)


class LoopbackNetwork:
    """Shared in-process medium connecting :class:`LoopbackTransport` ends.

    Delivery happens through the running event loop (``call_soon`` without
    a latency model, ``call_later`` with one), so ordering is the loop's
    deterministic FIFO and a seeded RNG makes every run reproducible.  The
    latency/loss models are the very classes the event-driven simulator
    uses -- one network-assumption vocabulary across simulation and
    deployment testing.
    """

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        time_scale: float = 1.0,
    ) -> None:
        if time_scale < 0:
            raise ConfigurationError(
                f"time_scale must be >= 0, got {time_scale}"
            )
        self.rng = rng if rng is not None else random.Random()
        self.latency = latency
        self.loss = loss
        self.time_scale = time_scale
        """Seconds per simulated latency unit (0 = deliver via call_soon)."""
        self._endpoints: Dict[Address, "LoopbackTransport"] = {}
        self.delivered = 0
        self.dropped = 0
        self.unroutable = 0

    def register(self, endpoint: "LoopbackTransport") -> None:
        address = endpoint.local_address
        if address in self._endpoints:
            raise ConfigurationError(
                f"loopback address {address!r} already registered"
            )
        self._endpoints[address] = endpoint

    def unregister(self, address: Address) -> None:
        self._endpoints.pop(address, None)

    def deliver(self, sender: Address, destination: Address, data: bytes) -> None:
        """Route one datagram, applying the loss and latency models."""
        if self.loss is not None and self.loss.drops(self.rng):
            self.dropped += 1
            return
        delay = 0.0
        if self.latency is not None:
            delay = self.latency.sample(self.rng) * self.time_scale
        loop = asyncio.get_running_loop()
        if delay > 0:
            loop.call_later(delay, self._arrive, sender, destination, data)
        else:
            loop.call_soon(self._arrive, sender, destination, data)

    def _arrive(self, sender: Address, destination: Address, data: bytes) -> None:
        endpoint = self._endpoints.get(destination)
        if endpoint is None:
            # Crashed or never-existing node: the datagram evaporates.
            self.unroutable += 1
            return
        receiver = endpoint.receiver
        if receiver is not None:
            self.delivered += 1
            receiver(data, sender)


class LoopbackTransport(DatagramTransport):
    """One endpoint of a :class:`LoopbackNetwork` (any hashable address)."""

    def __init__(self, network: LoopbackNetwork, address: Address) -> None:
        self._network = network
        self._address = address
        self._open = False

    @property
    def local_address(self) -> Address:
        return self._address

    def open(self) -> None:
        """Synchronous registration (needs no running loop)."""
        if not self._open:
            self._network.register(self)
            self._open = True

    def close_now(self) -> None:
        """Synchronous deregistration (needs no running loop)."""
        if self._open:
            self._network.unregister(self._address)
            self._open = False

    async def start(self) -> None:
        self.open()

    def send(self, destination: Address, data: bytes) -> None:
        if self._open:
            self._network.deliver(self._address, destination, data)

    async def close(self) -> None:
        self.close_now()

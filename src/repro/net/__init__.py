"""Deployment layer: the peer sampling service over real datagrams.

The paper defines the peer sampling service as deployable middleware
(Section 2); this package is the execution layer that makes the library's
node logic an actual networked daemon:

- :mod:`repro.net.transport` -- the datagram abstraction: asyncio UDP
  sockets and a deterministic in-process loopback (which reuses the
  simulator's latency/loss models);
- :mod:`repro.net.daemon` -- :class:`GossipDaemon`, the Figure 1
  active/passive threads as asyncio tasks with per-cycle jitter, request
  timeouts and late-reply drop;
- :mod:`repro.net.cluster` -- :class:`LocalCluster`, a harness booting N
  daemons on localhost, injecting churn and feeding live view snapshots
  into the standard :mod:`repro.graph`/:mod:`repro.stats` pipelines;
- :mod:`repro.net.engine` -- :class:`LiveEngine`, the ``live`` entry of
  the engine registry: the cycle model executed over the wire stack,
  byte-identical to ``CycleEngine`` for the same seed;
- :mod:`repro.net.cli` -- the ``repro-node`` console entry point.

Quickstart (deterministic in-process cluster)::

    from repro.core.config import newscast
    from repro.net import LocalCluster

    cluster = LocalCluster(newscast(view_size=15), n_nodes=50,
                           transport="loopback", seed=1)
    print(cluster.run(cycles=30))   # boots, gossips, summarizes, stops

or over real UDP sockets: ``transport="udp"`` (see
``examples/live_cluster.py`` and the ``repro-node`` CLI for multi-process
deployments).
"""

from repro.core.config import NetworkConfig
from repro.net.cluster import LocalCluster, in_degrees, summarize_views
from repro.net.daemon import DaemonStats, GossipDaemon
from repro.net.engine import LiveEngine
from repro.net.transport import (
    DatagramTransport,
    LoopbackNetwork,
    LoopbackTransport,
    TransportError,
    UdpTransport,
    format_address,
    parse_address,
)

__all__ = [
    "DaemonStats",
    "DatagramTransport",
    "GossipDaemon",
    "LiveEngine",
    "LocalCluster",
    "LoopbackNetwork",
    "LoopbackTransport",
    "NetworkConfig",
    "TransportError",
    "UdpTransport",
    "format_address",
    "in_degrees",
    "parse_address",
    "summarize_views",
]

"""Local-cluster harness: boot N daemons, gossip, measure, shut down.

:class:`LocalCluster` is the deployment-layer counterpart of the
simulation engines: it boots one :class:`~repro.net.daemon.GossipDaemon`
per node -- over real localhost UDP sockets or the deterministic loopback
transport -- bootstraps their views randomly (the paper's random
initialization scenario), and drives gossip either in *lockstep cycles*
(every live daemon initiates once per round; exchanges overlap in time
like real traffic but rounds are barriers, so results are comparable to
the cycle-driven engines) or *free-running* on each daemon's own jittered
wall-clock timer.

Live view snapshots feed the existing analysis pipelines unchanged:
:meth:`LocalCluster.snapshot` returns a
:class:`~repro.graph.snapshot.GraphSnapshot`, and
:meth:`LocalCluster.summary` computes the Figure-2-style metrics
(in-degree distribution, clustering coefficient, average path length)
from a *running* cluster.

Churn is injected with :meth:`kill` / :meth:`crash_random` (daemons stop
mid-flight; their descriptors decay out of other views, exactly the
self-healing dynamics of Figure 7) and :meth:`spawn` (a joiner
bootstrapped from live contacts) -- or declaratively:
:meth:`LocalCluster.run_spec` executes the membership schedule of a
:class:`~repro.workloads.spec.ScenarioSpec` (``grow``,
``catastrophic-failure``, ``continuous-churn``, ``churn-trace``) against
the *live* daemons, each event quantized to a lockstep round start, so
the same workload document that drives the simulation engines also
drives a real datagram cluster.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import NetworkConfig, ProtocolConfig
from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ConfigurationError, NodeNotFoundError
from repro.core.protocol import GossipNode
from repro.graph.metrics import average_path_length, clustering_coefficient
from repro.graph.snapshot import GraphSnapshot
from repro.net.daemon import GossipDaemon
from repro.net.transport import (
    LoopbackNetwork,
    LoopbackTransport,
    UdpTransport,
)

__all__ = ["LocalCluster", "in_degrees", "summarize_views"]


def in_degrees(views: Dict[Address, Sequence[NodeDescriptor]]) -> np.ndarray:
    """Directed in-degrees of the live nodes, aligned with ``list(views)``.

    Entry ``i`` counts how many *other* live views hold a descriptor of
    node ``i``.  Descriptors pointing at dead addresses are ignored, like
    :class:`~repro.graph.snapshot.GraphSnapshot` construction does.
    """
    index = {address: i for i, address in enumerate(views)}
    counts = np.zeros(len(views), dtype=np.int64)
    for address, entries in views.items():
        own = index[address]
        for descriptor in entries:
            target = index.get(descriptor.address)
            if target is not None and target != own:
                counts[target] += 1
    return counts


def summarize_views(
    views: Dict[Address, Sequence[NodeDescriptor]],
    clustering_sample: Optional[int] = None,
    path_sources: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Dict[str, float]:
    """Figure-2-style metrics of one view snapshot.

    Returns in-degree summary statistics (directed) plus the clustering
    coefficient and average path length of the undirected communication
    graph -- computed with the same :mod:`repro.graph` pipeline the
    simulation experiments use.
    """
    if rng is None:
        rng = random.Random(0)
    degrees = in_degrees(views)
    snapshot = GraphSnapshot.from_views(views)
    return {
        "nodes": float(len(views)),
        "in_degree_mean": float(degrees.mean()) if degrees.size else 0.0,
        "in_degree_std": float(degrees.std(ddof=1)) if degrees.size > 1 else 0.0,
        "in_degree_min": float(degrees.min()) if degrees.size else 0.0,
        "in_degree_max": float(degrees.max()) if degrees.size else 0.0,
        "clustering": clustering_coefficient(
            snapshot, sample=clustering_sample, rng=rng
        ),
        "average_path_length": average_path_length(
            snapshot, n_sources=path_sources, rng=rng
        ),
    }


class LocalCluster:
    """N gossip daemons on one machine, over UDP or loopback transports.

    Parameters
    ----------
    protocol:
        The protocol instance every daemon runs.
    n_nodes:
        Initial cluster size.
    network:
        Timing knobs shared by all daemons (jitter is drawn per daemon).
    transport:
        ``"udp"`` for real localhost sockets (ephemeral ports) or
        ``"loopback"`` for deterministic in-process delivery.
    seed:
        Seeds the master RNG that derives per-daemon RNGs, the bootstrap
        topology and the loopback network's latency/loss draws; runs with
        the same seed over the loopback transport are reproducible.
    latency / loss:
        Optional :mod:`repro.simulation.network` models applied by the
        loopback transport (ignored for UDP -- the kernel provides the
        real thing).
    host:
        Bind interface for UDP transports; defaults to the network
        config's :attr:`~repro.core.config.NetworkConfig.bind_host`.

    Usage is async-context-manager shaped but explicit: ``await start()``,
    drive, ``await stop()``.  :meth:`run` wraps an entire session for
    synchronous callers.
    """

    def __init__(
        self,
        protocol: ProtocolConfig,
        n_nodes: int,
        network: Optional[NetworkConfig] = None,
        transport: str = "udp",
        seed: Optional[int] = None,
        latency=None,
        loss=None,
        host: Optional[str] = None,
    ) -> None:
        if n_nodes < 2:
            raise ConfigurationError(
                f"a cluster needs at least 2 nodes, got {n_nodes}"
            )
        if transport not in ("udp", "loopback"):
            raise ConfigurationError(
                f"transport must be 'udp' or 'loopback', got {transport!r}"
            )
        self.protocol = protocol
        self.network_config = network if network is not None else NetworkConfig()
        self.transport_kind = transport
        self.rng = random.Random(seed)
        self.host = host if host is not None else self.network_config.bind_host
        self.daemons: Dict[Address, GossipDaemon] = {}
        self.loopback: Optional[LoopbackNetwork] = (
            LoopbackNetwork(rng=self.rng, latency=latency, loss=loss)
            if transport == "loopback"
            else None
        )
        self._initial_size = n_nodes
        self._started = False
        self._free_running = False
        self._next_loopback_id = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self, free_running: bool = False) -> None:
        """Boot all daemons and bootstrap the overlay.

        ``free_running=True`` starts each daemon's own jittered periodic
        task (wall-clock gossip); otherwise the cluster is driven in
        lockstep through :meth:`run_cycles`.
        """
        if self._started:
            return
        self._free_running = free_running
        daemons = [
            await self._boot_daemon() for _ in range(self._initial_size)
        ]
        addresses = [daemon.address for daemon in daemons]
        # The paper's random-initialization scenario: every view starts as
        # a uniform random sample of the other nodes, hop count 0.
        capacity = self.protocol.view_size
        fill = min(capacity, len(addresses) - 1)
        for daemon in daemons:
            others = self.rng.sample(addresses, fill + 1)
            contacts = [a for a in others if a != daemon.address][:fill]
            daemon.service.init(contacts)
        for daemon in daemons:
            await daemon.start(run_loop=free_running)
        self._started = True

    async def _boot_daemon(
        self, contacts: Sequence[Address] = ()
    ) -> GossipDaemon:
        if self.transport_kind == "udp":
            transport = UdpTransport(self.host, 0)
            await transport.start()  # resolve the ephemeral port
        else:
            transport = LoopbackTransport(
                self.loopback, f"node-{self._next_loopback_id}"
            )
            self._next_loopback_id += 1
            await transport.start()
        address = transport.local_address
        node = GossipNode(
            address,
            self.protocol,
            random.Random(self.rng.getrandbits(64)),
        )
        daemon = GossipDaemon(
            node,
            transport,
            self.network_config,
            rng=random.Random(self.rng.getrandbits(64)),
        )
        if contacts:
            daemon.service.init(list(contacts))
        self.daemons[address] = daemon
        return daemon

    async def stop(self) -> None:
        """Stop every daemon and release every socket/endpoint."""
        for daemon in list(self.daemons.values()):
            await daemon.stop()
        self.daemons.clear()
        self._started = False

    # -- driving -----------------------------------------------------------

    async def run_cycles(self, cycles: int) -> None:
        """Drive ``cycles`` lockstep rounds (only when not free-running).

        In each round every live daemon initiates exactly once; the
        initiations run concurrently (requests, replies and merges
        interleave on the loop like real traffic), and the round barrier
        awaits them all -- the networked analogue of the cycle model.
        """
        if self._free_running:
            raise ConfigurationError(
                "run_cycles() is for lockstep clusters; this one free-runs"
            )
        for _ in range(cycles):
            await asyncio.gather(
                *(d.run_cycle() for d in list(self.daemons.values()))
            )

    async def run_for(self, seconds: float) -> None:
        """Let a free-running cluster gossip for a wall-clock duration."""
        await asyncio.sleep(seconds)

    async def run_spec(
        self,
        spec,
        cycles: Optional[int] = None,
        on_cycle=None,
    ) -> Dict[str, int]:
        """Execute a :class:`~repro.workloads.spec.ScenarioSpec` schedule
        against the live cluster, one lockstep round per gossip cycle.

        The cluster analogue of
        :func:`repro.workloads.runtime.compile_scenario`: ``grow``
        batches call :meth:`spawn`, ``catastrophic-failure`` crashes the
        configured fraction, ``continuous-churn`` spawns/crashes at every
        round start, and ``churn-trace`` timelines are generated with the
        same :func:`~repro.workloads.runtime.generate_trace` the
        simulation engines replay -- quantized to round starts like the
        cycle family does.  ``partition``/``heal`` events and spec-level
        latency/loss are rejected: real transports have no oracle switch
        (configure loss/latency on the loopback network at construction
        instead).

        The cluster must be started (lockstep) and, because its
        :meth:`start` already performs the random bootstrap, only
        ``bootstrap: "random"`` specs apply.  ``cycles`` overrides the
        spec's run length; ``on_cycle(cycle, cluster)`` is invoked after
        every round.  Returns churn totals.
        """
        from repro.workloads.runtime import generate_trace
        from repro.workloads.spec import (
            CatastrophicFailure,
            ChurnTrace,
            ContinuousChurn,
            Grow,
            Heal,
            Partition,
        )

        if not self._started or self._free_running:
            raise ConfigurationError(
                "run_spec drives a started, lockstep cluster; call "
                "await start(free_running=False) first"
            )
        if spec.bootstrap != "random":
            raise ConfigurationError(
                f"the cluster bootstraps randomly at start(); spec "
                f"bootstrap {spec.bootstrap!r} is not executable here"
            )
        if spec.latency is not None or spec.loss is not None:
            raise ConfigurationError(
                "spec-level latency/loss do not apply to a live cluster; "
                "pass latency=/loss= to LocalCluster (loopback transport) "
                "instead"
            )
        unsupported = [
            event.kind
            for event in spec.events
            if isinstance(event, (Partition, Heal))
        ]
        if unsupported:
            raise ConfigurationError(
                f"event kind(s) {sorted(set(unsupported))} need the "
                "engines' reachability oracle; a live transport cannot "
                "execute them"
            )
        total = cycles if cycles is not None else spec.cycles
        if total is None:
            raise ConfigurationError(
                "run_spec needs a cycle count (spec.cycles or cycles=)"
            )
        # Expand the schedule once; everything below is (cycle -> action).
        trace = []
        for index, event in enumerate(spec.events):
            if isinstance(event, ChurnTrace):
                trace.extend(generate_trace(event, total, index))
        trace.sort(key=lambda e: (e.time, e.key, e.action))
        sessions: Dict[tuple, Address] = {}
        churn = list(
            e for e in spec.events if isinstance(e, ContinuousChurn)
        )
        failures = [
            e for e in spec.events if isinstance(e, CatastrophicFailure)
        ]
        grows = [e for e in spec.events if isinstance(e, Grow)]
        for event in grows:
            if event.target is None:
                raise ConfigurationError(
                    "grow.target must be explicit for cluster runs (no "
                    "scale preset applies)"
                )
        fired = set()
        totals = {"joined": 0, "crashed": 0}
        trace_pos = 0
        for cycle in range(total):
            for event in grows:
                missing = event.target - len(self)
                if missing > 0:
                    per_cycle = (
                        event.per_cycle
                        if event.per_cycle is not None
                        else max(1, event.target // 100)
                    )
                    for _ in range(min(per_cycle, missing)):
                        await self.spawn()
                        totals["joined"] += 1
            for index, event in enumerate(failures):
                if index not in fired and cycle >= event.at_cycle:
                    count = int(round(len(self) * event.fraction))
                    count = min(count, max(0, len(self) - 1))
                    await self.crash_random(count)
                    totals["crashed"] += count
                    fired.add(index)
            for event in churn:
                crashes = min(
                    event.leaves_per_cycle, max(0, len(self) - 1)
                )
                if crashes:
                    await self.crash_random(crashes)
                    totals["crashed"] += crashes
                for _ in range(event.joins_per_cycle):
                    await self.spawn()
                    totals["joined"] += 1
            while trace_pos < len(trace) and trace[trace_pos].time < cycle + 1:
                entry = trace[trace_pos]
                trace_pos += 1
                if entry.action == 0:  # join
                    sessions[entry.key] = await self.spawn()
                    totals["joined"] += 1
                else:
                    address = sessions.pop(entry.key, None)
                    if address in self.daemons and len(self) > 1:
                        await self.kill(address)
                        totals["crashed"] += 1
            await self.run_cycles(1)
            if on_cycle is not None:
                on_cycle(cycle + 1, self)
        return totals

    # -- churn -------------------------------------------------------------

    async def kill(self, address: Address) -> None:
        """Crash one daemon (stop gossiping, release its endpoint).

        Other views keep its descriptors until the protocol ages them out
        -- the Figure 7 self-healing dynamics, live.
        """
        daemon = self.daemons.pop(address, None)
        if daemon is None:
            raise NodeNotFoundError(address)
        await daemon.stop()

    async def crash_random(self, count: int) -> List[Address]:
        """Crash ``count`` uniformly random daemons; return their addresses."""
        if count > len(self.daemons):
            raise ConfigurationError(
                f"cannot crash {count} of {len(self.daemons)} daemons"
            )
        victims = self.rng.sample(list(self.daemons), count)
        for victim in victims:
            await self.kill(victim)
        return victims

    async def spawn(self, contacts: Optional[Sequence[Address]] = None) -> Address:
        """Boot one joiner, bootstrapped from ``contacts`` (default: one
        random live node -- the growing scenario's single-contact join)."""
        if contacts is None:
            if not self.daemons:
                raise ConfigurationError("cannot spawn into an empty cluster")
            contacts = [self.rng.choice(list(self.daemons))]
        daemon = await self._boot_daemon(contacts)
        await daemon.start(run_loop=self._free_running)
        return daemon.address

    # -- observation -------------------------------------------------------

    def addresses(self) -> List[Address]:
        """Live daemon addresses, in boot order."""
        return list(self.daemons)

    def __len__(self) -> int:
        return len(self.daemons)

    def views(self) -> Dict[Address, List[NodeDescriptor]]:
        """A consistent copy of every live daemon's current view."""
        result: Dict[Address, List[NodeDescriptor]] = {}
        for address, daemon in self.daemons.items():
            with daemon.service.lock:
                result[address] = [d.copy() for d in daemon.node.view]
        return result

    def snapshot(self) -> GraphSnapshot:
        """The cluster's communication graph, via the standard pipeline."""
        return GraphSnapshot.from_views(self.views())

    def summary(
        self,
        clustering_sample: Optional[int] = None,
        path_sources: Optional[int] = None,
    ) -> Dict[str, float]:
        """Figure-2-style metrics of the running overlay."""
        return summarize_views(
            self.views(),
            clustering_sample=clustering_sample,
            path_sources=path_sources,
            rng=random.Random(0),
        )

    def stats_total(self) -> Dict[str, int]:
        """Aggregated daemon counters (live daemons only)."""
        totals: Dict[str, int] = {}
        for daemon in self.daemons.values():
            for field, value in vars(daemon.stats).items():
                totals[field] = totals.get(field, 0) + value
            totals["peers_served"] = (
                totals.get("peers_served", 0) + daemon.service.samples_served
            )
        return totals

    def metrics_registry(self, address: Address):
        """The standard metrics registry for one live daemon.

        Returns :func:`repro.control.metrics.daemon_metrics` for the
        daemon at ``address`` -- serve it with
        :class:`~repro.control.metrics.MetricsServer` to scrape a
        harness-managed daemon like a deployed one.  Imported lazily:
        :mod:`repro.control` itself imports the net layer.
        """
        from repro.control.metrics import daemon_metrics

        daemon = self.daemons.get(address)
        if daemon is None:
            raise NodeNotFoundError(address)
        return daemon_metrics(daemon)

    # -- synchronous convenience ------------------------------------------

    def run(self, cycles: int) -> Dict[str, float]:
        """Boot, gossip ``cycles`` lockstep rounds, summarize, shut down.

        A synchronous one-call session for scripts and tests; returns the
        final :meth:`summary`.
        """

        async def session() -> Dict[str, float]:
            await self.start(free_running=False)
            try:
                await self.run_cycles(cycles)
                return self.summary()
            finally:
                await self.stop()

        return asyncio.run(session())

"""The networked gossip daemon: paper Figure 1 over real datagrams.

:class:`GossipDaemon` runs one :class:`~repro.core.protocol.GossipNode`
behind a :class:`~repro.net.transport.DatagramTransport`:

- the **active thread** is an asyncio task that once per (jittered) cycle
  calls ``begin_exchange`` and ships the request; for pull/pushpull
  protocols it then awaits the reply under a timeout;
- the **passive thread** is the transport's receive callback: decode,
  ``handle_request``, send back the reply (for pull/pushpull) *in the wire
  version the request arrived in* -- the codec's version negotiation.

Failure handling follows the paper's model plus the minimum a deployment
needs: lost datagrams are simply lost, a pull reply that misses the
timeout makes the exchange count as failed, and a reply arriving *after*
its timeout is dropped (merging it would resurrect descriptors the view
dynamics already aged past).  Requests and replies are correlated by a
per-daemon exchange id carried in a 5-byte envelope in front of the codec
frame.

When ``NetworkConfig.auth_key`` is set, every outgoing frame is wrapped
in a signed frame (truncated HMAC-SHA256, see
:func:`repro.core.codec.encode_signed_message`) and every incoming
datagram must verify against the same key -- unsigned or forged frames
are dropped and counted in :attr:`DaemonStats.auth_failures`.  Signing
wraps the transport bytes only, so a keyed run's protocol state is
byte-identical to the unkeyed one.

All view mutations happen under the :class:`PeerSamplingService` lock, so
application threads can call ``getPeer`` concurrently with the gossip
loop -- the thread-safety contract of the service API.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import struct
from typing import List, Optional

from repro.core.codec import (
    AuthenticationError,
    CodecError,
    decode_frame,
    decode_signed_frame,
    encode_message,
    encode_signed_message,
)
from repro.core.config import NetworkConfig
from repro.core.descriptor import Address, NodeDescriptor
from repro.core.protocol import GossipNode
from repro.core.service import PeerSamplingService
from repro.net.transport import DatagramTransport

__all__ = ["DaemonStats", "GossipDaemon"]

_ENVELOPE = struct.Struct("!BI")  # kind, exchange id
_KIND_REQUEST = 1
_KIND_REPLY = 2
_ID_SPACE = 1 << 32


@dataclasses.dataclass
class DaemonStats:
    """Operational counters of one daemon (monotonic, never reset)."""

    cycles: int = 0
    """Active-thread wakeups (including ones that found an empty view)."""
    exchanges_initiated: int = 0
    """Exchanges actually started (peer selected, request shipped)."""
    exchanges_completed: int = 0
    """Initiated exchanges that ran to completion (reply merged, or push
    sent -- push has no acknowledgement to wait for)."""
    timeouts: int = 0
    """Initiated pull exchanges whose reply missed the timeout."""
    requests_received: int = 0
    replies_received: int = 0
    late_replies: int = 0
    """Replies dropped because their exchange had already timed out."""
    invalid_messages: int = 0
    """Datagrams the codec or envelope parser rejected."""
    auth_failures: int = 0
    """Datagrams a keyed daemon dropped because they were unsigned or
    failed signature verification (see ``NetworkConfig.auth_key``)."""


class GossipDaemon:
    """One deployed peer sampling node: gossip state machine + transport.

    Parameters
    ----------
    node:
        The protocol state machine.  Its address must equal the
        transport's ``local_address`` -- that is what remote peers will
        gossip back to.
    transport:
        A started-or-startable datagram endpoint; the daemon takes over
        its receive callback.
    network:
        Timing knobs (cycle length, jitter, request timeout, preferred
        wire version).
    rng:
        Source of jitter randomness; defaults to a fresh ``Random``.
        Deterministic tests hand in a seeded instance.
    """

    def __init__(
        self,
        node: GossipNode,
        transport: DatagramTransport,
        network: Optional[NetworkConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.node = node
        self.transport = transport
        self.network = network if network is not None else NetworkConfig()
        self.service = PeerSamplingService(node)
        self.stats = DaemonStats()
        self._rng = rng if rng is not None else random.Random()
        self._pending: dict = {}
        self._next_id = self._rng.randrange(_ID_SPACE)
        self._task: Optional[asyncio.Task] = None
        self._stop_requested = False
        transport.receiver = self._on_datagram

    @property
    def address(self) -> Address:
        """The node's (= transport's) address."""
        return self.node.address

    @property
    def running(self) -> bool:
        """Whether the periodic active-thread task is alive."""
        return self._task is not None and not self._task.done()

    # -- lifecycle ---------------------------------------------------------

    async def start(self, run_loop: bool = True) -> None:
        """Start the transport and (optionally) the periodic gossip task.

        ``run_loop=False`` starts a *passive-only* daemon: it answers
        requests but initiates nothing until :meth:`run_cycle` is called
        explicitly -- the mode the deterministic cluster harness and the
        ``live`` engine drive cycles in.
        """
        await self.transport.start()
        if run_loop and self._task is None:
            self._stop_requested = False
            self._task = asyncio.get_running_loop().create_task(
                self._gossip_loop()
            )

    async def stop(self) -> None:
        """Stop gossiping and release the transport.

        Pending pull exchanges are cancelled; in-flight replies addressed
        to this daemon are dropped by the network once the transport is
        closed.  There is deliberately no leave message: departed nodes
        simply stop gossiping (paper Section 2).
        """
        # Belt and braces: the flag alone would stop the loop within one
        # cycle; cancel() stops it now.  Relying on cancel() alone would
        # race: wait_for can swallow an external cancellation that lands
        # in the same loop iteration as the awaited reply (CPython
        # gh-86296), which would leave the task running -- and a bare
        # ``await task`` hanging -- forever.
        self._stop_requested = True
        task, self._task = self._task, None  # atomic: concurrent stop()s
        try:
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        finally:
            # Cancel in-flight pulls and release the endpoint even if the
            # gossip task died on an unexpected error: a daemon must never
            # leave a pending future or an open socket behind its stop().
            self.cancel_pending()
            await self.transport.close()

    def cancel_pending(self) -> None:
        """Cancel every in-flight pull exchange (synchronous, idempotent)."""
        for future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()

    # -- active thread -----------------------------------------------------

    async def _gossip_loop(self) -> None:
        network = self.network
        while not self._stop_requested:
            delay = network.cycle_seconds
            if network.jitter:
                delay += network.cycle_seconds * self._rng.uniform(
                    -network.jitter, network.jitter
                )
            await asyncio.sleep(max(delay, 0.0))
            if self._stop_requested:
                break
            await self.run_cycle()

    async def run_cycle(self) -> bool:
        """One active-thread initiation; returns whether it completed.

        Exposed so harnesses can drive cycles in lockstep instead of on
        the wall clock; the periodic task calls this too.
        """
        self.stats.cycles += 1
        with self.service.lock:
            exchange = self.node.begin_exchange()
        if exchange is None:
            return False
        return await self.initiate(exchange)

    async def initiate(self, exchange) -> bool:
        """Ship one pre-built :class:`~repro.core.protocol.Exchange`.

        Split out of :meth:`run_cycle` so engine-style drivers can apply
        engine-level checks (reachability) between peer selection and the
        send, exactly where the cycle engine applies them.
        """
        exchange_id = self._allocate_id()
        self.stats.exchanges_initiated += 1
        key = self.network.auth_key
        if key is not None:
            payload = encode_signed_message(
                exchange.payload, key, version=self.network.wire_version
            )
        else:
            payload = encode_message(
                exchange.payload, version=self.network.wire_version
            )
        request = _ENVELOPE.pack(_KIND_REQUEST, exchange_id) + payload
        if not self.node.config.pull:
            # Push-only: fire and forget, nothing to await.
            self.transport.send(exchange.peer, request)
            self.stats.exchanges_completed += 1
            return True
        future = asyncio.get_running_loop().create_future()
        self._pending[exchange_id] = future
        self.transport.send(exchange.peer, request)
        try:
            reply: List[NodeDescriptor] = await asyncio.wait_for(
                future, self.network.request_timeout
            )
        except asyncio.TimeoutError:
            # Late replies find no pending future and are counted dropped.
            self._pending.pop(exchange_id, None)
            self.stats.timeouts += 1
            return False
        except asyncio.CancelledError:
            self._pending.pop(exchange_id, None)
            raise
        with self.service.lock:
            self.node.handle_response(exchange.peer, reply)
        self.stats.exchanges_completed += 1
        return True

    def _allocate_id(self) -> int:
        allocated = self._next_id
        self._next_id = (self._next_id + 1) % _ID_SPACE
        return allocated

    # -- passive thread ----------------------------------------------------

    def _on_datagram(self, data: bytes, sender: Address) -> None:
        if len(data) < _ENVELOPE.size:
            self.stats.invalid_messages += 1
            return
        kind, exchange_id = _ENVELOPE.unpack_from(data, 0)
        key = self.network.auth_key
        try:
            if key is not None:
                # Keyed daemons accept nothing unauthenticated: unsigned
                # and unverifiable frames alike are dropped and counted.
                version, view = decode_signed_frame(
                    data[_ENVELOPE.size :], key
                )
            else:
                version, view = decode_frame(data[_ENVELOPE.size :])
        except AuthenticationError:
            self.stats.auth_failures += 1
            return
        except CodecError:
            self.stats.invalid_messages += 1
            return
        if kind == _KIND_REQUEST:
            self.stats.requests_received += 1
            with self.service.lock:
                reply = self.node.handle_request(sender, view)
            if reply is not None:
                # Version negotiation: answer in the requester's version.
                try:
                    if key is not None:
                        payload = encode_signed_message(
                            reply, key, version=version
                        )
                    else:
                        payload = encode_message(reply, version=version)
                except CodecError:
                    self.stats.invalid_messages += 1
                    return
                self.transport.send(
                    sender, _ENVELOPE.pack(_KIND_REPLY, exchange_id) + payload
                )
        elif kind == _KIND_REPLY:
            self.stats.replies_received += 1
            future = self._pending.pop(exchange_id, None)
            if future is None or future.done():
                self.stats.late_replies += 1
                return
            future.set_result(view)
        else:
            self.stats.invalid_messages += 1

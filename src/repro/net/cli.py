"""``repro-node``: run one peer sampling daemon from the command line.

Boot a node, point it at any live contact, and it joins the overlay::

    # first node of a group (nothing to contact yet)
    repro-node --bind 127.0.0.1:9000

    # every further node bootstraps from any live address
    repro-node --bind 127.0.0.1:9001 --contact 127.0.0.1:9000

or bootstrap through a ``repro-seed`` introduction endpoint instead of a
hand-picked contact -- the seed answers with a random sample of live
peers, and the join is retried with capped exponential backoff until an
introducer answers (so daemons may boot before their seed)::

    repro-node --bind 127.0.0.1:0 --introducer 127.0.0.1:9900

The daemon gossips forever (or for ``--cycles N``), printing a status
line every ``--report-every`` seconds: view fill, exchange counters,
timeout/late-reply counts.  ``Ctrl-C`` stops it cleanly -- there is no
leave protocol; the node simply stops gossiping and its descriptors age
out of the group's views (paper Section 2).

The protocol instance is selected with the paper's tuple notation, e.g.
``--protocol "(rand,head,pushpull)"`` (Newscast, the default).
"""

from __future__ import annotations

import argparse
import asyncio
import random
import sys
from typing import List, Optional, Sequence

from repro.core.config import NetworkConfig, ProtocolConfig
from repro.core.errors import ReproError
from repro.core.protocol import GossipNode
from repro.control.client import IntroducerClient
from repro.control.metrics import MetricsServer, daemon_metrics
from repro.net.daemon import GossipDaemon
from repro.net.transport import TransportError, UdpTransport, parse_address

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-node",
        description="Run a gossip-based peer sampling daemon "
        "(Jelasity et al., Middleware 2004) over UDP.",
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="host:port to bind (port 0 = ephemeral; default %(default)s)",
    )
    parser.add_argument(
        "--contact",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="bootstrap contact address (repeatable)",
    )
    parser.add_argument(
        "--introducer",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="repro-seed introduction endpoint to join through "
        "(repeatable; tried in rotation with capped exponential "
        "backoff, so the seed may come up after the daemon)",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus metrics over HTTP on this port "
        "(0 = ephemeral; default: no metrics endpoint)",
    )
    parser.add_argument(
        "--protocol",
        default="(rand,head,pushpull)",
        help="protocol instance in the paper's tuple notation "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--view-size", type=int, default=30, help="view capacity c (default 30)"
    )
    parser.add_argument(
        "--cycle", type=float, default=1.0, metavar="SECONDS",
        help="gossip cycle length (default 1.0)",
    )
    parser.add_argument(
        "--jitter", type=float, default=0.1,
        help="cycle jitter as a fraction of the cycle length (default 0.1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=0.5, metavar="SECONDS",
        help="pull-reply timeout (default 0.5)",
    )
    parser.add_argument(
        "--wire-version", type=int, default=2, choices=(1, 2),
        help="codec version for initiated requests (default 2; replies "
        "always mirror the requester's version)",
    )
    parser.add_argument(
        "--cycles", type=int, default=None, metavar="N",
        help="stop after N gossip cycles (default: run until interrupted)",
    )
    parser.add_argument(
        "--report-every", type=float, default=5.0, metavar="SECONDS",
        help="status line interval (default 5.0; 0 disables)",
    )
    parser.add_argument(
        "--advertise", default=None, metavar="HOST",
        help="host to advertise in descriptors (required when binding a "
        "wildcard interface such as 0.0.0.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="seed the node's RNG"
    )
    return parser


def _status_line(daemon: GossipDaemon) -> str:
    stats = daemon.stats
    return (
        f"[{daemon.address}] view={len(daemon.node.view)}"
        f"/{daemon.node.view.capacity} cycles={stats.cycles} "
        f"ok={stats.exchanges_completed} timeouts={stats.timeouts} "
        f"reqs={stats.requests_received} late={stats.late_replies} "
        f"bad={stats.invalid_messages}"
    )


def _parse_bind(bind: str) -> tuple:
    """Split ``--bind`` into ``(host, port)``, allowing port 0."""
    host, _, port_text = bind.rpartition(":") if ":" in bind else (bind, "", "0")
    try:
        port = int(port_text)
    except ValueError:
        raise TransportError(f"not a host:port bind address: {bind!r}") from None
    if not 0 <= port < 65536:
        raise TransportError(f"port out of range in bind address: {bind!r}")
    return host, port


async def _run_daemon(args: argparse.Namespace) -> int:
    host, port = _parse_bind(args.bind)
    transport = UdpTransport(host, port, advertise_host=args.advertise)
    await transport.start()
    config = ProtocolConfig.from_label(args.protocol, args.view_size)
    network = NetworkConfig(
        cycle_seconds=args.cycle,
        jitter=args.jitter,
        request_timeout=args.timeout,
        wire_version=args.wire_version,
        bind_host=host,
    )
    rng = random.Random(args.seed)
    node = GossipNode(transport.local_address, config, rng)
    daemon = GossipDaemon(node, transport, network, rng=rng)
    contacts = [c for c in args.contact]
    for contact in contacts + list(args.introducer):
        parse_address(contact)  # fail fast on typos
    daemon.service.init(contacts)
    print(f"repro-node listening on {transport.local_address} "
          f"running {config.label} (c={config.view_size})")
    if contacts:
        print(f"bootstrapping from {', '.join(contacts)}")
    await daemon.start(run_loop=True)
    loop = asyncio.get_running_loop()
    client: Optional[IntroducerClient] = None
    join_task: Optional[asyncio.Task] = None
    metrics_server: Optional[MetricsServer] = None
    try:
        if args.introducer:
            client = IntroducerClient(daemon, args.introducer, rng=rng)
            await client.start()
            print(f"joining via introducer(s) {', '.join(args.introducer)}")

            async def _join() -> None:
                peers = await client.join()
                print(f"joined: {len(peers)} bootstrap peer(s) adopted")

            # Background: the daemon answers gossip while the join retries
            # (the introducer may not even be up yet).
            join_task = loop.create_task(_join())
        if args.metrics_port is not None:
            metrics_server = MetricsServer(
                daemon_metrics(daemon, client),
                host=host,
                port=args.metrics_port,
            )
            metrics_server.start()
            print(f"metrics on {metrics_server.url}")
        poll = min(0.25, args.cycle / 2)
        next_report = loop.time() + args.report_every
        while args.cycles is None or daemon.stats.cycles < args.cycles:
            await asyncio.sleep(poll)
            if args.report_every > 0 and loop.time() >= next_report:
                print(_status_line(daemon))
                next_report += args.report_every
    finally:
        if join_task is not None:
            join_task.cancel()
            try:
                await join_task
            except asyncio.CancelledError:
                pass
        if client is not None:
            await client.stop()
        if metrics_server is not None:
            metrics_server.stop()
        await daemon.stop()
        print(_status_line(daemon))
        print("stopped (descriptors will age out of the group's views)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_run_daemon(args))
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        return 0  # stdout consumer went away (e.g. piped through head)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""Descriptor sanity validation: reject what a correct peer never sends.

A correct Figure-1 node, after the receiver's hop increment, produces
payloads with a very particular shape: at most ``view_size + 1``
entries, no entry naming the receiver (peers never advertise *your*
address back at you profitably), no duplicate addresses, hop counts
``>= 1``, and -- crucially -- only the *sender's own* descriptor can
carry the minimum hop count of 1.  Every relayed descriptor has been
incremented at least twice (once when the sender received it, once by
us), so a non-sender entry claiming hop < 2 is a forged timestamp: the
hub attacker's whole trick is advertising accomplices at hop 0 so
age-based selection always prefers them.

``sanitize_payload`` / ``sanitize_indexed`` enforce those invariants on
*received, already-incremented* payloads.  Honest traffic passes
through unchanged (the rules are exactly the invariants honest senders
maintain), so validation composes with the byte-identity contract:
enabling it never changes an honest run's RNG draw sequence differently
across engines, because sanitisation itself draws nothing.

Both variants apply the same rules in the same order and must stay in
lockstep -- the object form serves :class:`~repro.core.protocol.GossipNode`
(cycle / event / live engines), the indexed form serves the flat-array
engines' inlined Python loops.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.descriptor import Address, NodeDescriptor

__all__ = [
    "MAX_HOP_COUNT",
    "MIN_RELAYED_HOPS",
    "sanitize_indexed",
    "sanitize_payload",
]

MAX_HOP_COUNT = 1 << 20
"""Upper bound on a plausible hop count.

Descriptors age by +1 per exchange; after the longest supported runs
(10^5 cycles) honest hop counts stay far below 2^20.  Anything larger
is either corruption or an attacker probing integer edge cases."""

MIN_RELAYED_HOPS = 2
"""Minimum believable hop count for a *relayed* (non-sender) entry.

Post-increment, the sender's self-descriptor arrives at hop 1; every
other entry was in the sender's view (hop >= 1 there) and is
incremented on receipt, so hop >= 2.  Relayed entries claiming fresher
are floored up to this value, neutralising forged hop-0 timestamps
without dropping the (possibly real) address."""


def sanitize_payload(
    payload: Sequence[NodeDescriptor],
    receiver: Address,
    sender: Address,
    view_size: int,
) -> List[NodeDescriptor]:
    """Validate a received payload *after* the hop increment, before merge.

    Returns the surviving descriptors (the originals, except floored
    relayed-freshness entries which are rebuilt).  Rules, in order per
    entry: truncate past ``view_size + 1`` survivors, drop entries
    naming the receiver, drop duplicate addresses (first occurrence
    wins), drop hop counts outside ``[0, MAX_HOP_COUNT]``, floor
    non-sender entries below ``MIN_RELAYED_HOPS``.
    """
    out: List[NodeDescriptor] = []
    seen = set()
    limit = view_size + 1
    for descriptor in payload:
        if len(out) >= limit:
            break
        address = descriptor.address
        if address == receiver or address in seen:
            continue
        hops = descriptor.hop_count
        if hops < 0 or hops > MAX_HOP_COUNT:
            continue
        if address != sender and hops < MIN_RELAYED_HOPS:
            descriptor = NodeDescriptor(address, MIN_RELAYED_HOPS)
        seen.add(address)
        out.append(descriptor)
    return out


def sanitize_indexed(
    ids: Sequence[int],
    hops: Sequence[int],
    receiver: int,
    sender: int,
    view_size: int,
) -> Tuple[List[int], List[int]]:
    """``sanitize_payload`` over the flat-array engines' parallel lists.

    Mirrors the object form rule-for-rule (same order, same outcomes)
    over interned integer ids; returns the surviving ``(ids, hops)``.
    """
    out_ids: List[int] = []
    out_hops: List[int] = []
    seen = set()
    limit = view_size + 1
    for index in range(len(ids)):
        if len(out_ids) >= limit:
            break
        address = ids[index]
        if address == receiver or address in seen:
            continue
        hop = hops[index]
        if hop < 0 or hop > MAX_HOP_COUNT:
            continue
        if address != sender and hop < MIN_RELAYED_HOPS:
            hop = MIN_RELAYED_HOPS
        seen.add(address)
        out_ids.append(address)
        out_hops.append(hop)
    return out_ids, out_hops

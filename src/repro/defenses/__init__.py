"""Byzantine-robustness defences for the peer sampling service.

The attack artefact (PR 9) showed that the paper's generic gossip node
believes anything it is told: a 1% hub-poisoning attacker captures 41%
of the in-degree mass because forged hop-0 descriptors win every
freshness comparison.  This package holds the defence primitives the
hardened protocols build on:

- :mod:`repro.defenses.validation` -- draw-free descriptor sanity
  checks (self/duplicate rejection, hop-count bounds, forged-freshness
  capping) applied between hop increment and merge.  Reused by the
  generic node via ``ProtocolConfig(validate_descriptors=True)`` and by
  the flat-array engines' inlined loops.
- :mod:`repro.defenses.sampling` -- min-wise independent samplers
  (Brahms, Bortnikov et al. 2009): keyed-hash minima over the stream of
  observed addresses converge to a uniform sample of node history that
  an attacker cannot displace by shouting louder.

Everything here is deterministic and RNG-free (samplers hash, they do
not draw), so defended protocols keep the byte-identical cross-engine
contract of the honest ones.
"""

from repro.defenses.sampling import MinWiseSampler, SamplerGroup
from repro.defenses.validation import (
    MAX_HOP_COUNT,
    MIN_RELAYED_HOPS,
    sanitize_indexed,
    sanitize_payload,
)

__all__ = [
    "MAX_HOP_COUNT",
    "MIN_RELAYED_HOPS",
    "MinWiseSampler",
    "SamplerGroup",
    "sanitize_indexed",
    "sanitize_payload",
]

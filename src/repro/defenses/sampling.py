"""Min-wise independent samplers (Brahms, Bortnikov et al. 2009).

A :class:`MinWiseSampler` holds the address minimising a keyed hash
over every address ever offered to it.  Because the hash is fixed at
construction and min is order- and multiplicity-insensitive, the kept
element is a uniform sample of the *set* of observed ids -- an attacker
repeating its own address a million times gets exactly one lottery
ticket per distinct id, the same as every honest node.  A group of
samplers with independent keys therefore converges ``getPeer()`` to a
uniform sample of node history that over-representation in gossip
streams cannot displace.

Keys are derived deterministically from an integer seed with
:func:`hashlib.blake2b` (never Python's ``hash``, which varies with
``PYTHONHASHSEED`` and would break the byte-identical determinism
contract).  Nothing here touches an RNG: offering addresses draws
nothing, so defended protocols keep cross-engine RNG parity.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Callable, Iterable, List, Optional

from repro.core.descriptor import Address
from repro.core.errors import ConfigurationError

__all__ = ["MinWiseSampler", "SamplerGroup"]

_KEY_BYTES = 16
_DIGEST_BYTES = 8


def _derive_key(seed: int, index: int) -> bytes:
    material = b"repro.defenses.sampler:%d:%d" % (seed, index)
    return blake2b(material, digest_size=_KEY_BYTES).digest()


def _encode_address(address: Address) -> bytes:
    if isinstance(address, int):
        return b"i%d" % address
    return b"s" + str(address).encode("utf-8", "surrogatepass")


class MinWiseSampler:
    """One keyed min-hash slot: ``offer()`` ids, ``value`` is the minimum."""

    __slots__ = ("_key", "_min_digest", "value")

    def __init__(self, key: bytes) -> None:
        self._key = key
        self._min_digest: Optional[bytes] = None
        self.value: Optional[Address] = None

    def _digest(self, address: Address) -> bytes:
        return blake2b(
            _encode_address(address), digest_size=_DIGEST_BYTES, key=self._key
        ).digest()

    def offer(self, address: Address) -> None:
        """Consider ``address``; keep it iff its keyed hash is the minimum."""
        digest = self._digest(address)
        if self._min_digest is None or digest < self._min_digest:
            self._min_digest = digest
            self.value = address

    def reset(self) -> None:
        """Forget the kept element (used when it is found to be dead)."""
        self._min_digest = None
        self.value = None


class SamplerGroup:
    """A fixed-size bank of independently keyed min-wise samplers.

    Parameters
    ----------
    count:
        Number of samplers (Brahms' ``l2``); each gets an independent
        key derived from ``seed``.
    seed:
        Integer key-derivation seed.  Runs with equal seeds build equal
        sampler banks -- part of the determinism contract.
    """

    __slots__ = ("_samplers",)

    def __init__(self, count: int, seed: int) -> None:
        if count < 1:
            raise ConfigurationError(
                f"sampler count must be >= 1, got {count}"
            )
        self._samplers = [
            MinWiseSampler(_derive_key(seed, index)) for index in range(count)
        ]

    def __len__(self) -> int:
        return len(self._samplers)

    def offer(self, addresses: Iterable[Address]) -> None:
        """Feed every address to every sampler."""
        samplers = self._samplers
        for address in addresses:
            for sampler in samplers:
                sampler.offer(address)

    def values(self) -> List[Address]:
        """Currently kept addresses of the non-empty samplers, in order."""
        return [s.value for s in self._samplers if s.value is not None]

    def revalidate(self, is_alive: Callable[[Address], bool]) -> int:
        """Reset samplers whose kept element fails the liveness probe.

        Brahms' sampler validation: a sampler stuck on a departed node
        would otherwise hold it forever (min-hash never forgets).
        Returns the number of samplers reset.
        """
        reset = 0
        for sampler in self._samplers:
            value = sampler.value
            if value is not None and not is_alive(value):
                sampler.reset()
                reset += 1
        return reset

"""Adversarial node policies on the node/engine exchange contract.

:class:`AdversarialNode` wraps any honest node object (the generic
:class:`~repro.core.protocol.GossipNode`, a Cyclon or PeerSwap node) and
rewrites what it *sends* while leaving what it *stores* honest: the
attacker keeps a normally evolving view (so it stays plausibly connected
and selectable), but its outgoing buffers are forged according to the
scenario's :class:`~repro.workloads.spec.AdversarySpec` kind:

``hub``
    Every outgoing request and reply is replaced by fresh hop-0
    descriptors of the attacker set ("over-advertise self with fresh
    timestamps"): under ``head``/healer view selection the receivers
    keep the youngest entries, so attacker in-degree snowballs.
``eclipse``
    Like ``hub``, but aimed: exchanges are retargeted at live victims,
    and only victims receive the poisoned replies -- everyone else gets
    honest answers, keeping the attack hard to spot globally.
``tamper``
    Outgoing buffers keep their membership but have every hop count
    zeroed -- a freshness forgery that defeats age-based (healer)
    filtering without changing who is advertised.
``drop``
    Outgoing buffers are withheld: requests go out empty, replies are
    empty, pulled responses are discarded.  The attacker still answers
    (an empty reply) so the initiator's exchange *completes* -- on the
    live engine a silent non-answer would instead surface as a timeout
    and break counter parity with the cycle model.

RNG discipline (the cross-engine byte-identity contract): every wrapper
method first lets the honest ``inner`` node run -- consuming exactly the
draws an honest node would -- and only then substitutes payloads.  The
single *extra* draw an attacker makes (the eclipse victim retarget) is
taken from the shared engine RNG at a fixed point, mirrored draw-for-draw
by :class:`~repro.adversary.harness.FastAdversary`.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.descriptor import Address, NodeDescriptor
from repro.core.protocol import Exchange
from repro.workloads.spec import AdversarySpec

__all__ = ["AdversarialNode", "AdversaryState"]


class AdversaryState:
    """Shared per-run attack state: who, what, and whether it is on.

    One instance is shared by every attacker wrapper (and the fast-engine
    loop) of a run; :class:`~repro.adversary.harness.AttackWindow` flips
    :attr:`active` on the spec's ``start_cycle``/``stop_cycle`` window.
    """

    __slots__ = (
        "spec",
        "attackers",
        "attacker_set",
        "victims",
        "victim_set",
        "active",
        "rng",
        "is_alive",
        "view_size",
        "_adverts",
    )

    def __init__(
        self,
        spec: AdversarySpec,
        attackers: Tuple[Address, ...],
        victims: Tuple[Address, ...],
        *,
        rng: random.Random,
        is_alive: Callable[[Address], bool],
        view_size: int,
    ) -> None:
        self.spec = spec
        self.attackers = attackers
        self.attacker_set = frozenset(attackers)
        self.victims = victims
        self.victim_set = frozenset(victims)
        self.active = False
        self.rng = rng
        self.is_alive = is_alive
        self.view_size = view_size
        self._adverts: Dict[Address, Tuple[Address, ...]] = {}

    def advert_addresses(self, sender: Address) -> Tuple[Address, ...]:
        """The attacker addresses ``sender`` advertises, sender first.

        Capped at ``view_size + 1`` entries -- the size of an honest
        request buffer (own descriptor plus a full view), so poisoned
        messages are not distinguishable by length.
        """
        cached = self._adverts.get(sender)
        if cached is None:
            cached = tuple(
                [sender] + [a for a in self.attackers if a != sender]
            )[: self.view_size + 1]
            self._adverts[sender] = cached
        return cached

    def poison_payload(self, sender: Address) -> List[NodeDescriptor]:
        """Fresh hop-0 descriptors of the attacker set, sender first.

        Built fresh on every call: receivers take ownership of payloads
        and mutate them in place (hop-count increments)."""
        return [
            NodeDescriptor(address, 0)
            for address in self.advert_addresses(sender)
        ]


class AdversarialNode:
    """A Byzantine wrapper around one honest node object.

    Transparent to engines and services: unknown attributes (``address``,
    ``config``, ``view``, ``liveness``, ``sample_peer``, ...) delegate to
    the wrapped node, and attribute writes (the engines install
    ``liveness`` predicates) are forwarded too.  Only the three exchange
    methods are intercepted, and only while the attack window is active.
    """

    __slots__ = ("inner", "state")

    def __init__(self, inner: object, state: AdversaryState) -> None:
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "state", state)

    def __getattr__(self, name: str):
        return getattr(object.__getattribute__(self, "inner"), name)

    def __setattr__(self, name: str, value) -> None:
        if name in AdversarialNode.__slots__:
            object.__setattr__(self, name, value)
        else:
            setattr(self.inner, name, value)

    def __repr__(self) -> str:
        return (
            f"AdversarialNode(kind={self.state.spec.kind!r}, "
            f"inner={self.inner!r})"
        )

    # -- active thread -----------------------------------------------------

    def begin_exchange(self) -> Optional[Exchange]:
        inner = self.inner
        state = self.state
        exchange = inner.begin_exchange()
        if exchange is None or not state.active:
            # The honest selection draw happened (or the view was empty
            # and nothing was drawn) -- identical to an honest node.
            return exchange
        kind = state.spec.kind
        if kind == "drop":
            return Exchange(exchange.peer, [])
        if kind == "tamper":
            return Exchange(
                exchange.peer,
                [NodeDescriptor(d.address, 0) for d in exchange.payload],
            )
        # hub / eclipse: poisoned request; eclipse additionally retargets
        # the exchange at a live victim (one extra shared-RNG draw, only
        # when a live victim exists -- FastAdversary mirrors this).
        peer = exchange.peer
        if kind == "eclipse":
            is_alive = state.is_alive
            live = [v for v in state.victims if is_alive(v)]
            if live:
                peer = live[state.rng.randrange(len(live))]
        return Exchange(peer, state.poison_payload(inner.address))

    def handle_response(
        self, peer: Address, payload: List[NodeDescriptor]
    ) -> None:
        state = self.state
        if state.active and state.spec.kind == "drop":
            return None  # pulled view discarded unread
        return self.inner.handle_response(peer, payload)

    # -- passive thread ----------------------------------------------------

    def handle_request(
        self, peer: Address, payload: List[NodeDescriptor]
    ) -> Optional[List[NodeDescriptor]]:
        inner = self.inner
        state = self.state
        if not state.active:
            return inner.handle_request(peer, payload)
        kind = state.spec.kind
        if kind == "drop":
            # Swallow the request unmerged but still answer pulls (with
            # an empty reply) so the initiator's exchange completes --
            # see the module docstring on live-engine counter parity.
            return [] if getattr(inner.config, "pull", True) else None
        # The honest node merges the incoming buffer and builds its
        # honest reply first (same draws as an honest exchange) ...
        reply = inner.handle_request(peer, payload)
        if reply is None:
            return None  # push-only: no reply to forge
        # ... then the attacker forges what actually leaves the node.
        if kind == "tamper":
            return [NodeDescriptor(d.address, 0) for d in reply]
        if kind == "hub" or peer in state.victim_set:
            return state.poison_payload(inner.address)
        return reply  # eclipse answering a non-victim: stay honest

"""Byzantine fault injection for peer sampling runs.

The paper's evaluation assumes every node runs Figure 1 honestly; this
package measures what happens when a fraction of them does not.  It
injects adversarial behaviors into the existing engines without touching
the honest protocol code:

- :mod:`repro.adversary.behaviors` -- the attack policies themselves,
  expressed on the node contract (``begin_exchange`` /
  ``handle_request`` / ``handle_response``): **hub poisoning**
  (over-advertise the attacker set with fresh hop-0 descriptors in every
  exchange), **eclipse** (retarget exchanges at a victim set and answer
  its pulls with attacker-only descriptors), **tampering** (zero the hop
  counts of exchanged buffers) and **dropping** (swallow exchanged
  buffers);
- :mod:`repro.adversary.harness` -- deterministic attacker placement
  (seeded fraction or explicit targets) and the per-engine installers:
  node wrapping on :class:`~repro.simulation.engine.CycleEngine`,
  :class:`~repro.simulation.event_engine.EventEngine` and
  :class:`~repro.net.engine.LiveEngine`, draw-for-draw adversarial
  loops on :class:`~repro.simulation.fast.FastCycleEngine` and
  :class:`~repro.simulation.fast_event.FastEventEngine`, and a
  wire-level :class:`~repro.adversary.harness.NetworkInterceptor` for
  the loopback transport.

Scenario specs opt in through their ``adversary`` block
(:class:`~repro.workloads.spec.AdversarySpec`); the damage is quantified
by the ``indegree-concentration``, ``eclipse-exposure`` and
``sampling-distance`` plan measurements and swept by the ``attack``
experiment artefact.

Determinism contract: given one spec, seed and placement, a run is
byte-identical across the ``cycle``, ``fast`` and ``live`` engines and,
separately, across the ``event`` and ``fast-event`` engines -- the
adversarial paths consume the engine RNG in exactly the order the
honest paths do (pinned by ``tests/adversary/``).
"""

from repro.adversary.behaviors import AdversarialNode, AdversaryState
from repro.adversary.harness import (
    ADVERSARY_ENGINE_NAMES,
    AdversaryHandle,
    AttackWindow,
    FastAdversary,
    FastEventAdversary,
    NetworkInterceptor,
    install_adversary,
    intercept_network,
    place_attackers,
)

__all__ = [
    "ADVERSARY_ENGINE_NAMES",
    "AdversarialNode",
    "AdversaryHandle",
    "AdversaryState",
    "AttackWindow",
    "FastAdversary",
    "FastEventAdversary",
    "NetworkInterceptor",
    "install_adversary",
    "intercept_network",
    "place_attackers",
]

"""Attacker placement and per-engine attack installation.

:func:`install_adversary` binds a compiled scenario's
:class:`~repro.workloads.spec.AdversarySpec` to its engine:

- attacker/victim placement is resolved against the bootstrap population
  -- explicit spec indices, or a seeded sample of ``fraction * n`` nodes
  drawn from a *private* ``Random(placement_seed)`` so the placement is
  identical on every engine and run seed and never perturbs the shared
  protocol RNG;
- on :class:`~repro.simulation.engine.CycleEngine` and
  :class:`~repro.net.engine.LiveEngine`, attacker nodes are wrapped in
  :class:`~repro.adversary.behaviors.AdversarialNode` (on the live
  engine the wrapper is installed into the daemon too, so both the
  active task and the datagram receive path go through it);
- on :class:`~repro.simulation.fast.FastCycleEngine`, a
  :class:`FastAdversary` replaces the cycle loop while the attack window
  is active, replicating ``_run_cycle_python`` draw for draw with the
  attack branches inlined -- the fast family has no per-node objects to
  wrap.

:class:`NetworkInterceptor` (via :func:`intercept_network`) is the
wire-level alternative for the live layer: it hooks
:meth:`~repro.net.transport.LoopbackNetwork.deliver` and rewrites or
drops attacker-sent *datagrams* (decode, forge, re-encode in the same
wire version), demonstrating that the attacks need no cooperation from
the node software at all.  The engine installers use node wrapping
because it preserves cross-engine byte-identity; the interceptor is for
transport-focused tests and demos.
"""

from __future__ import annotations

import dataclasses
import random
from array import array
from itertools import compress
from struct import error as struct_error
from typing import List, Tuple

from repro.adversary.behaviors import AdversarialNode, AdversaryState
from repro.core.codec import CodecError, decode_frame, encode_message
from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ConfigurationError
from repro.core.policies import PeerSelection
from repro.net.daemon import _ENVELOPE, _KIND_REPLY
from repro.net.engine import LiveEngine
from repro.net.transport import LoopbackNetwork
from repro.simulation.engine import CycleEngine
from repro.simulation.fast import FastCycleEngine
from repro.simulation.trace import Observer
from repro.workloads.spec import AdversarySpec

__all__ = [
    "ADVERSARY_ENGINE_NAMES",
    "AdversaryHandle",
    "AttackWindow",
    "FastAdversary",
    "NetworkInterceptor",
    "install_adversary",
    "intercept_network",
    "place_attackers",
]

ADVERSARY_ENGINE_NAMES = frozenset({"cycle", "fast", "live"})
"""Registry engines adversarial scenarios can run on (the cycle-model
family; the event-driven engines have no attack installation yet)."""


def place_attackers(
    spec: AdversarySpec, addresses: List[Address]
) -> Tuple[Tuple[Address, ...], Tuple[Address, ...]]:
    """Resolve ``(attackers, victims)`` over the bootstrap population.

    Spec indices index into ``addresses`` (the bootstrap creation
    order).  A ``fraction`` placement samples ``round(fraction * n)``
    non-victim nodes from ``Random(placement_seed)`` -- deterministic,
    engine-independent, and independent of the run seed.
    """
    n = len(addresses)

    def resolve(indices, field: str) -> Tuple[Address, ...]:
        resolved = []
        for index in indices:
            if not 0 <= index < n:
                raise ConfigurationError(
                    f"adversary.{field} index {index} is out of range for "
                    f"a bootstrap population of {n} nodes"
                )
            resolved.append(addresses[index])
        return tuple(resolved)

    victims = resolve(spec.victims, "victims")
    if spec.attackers:
        return resolve(spec.attackers, "attackers"), victims
    count = int(round(spec.fraction * n))
    if count == 0:
        return (), victims
    victim_set = set(victims)
    eligible = [a for a in addresses if a not in victim_set]
    if count > len(eligible):
        raise ConfigurationError(
            f"adversary.fraction {spec.fraction} asks for {count} "
            f"attackers but only {len(eligible)} non-victim nodes exist"
        )
    placement = random.Random(spec.placement_seed)
    return tuple(placement.sample(eligible, count)), victims


class AttackWindow(Observer):
    """Flips the shared :attr:`AdversaryState.active` flag per cycle.

    The attack is live for cycles ``start_cycle <= cycle < stop_cycle``
    (open-ended when ``stop_cycle`` is ``None``)."""

    def __init__(self, state: AdversaryState) -> None:
        self._state = state

    def before_cycle(self, engine) -> None:
        spec = self._state.spec
        cycle = engine.cycle
        self._state.active = cycle >= spec.start_cycle and (
            spec.stop_cycle is None or cycle < spec.stop_cycle
        )


@dataclasses.dataclass(frozen=True)
class AdversaryHandle:
    """What :func:`install_adversary` resolved: placement plus state."""

    spec: AdversarySpec
    attackers: Tuple[Address, ...]
    victims: Tuple[Address, ...]
    state: AdversaryState


def _view_capacity(engine) -> int:
    """The engine's view capacity (generic config or first node's view)."""
    config = getattr(engine, "config", None)
    if config is not None:
        return config.view_size
    for node in engine.nodes():
        return node.view.capacity
    raise ConfigurationError(
        "cannot determine the view capacity of an empty engine"
    )


def install_adversary(runtime) -> AdversaryHandle:
    """Place the attackers of ``runtime.spec.adversary`` and arm them.

    Called by :func:`~repro.workloads.runtime.compile_scenario` right
    after the bootstrap.  A placement that resolves to zero attackers
    (``fraction=0``) installs nothing at all, so the run stays
    byte-identical to the same spec without an adversary block.
    """
    spec = runtime.spec.adversary
    engine = runtime.engine
    addresses = runtime.bootstrap_addresses
    attackers, victims = place_attackers(spec, addresses)
    state = AdversaryState(
        spec,
        attackers,
        victims,
        rng=engine.rng,
        is_alive=engine.is_alive,
        view_size=_view_capacity(engine),
    )
    handle = AdversaryHandle(
        spec=spec, attackers=attackers, victims=victims, state=state
    )
    if not attackers:
        return handle
    engine.add_observer(AttackWindow(state))
    if isinstance(engine, FastCycleEngine):
        engine.adversary = FastAdversary(engine, state)
    elif isinstance(engine, LiveEngine):
        for address in attackers:
            wrapper = AdversarialNode(engine._nodes[address], state)
            engine._nodes[address] = wrapper
            # Both paths must see the wrapper: the engine's gossip round
            # reads daemon.node (active thread) and so does the
            # datagram receive callback (passive thread).
            engine.daemon(address).node = wrapper
    elif isinstance(engine, CycleEngine):
        for address in attackers:
            engine._nodes[address] = AdversarialNode(
                engine._nodes[address], state
            )
    else:
        raise ConfigurationError(
            f"adversarial scenarios run on the "
            f"{sorted(ADVERSARY_ENGINE_NAMES)} engines; "
            f"got {type(engine).__name__}"
        )
    return handle


class FastAdversary:
    """The adversarial cycle loop for :class:`FastCycleEngine`.

    :meth:`run_cycle` is ``FastCycleEngine._run_cycle_python`` with the
    attack branches inlined.  Parity rules (each mirrors what
    :class:`AdversarialNode` does on the object engines):

    - honest peer selection always runs first (same draws), the eclipse
      retarget is one *extra* ``randrange`` only when live victims exist;
    - a poisoned or tampered buffer arrives with every hop count 1 (sent
      as 0, incremented once by the receiver), so its merge consumes
      exactly the draws the reference merge consumes;
    - a dropping responder skips both merges but still counts the
      exchange completed; a dropping initiator sends an empty request
      (merging an empty buffer is a draw-free no-op on the reference
      engine) and discards the reply.
    """

    __slots__ = (
        "_state",
        "_attacker_ids",
        "_victim_ids",
        "_victim_id_set",
        "_adverts",
    )

    def __init__(self, engine: FastCycleEngine, state: AdversaryState) -> None:
        self._state = state
        id_of = engine._id_of
        attacker_ids = [id_of[a] for a in state.attackers]
        self._attacker_ids = frozenset(attacker_ids)
        self._victim_ids = tuple(id_of[v] for v in state.victims)
        self._victim_id_set = frozenset(self._victim_ids)
        cap = state.view_size + 1
        self._adverts = {
            i: tuple([i] + [b for b in attacker_ids if b != i])[:cap]
            for i in attacker_ids
        }

    @property
    def active(self) -> bool:
        """Whether the attack window is currently open."""
        return self._state.active

    def run_cycle(self, engine: FastCycleEngine) -> None:
        """One full cycle with the attack branches live."""
        kind = self._state.spec.kind
        poisoning = kind in ("hub", "eclipse")
        eclipsing = kind == "eclipse"
        tampering = kind == "tamper"
        dropping = kind == "drop"
        attackers = self._attacker_ids
        victim_ids = self._victim_ids
        victim_set = self._victim_id_set
        adverts = self._adverts

        rng = engine.rng
        config = engine.config
        c = config.view_size
        vids = engine._vids
        vhops = engine._vhops
        vlen = engine._vlen
        row_of = engine._row_of
        alive = engine._alive
        addr_of = engine._addr_of
        push = config.push
        pull = config.pull
        peer_sel = config.peer_selection
        ps_rand = peer_sel is PeerSelection.RAND
        ps_head = peer_sel is PeerSelection.HEAD
        filter_dead = (
            engine.omniscient_peer_selection and engine._maybe_dead_refs
        )
        check_dead = not engine.omniscient_peer_selection
        reachable = engine.reachable
        randrange = rng.randrange
        merge_into = engine._merge_into
        inc = (1).__add__
        alive_at = alive.__getitem__
        completed = 0
        failed = 0

        order = list(engine._live)
        if engine.shuffle_each_cycle:
            rng.shuffle(order)
        for i in order:
            if not alive[i]:
                continue  # crashed by an observer mid-cycle
            row = row_of[i]
            base = row * c
            ln = vlen[row]
            end = base + ln
            if not ln:
                continue  # empty view: nothing to gossip with
            aged = array("q", map(inc, vhops[base:end]))
            vhops[base:end] = aged
            i_atk = i in attackers
            if filter_dead:
                vslice = vids[base:end]
                cand = list(compress(vslice, map(alive_at, vslice)))
                if not cand:
                    continue
                if ps_rand:
                    p = cand[randrange(len(cand))]
                elif ps_head:
                    p = cand[0]
                else:
                    p = cand[-1]
            else:
                if ps_rand:
                    p = vids[base + randrange(ln)]
                elif ps_head:
                    p = vids[base]
                else:
                    p = vids[end - 1]
            if i_atk and eclipsing:
                # The extra retarget draw AdversarialNode.begin_exchange
                # takes, at the same point in the draw order.
                live_victims = [v for v in victim_ids if alive[v]]
                if live_victims:
                    p = live_victims[randrange(len(live_victims))]
            # Hoisted from the non-omniscient selection branch above:
            # check_dead is False whenever filter_dead can be True, and
            # a retargeted victim is live by construction.
            if check_dead and not alive[p]:
                failed += 1
                continue
            if reachable is not None and not reachable(
                addr_of[i], addr_of[p]
            ):
                failed += 1
                continue
            p_atk = p in attackers
            if i_atk and poisoning:
                rq_ids = list(adverts[i])
                rq_hops = [1] * len(rq_ids)
            elif i_atk and dropping:
                rq_ids = []
                rq_hops = []
            elif push:
                rq_ids = [i]
                rq_ids += vids[base:end]
                if i_atk and tampering:
                    rq_hops = [1] * len(rq_ids)
                else:
                    rq_hops = [1]
                    rq_hops += map(inc, aged)
            else:
                rq_ids = []
                rq_hops = []
            if pull:
                if p_atk and dropping:
                    # Request swallowed, empty reply merged (a no-op):
                    # neither side changes, the exchange completes.
                    completed += 1
                    continue
                if p_atk and poisoning and (
                    not eclipsing or i in victim_set
                ):
                    rp_ids = list(adverts[p])
                    rp_hops = [1] * len(rp_ids)
                else:
                    prow = row_of[p]
                    pbase = prow * c
                    pend = pbase + vlen[prow]
                    rp_ids = [p]
                    rp_ids += vids[pbase:pend]
                    if p_atk and tampering:
                        rp_hops = [1] * len(rp_ids)
                    else:
                        rp_hops = [1]
                        rp_hops += map(inc, vhops[pbase:pend])
                if rq_ids:
                    merge_into(p, rq_ids, rq_hops)
                if not (i_atk and dropping):
                    merge_into(i, rp_ids, rp_hops)
            else:
                if p_atk and dropping:
                    completed += 1
                    continue
                merge_into(p, rq_ids, rq_hops)
            completed += 1
        engine.completed_exchanges += completed
        engine.failed_exchanges += failed


class NetworkInterceptor:
    """A man-in-the-middle on a :class:`LoopbackNetwork`.

    Rewrites (or swallows) datagrams *sent by attackers* while the
    attack window is active: the codec frame is decoded, forged
    according to the spec kind, and re-encoded in the wire version it
    arrived in; unparsable data passes through untouched.  Install via
    :func:`intercept_network`, remove with :meth:`uninstall`.
    """

    def __init__(self, network: LoopbackNetwork, state: AdversaryState) -> None:
        self.network = network
        self.state = state
        self.forwarded = 0
        self.rewritten = 0
        self.dropped = 0
        self._original = network.deliver
        network.deliver = self.deliver  # type: ignore[method-assign]

    def uninstall(self) -> None:
        """Restore the network's own ``deliver`` (idempotent)."""
        try:
            del self.network.deliver  # type: ignore[attr-defined]
        except AttributeError:
            pass

    def deliver(
        self, sender: Address, destination: Address, data: bytes
    ) -> None:
        state = self.state
        if not state.active or sender not in state.attacker_set:
            self.forwarded += 1
            return self._original(sender, destination, data)
        kind = state.spec.kind
        if kind == "drop":
            self.dropped += 1
            return None
        try:
            kind_byte, exchange_id = _ENVELOPE.unpack_from(data, 0)
            version, payload = decode_frame(bytes(data[_ENVELOPE.size:]))
        except (CodecError, struct_error):
            # Not a gossip frame (or truncated): forward untouched.
            self.forwarded += 1
            return self._original(sender, destination, data)
        if kind == "tamper":
            payload = [NodeDescriptor(d.address, 0) for d in payload]
        elif kind == "hub":
            payload = state.poison_payload(sender)
        else:  # eclipse: only replies to victims are forged
            if kind_byte != _KIND_REPLY or destination not in state.victim_set:
                self.forwarded += 1
                return self._original(sender, destination, data)
            payload = state.poison_payload(sender)
        self.rewritten += 1
        frame = _ENVELOPE.pack(kind_byte, exchange_id) + encode_message(
            payload, version=version
        )
        return self._original(sender, destination, frame)


def intercept_network(
    network: LoopbackNetwork, state: AdversaryState
) -> NetworkInterceptor:
    """Install a :class:`NetworkInterceptor` on ``network``."""
    return NetworkInterceptor(network, state)

"""Attacker placement and per-engine attack installation.

:func:`install_adversary` binds a compiled scenario's
:class:`~repro.workloads.spec.AdversarySpec` to its engine:

- attacker/victim placement is resolved against the bootstrap population
  -- explicit spec indices, or a seeded sample of ``fraction * n`` nodes
  drawn from a *private* ``Random(placement_seed)`` so the placement is
  identical on every engine and run seed and never perturbs the shared
  protocol RNG;
- on :class:`~repro.simulation.engine.CycleEngine`,
  :class:`~repro.simulation.event_engine.EventEngine` and
  :class:`~repro.net.engine.LiveEngine`, attacker nodes are wrapped in
  :class:`~repro.adversary.behaviors.AdversarialNode` (on the live
  engine the wrapper is installed into the daemon too, so both the
  active task and the datagram receive path go through it; the event
  engine resolves every timer/request/reply through its node table, so
  wrapping the table entry covers all three dispatch paths);
- on :class:`~repro.simulation.fast.FastCycleEngine`, a
  :class:`FastAdversary` replaces the cycle loop while the attack window
  is active, replicating ``_run_cycle_python`` draw for draw with the
  attack branches inlined -- the fast family has no per-node objects to
  wrap;
- on :class:`~repro.simulation.fast_event.FastEventEngine`, a
  :class:`FastEventAdversary` supplies the event-dispatch loop for the
  whole run (the window can open at any cycle boundary), replicating
  ``_run_events_python`` draw for draw with the same attack branches.

:class:`NetworkInterceptor` (via :func:`intercept_network`) is the
wire-level alternative for the live layer: it hooks
:meth:`~repro.net.transport.LoopbackNetwork.deliver` and rewrites or
drops attacker-sent *datagrams* (decode, forge, re-encode in the same
wire version), demonstrating that the attacks need no cooperation from
the node software at all.  The engine installers use node wrapping
because it preserves cross-engine byte-identity; the interceptor is for
transport-focused tests and demos.
"""

from __future__ import annotations

import dataclasses
import random
from array import array
from heapq import heappop, heappush
from itertools import compress
from struct import error as struct_error
from typing import List, Tuple

from repro.adversary.behaviors import AdversarialNode, AdversaryState
from repro.core.codec import CodecError, decode_frame, encode_message
from repro.core.descriptor import Address, NodeDescriptor
from repro.core.errors import ConfigurationError, SimulationError
from repro.core.policies import PeerSelection
from repro.net.daemon import _ENVELOPE, _KIND_REPLY
from repro.net.engine import LiveEngine
from repro.net.transport import LoopbackNetwork
from repro.simulation.engine import CycleEngine
from repro.simulation.event_engine import EventEngine
from repro.simulation.fast import FastCycleEngine
from repro.simulation.fast_event import (
    _IDX_MASK,
    _REPLY,
    _REQUEST,
    FastEventEngine,
)
from repro.simulation.trace import Observer
from repro.workloads.spec import AdversarySpec

__all__ = [
    "ADVERSARY_ENGINE_NAMES",
    "AdversaryHandle",
    "AttackWindow",
    "FastAdversary",
    "FastEventAdversary",
    "NetworkInterceptor",
    "install_adversary",
    "intercept_network",
    "place_attackers",
]

ADVERSARY_ENGINE_NAMES = frozenset(
    {"cycle", "fast", "live", "event", "fast-event"}
)
"""Registry engines adversarial scenarios can run on: the cycle-model
family plus the event-driven family (the sharded engine has no attack
installation)."""


def place_attackers(
    spec: AdversarySpec, addresses: List[Address]
) -> Tuple[Tuple[Address, ...], Tuple[Address, ...]]:
    """Resolve ``(attackers, victims)`` over the bootstrap population.

    Spec indices index into ``addresses`` (the bootstrap creation
    order).  A ``fraction`` placement samples ``round(fraction * n)``
    non-victim nodes from ``Random(placement_seed)`` -- deterministic,
    engine-independent, and independent of the run seed.
    """
    n = len(addresses)

    def resolve(indices, field: str) -> Tuple[Address, ...]:
        resolved = []
        for index in indices:
            if not 0 <= index < n:
                raise ConfigurationError(
                    f"adversary.{field} index {index} is out of range for "
                    f"a bootstrap population of {n} nodes"
                )
            resolved.append(addresses[index])
        return tuple(resolved)

    victims = resolve(spec.victims, "victims")
    if spec.attackers:
        return resolve(spec.attackers, "attackers"), victims
    count = int(round(spec.fraction * n))
    if count == 0:
        return (), victims
    victim_set = set(victims)
    eligible = [a for a in addresses if a not in victim_set]
    if count > len(eligible):
        raise ConfigurationError(
            f"adversary.fraction {spec.fraction} asks for {count} "
            f"attackers but only {len(eligible)} non-victim nodes exist"
        )
    placement = random.Random(spec.placement_seed)
    return tuple(placement.sample(eligible, count)), victims


class AttackWindow(Observer):
    """Flips the shared :attr:`AdversaryState.active` flag per cycle.

    The attack is live for cycles ``start_cycle <= cycle < stop_cycle``
    (open-ended when ``stop_cycle`` is ``None``)."""

    def __init__(self, state: AdversaryState) -> None:
        self._state = state

    def before_cycle(self, engine) -> None:
        spec = self._state.spec
        cycle = engine.cycle
        self._state.active = cycle >= spec.start_cycle and (
            spec.stop_cycle is None or cycle < spec.stop_cycle
        )


@dataclasses.dataclass(frozen=True)
class AdversaryHandle:
    """What :func:`install_adversary` resolved: placement plus state."""

    spec: AdversarySpec
    attackers: Tuple[Address, ...]
    victims: Tuple[Address, ...]
    state: AdversaryState


def _view_capacity(engine) -> int:
    """The engine's view capacity (generic config or first node's view)."""
    config = getattr(engine, "config", None)
    if config is not None:
        return config.view_size
    for node in engine.nodes():
        return node.view.capacity
    raise ConfigurationError(
        "cannot determine the view capacity of an empty engine"
    )


def install_adversary(runtime) -> AdversaryHandle:
    """Place the attackers of ``runtime.spec.adversary`` and arm them.

    Called by :func:`~repro.workloads.runtime.compile_scenario` right
    after the bootstrap.  A placement that resolves to zero attackers
    (``fraction=0``) installs nothing at all, so the run stays
    byte-identical to the same spec without an adversary block.
    """
    spec = runtime.spec.adversary
    engine = runtime.engine
    addresses = runtime.bootstrap_addresses
    attackers, victims = place_attackers(spec, addresses)
    state = AdversaryState(
        spec,
        attackers,
        victims,
        rng=engine.rng,
        is_alive=engine.is_alive,
        view_size=_view_capacity(engine),
    )
    handle = AdversaryHandle(
        spec=spec, attackers=attackers, victims=victims, state=state
    )
    if not attackers:
        return handle
    engine.add_observer(AttackWindow(state))
    # The event engines fire their first before_cycle at boundary 1, so
    # the window flag for cycle 0 must be primed here; on the cycle
    # engines the observer overwrites it with the same value at cycle 0.
    state.active = spec.start_cycle <= 0 and (
        spec.stop_cycle is None or 0 < spec.stop_cycle
    )
    if isinstance(engine, FastCycleEngine):
        engine.adversary = FastAdversary(engine, state)
    elif isinstance(engine, FastEventEngine):
        engine.adversary = FastEventAdversary(engine, state)
    elif isinstance(engine, LiveEngine):
        for address in attackers:
            wrapper = AdversarialNode(engine._nodes[address], state)
            engine._nodes[address] = wrapper
            # Both paths must see the wrapper: the engine's gossip round
            # reads daemon.node (active thread) and so does the
            # datagram receive callback (passive thread).
            engine.daemon(address).node = wrapper
    elif isinstance(engine, (CycleEngine, EventEngine)):
        # Both object engines resolve every dispatch (cycle iteration;
        # timer/request/reply delivery) through the node table, so
        # swapping the table entry covers all paths.
        for address in attackers:
            engine._nodes[address] = AdversarialNode(
                engine._nodes[address], state
            )
    else:
        raise ConfigurationError(
            f"adversarial scenarios run on the "
            f"{sorted(ADVERSARY_ENGINE_NAMES)} engines; "
            f"got {type(engine).__name__}"
        )
    return handle


class FastAdversary:
    """The adversarial cycle loop for :class:`FastCycleEngine`.

    :meth:`run_cycle` is ``FastCycleEngine._run_cycle_python`` with the
    attack branches inlined.  Parity rules (each mirrors what
    :class:`AdversarialNode` does on the object engines):

    - honest peer selection always runs first (same draws), the eclipse
      retarget is one *extra* ``randrange`` only when live victims exist;
    - a poisoned or tampered buffer arrives with every hop count 1 (sent
      as 0, incremented once by the receiver), so its merge consumes
      exactly the draws the reference merge consumes;
    - a dropping responder skips both merges but still counts the
      exchange completed; a dropping initiator sends an empty request
      (merging an empty buffer is a draw-free no-op on the reference
      engine) and discards the reply.
    """

    __slots__ = (
        "_state",
        "_attacker_ids",
        "_victim_ids",
        "_victim_id_set",
        "_adverts",
    )

    def __init__(self, engine: FastCycleEngine, state: AdversaryState) -> None:
        self._state = state
        id_of = engine._id_of
        attacker_ids = [id_of[a] for a in state.attackers]
        self._attacker_ids = frozenset(attacker_ids)
        self._victim_ids = tuple(id_of[v] for v in state.victims)
        self._victim_id_set = frozenset(self._victim_ids)
        cap = state.view_size + 1
        self._adverts = {
            i: tuple([i] + [b for b in attacker_ids if b != i])[:cap]
            for i in attacker_ids
        }

    @property
    def active(self) -> bool:
        """Whether the attack window is currently open."""
        return self._state.active

    def run_cycle(self, engine: FastCycleEngine) -> None:
        """One full cycle with the attack branches live."""
        kind = self._state.spec.kind
        poisoning = kind in ("hub", "eclipse")
        eclipsing = kind == "eclipse"
        tampering = kind == "tamper"
        dropping = kind == "drop"
        attackers = self._attacker_ids
        victim_ids = self._victim_ids
        victim_set = self._victim_id_set
        adverts = self._adverts

        rng = engine.rng
        config = engine.config
        c = config.view_size
        vids = engine._vids
        vhops = engine._vhops
        vlen = engine._vlen
        row_of = engine._row_of
        alive = engine._alive
        addr_of = engine._addr_of
        push = config.push
        pull = config.pull
        peer_sel = config.peer_selection
        ps_rand = peer_sel is PeerSelection.RAND
        ps_head = peer_sel is PeerSelection.HEAD
        filter_dead = (
            engine.omniscient_peer_selection and engine._maybe_dead_refs
        )
        check_dead = not engine.omniscient_peer_selection
        reachable = engine.reachable
        randrange = rng.randrange
        merge_into = engine._merge_into
        inc = (1).__add__
        alive_at = alive.__getitem__
        completed = 0
        failed = 0

        order = list(engine._live)
        if engine.shuffle_each_cycle:
            rng.shuffle(order)
        for i in order:
            if not alive[i]:
                continue  # crashed by an observer mid-cycle
            row = row_of[i]
            base = row * c
            ln = vlen[row]
            end = base + ln
            if not ln:
                continue  # empty view: nothing to gossip with
            aged = array("q", map(inc, vhops[base:end]))
            vhops[base:end] = aged
            i_atk = i in attackers
            if filter_dead:
                vslice = vids[base:end]
                cand = list(compress(vslice, map(alive_at, vslice)))
                if not cand:
                    continue
                if ps_rand:
                    p = cand[randrange(len(cand))]
                elif ps_head:
                    p = cand[0]
                else:
                    p = cand[-1]
            else:
                if ps_rand:
                    p = vids[base + randrange(ln)]
                elif ps_head:
                    p = vids[base]
                else:
                    p = vids[end - 1]
            if i_atk and eclipsing:
                # The extra retarget draw AdversarialNode.begin_exchange
                # takes, at the same point in the draw order.
                live_victims = [v for v in victim_ids if alive[v]]
                if live_victims:
                    p = live_victims[randrange(len(live_victims))]
            # Hoisted from the non-omniscient selection branch above:
            # check_dead is False whenever filter_dead can be True, and
            # a retargeted victim is live by construction.
            if check_dead and not alive[p]:
                failed += 1
                continue
            if reachable is not None and not reachable(
                addr_of[i], addr_of[p]
            ):
                failed += 1
                continue
            p_atk = p in attackers
            if i_atk and poisoning:
                rq_ids = list(adverts[i])
                rq_hops = [1] * len(rq_ids)
            elif i_atk and dropping:
                rq_ids = []
                rq_hops = []
            elif push:
                rq_ids = [i]
                rq_ids += vids[base:end]
                if i_atk and tampering:
                    rq_hops = [1] * len(rq_ids)
                else:
                    rq_hops = [1]
                    rq_hops += map(inc, aged)
            else:
                rq_ids = []
                rq_hops = []
            if pull:
                if p_atk and dropping:
                    # Request swallowed, empty reply merged (a no-op):
                    # neither side changes, the exchange completes.
                    completed += 1
                    continue
                if p_atk and poisoning and (
                    not eclipsing or i in victim_set
                ):
                    rp_ids = list(adverts[p])
                    rp_hops = [1] * len(rp_ids)
                else:
                    prow = row_of[p]
                    pbase = prow * c
                    pend = pbase + vlen[prow]
                    rp_ids = [p]
                    rp_ids += vids[pbase:pend]
                    if p_atk and tampering:
                        rp_hops = [1] * len(rp_ids)
                    else:
                        rp_hops = [1]
                        rp_hops += map(inc, vhops[pbase:pend])
                if rq_ids:
                    merge_into(p, rq_ids, rq_hops)
                if not (i_atk and dropping):
                    merge_into(i, rp_ids, rp_hops)
            else:
                if p_atk and dropping:
                    completed += 1
                    continue
                merge_into(p, rq_ids, rq_hops)
            completed += 1
        engine.completed_exchanges += completed
        engine.failed_exchanges += failed


class FastEventAdversary:
    """The adversarial event-dispatch loop for :class:`FastEventEngine`.

    :meth:`run_events` is ``FastEventEngine._run_events_python`` with the
    attack branches inlined.  Unlike :class:`FastAdversary` (whose cycle
    loop only runs while the window is open) this loop carries the whole
    run: the window may open at any cycle boundary and an accelerated
    slice cannot pause mid-slice to check the flag, so
    :attr:`AdversaryState.active` is read per event and outside the
    window every branch reduces to the honest loop draw for draw.

    Parity rules (each mirrors what :class:`AdversarialNode` does on the
    reference :class:`~repro.simulation.event_engine.EventEngine`):

    - honest view aging and peer selection always run first (same
      draws); the eclipse retarget is one *extra* ``randrange`` only
      when an exchange started and live victims exist;
    - a poisoned or tampered buffer is stored with every hop count 1
      (sent as 0, incremented once on arrival), so its merge consumes
      exactly the draws the reference merge consumes;
    - a dropping initiator sends an empty request through the normal
      loss/latency draws and discards the reply unmerged; a dropping
      responder still sends the empty reply (the wrapper returns ``[]``,
      which the reference engine ships like any reply) but skips the
      request merge entirely -- no merge draws on either engine.
    """

    __slots__ = (
        "_state",
        "_attacker_ids",
        "_victim_ids",
        "_victim_id_set",
        "_advert_ids",
        "_advert_hops",
        "_ones",
    )

    def __init__(self, engine: FastEventEngine, state: AdversaryState) -> None:
        self._state = state
        id_of = engine._id_of
        attacker_ids = [id_of[a] for a in state.attackers]
        self._attacker_ids = frozenset(attacker_ids)
        self._victim_ids = tuple(id_of[v] for v in state.victims)
        self._victim_id_set = frozenset(self._victim_ids)
        cap = engine._slot_stride  # view_size + 1, the poison payload cap
        self._advert_ids = {
            i: array("q", ([i] + [b for b in attacker_ids if b != i])[:cap])
            for i in attacker_ids
        }
        self._advert_hops = {
            i: array("q", [1] * len(ids))
            for i, ids in self._advert_ids.items()
        }
        self._ones = array("q", [1] * cap)

    @property
    def active(self) -> bool:
        """Whether the attack window is currently open."""
        return self._state.active

    def run_events(self, engine: FastEventEngine, end: int) -> None:
        """Dispatch all events up to ``end`` with the attack branches live."""
        state = self._state
        kind = state.spec.kind
        poisoning = kind in ("hub", "eclipse")
        eclipsing = kind == "eclipse"
        tampering = kind == "tamper"
        dropping = kind == "drop"
        attackers = self._attacker_ids
        victim_ids = self._victim_ids
        victim_set = self._victim_id_set
        advert_ids = self._advert_ids
        advert_hops = self._advert_hops
        ones = self._ones

        sched = engine._sched
        heap = sched._heap
        tick_shift = sched._tick_shift
        seq_shift = sched._seq_shift
        data_mask = sched._data_mask
        seq = sched._seq
        config = engine.config
        c = config.view_size
        stride = engine._slot_stride
        ticks_per_period = engine.ticks_per_period
        tick_scale = engine._tick_scale
        rng = engine.rng
        randrange = rng.randrange
        merge_into = engine._merge_into
        vids = engine._vids
        vhops = engine._vhops
        vlen = engine._vlen
        row_of = engine._row_of
        alive = engine._alive
        addr_of = engine._addr_of
        m_ids = engine._m_ids
        m_hops = engine._m_hops
        m_len = engine._m_len
        m_src = engine._m_src
        m_dst = engine._m_dst
        free_slots = engine._free_slots
        new_slot = engine._new_slot
        push_proto = config.push
        pull = config.pull
        peer_sel = config.peer_selection
        ps_rand = peer_sel is PeerSelection.RAND
        ps_head = peer_sel is PeerSelection.HEAD
        omniscient = engine.omniscient_peer_selection
        validating = config.validate_descriptors
        if validating:
            from repro.defenses.validation import sanitize_indexed
        inc = (1).__add__
        alive_at = alive.__getitem__
        rand = rng.random
        (
            reachable,
            latency_sample,
            loss_drops,
            no_loss,
            bernoulli_p,
            constant_delay,
            uniform,
            constant_delay_key,
        ) = engine._hot_bindings(tick_shift)
        free_pop = free_slots.pop
        free_append = free_slots.append
        completed = 0
        failed = 0
        sent = 0
        lost = 0
        next_boundary = (engine._boundary_index + 1) * ticks_per_period
        end_key = ((end + 1) << tick_shift) - 1
        boundary_key = next_boundary << tick_shift
        period_key = ticks_per_period << tick_shift
        tick_mask = ~((1 << tick_shift) - 1)
        last_key = None

        try:
            while heap:
                key = heap[0]
                if key > end_key:
                    break
                if key >= boundary_key:
                    # flush counters and hand control to the observers
                    # (AttackWindow among them: the window flag can flip
                    # here, which is why it is re-read on every event).
                    engine.completed_exchanges += completed
                    engine.failed_exchanges += failed
                    engine.messages_sent += sent
                    engine.messages_lost += lost
                    completed = failed = sent = lost = 0
                    sched._seq = seq
                    if last_key is not None:
                        sched.now_tick = last_key >> tick_shift
                    engine._fire_boundaries(key >> tick_shift)
                    next_boundary = (
                        engine._boundary_index + 1
                    ) * ticks_per_period
                    boundary_key = next_boundary << tick_shift
                    seq = sched._seq
                    (
                        reachable,
                        latency_sample,
                        loss_drops,
                        no_loss,
                        bernoulli_p,
                        constant_delay,
                        uniform,
                        constant_delay_key,
                    ) = engine._hot_bindings(tick_shift)
                    continue  # re-peek: observers may have pushed events
                key = heappop(heap)
                last_key = key
                data = key & data_mask

                if data < _REQUEST:  # timer; data is the bare node id
                    i = data
                    if not alive[i]:
                        continue  # crashed: the timer dies with the node
                    row = row_of[i]
                    base = row * c
                    ln = vlen[row]
                    row_end = base + ln
                    p = -1
                    if ln:
                        aged = array("q", map(inc, vhops[base:row_end]))
                        vhops[base:row_end] = aged
                        if not omniscient:
                            if ps_rand:
                                p = vids[base + randrange(ln)]
                            elif ps_head:
                                p = vids[base]
                            else:
                                p = vids[row_end - 1]
                        elif engine._maybe_dead_refs:
                            vslice = vids[base:row_end]
                            cand = list(
                                compress(vslice, map(alive_at, vslice))
                            )
                            if cand:
                                if ps_rand:
                                    p = cand[randrange(len(cand))]
                                elif ps_head:
                                    p = cand[0]
                                else:
                                    p = cand[-1]
                        else:
                            if ps_rand:
                                p = vids[base + randrange(ln)]
                            elif ps_head:
                                p = vids[base]
                            else:
                                p = vids[row_end - 1]
                    i_atk = p >= 0 and state.active and i in attackers
                    if i_atk and eclipsing:
                        # The extra retarget draw AdversarialNode takes,
                        # at the same point in the draw order.
                        live_victims = [v for v in victim_ids if alive[v]]
                        if live_victims:
                            p = live_victims[randrange(len(live_victims))]
                    base_key = key & tick_mask
                    if p >= 0:
                        sent += 1
                        if reachable is not None and not reachable(
                            addr_of[i], addr_of[p]
                        ):
                            lost += 1
                        elif no_loss or (
                            rand() >= bernoulli_p
                            if bernoulli_p is not None
                            else not loss_drops(rng)
                        ):
                            if constant_delay is not None:
                                delay_key = constant_delay_key
                            elif uniform is not None:
                                delay_key = int(
                                    (uniform[0] + uniform[1] * rand())
                                    * tick_scale
                                ) << tick_shift
                            else:
                                delay = latency_sample(rng)
                                if delay < 0:
                                    raise SimulationError(
                                        "cannot schedule into the past: "
                                        f"{delay}"
                                    )
                                delay_key = (
                                    int(delay * tick_scale) << tick_shift
                                )
                            slot = (
                                free_pop() if free_slots else new_slot()
                            )
                            off = slot * stride
                            if i_atk and poisoning:
                                adv = advert_ids[i]
                                na = len(adv)
                                m_ids[off:off + na] = adv
                                m_hops[off:off + na] = advert_hops[i]
                                m_len[slot] = na
                            elif i_atk and dropping:
                                m_len[slot] = 0
                            elif push_proto:
                                m_ids[off] = i
                                m_ids[off + 1:off + 1 + ln] = vids[
                                    base:row_end
                                ]
                                if i_atk and tampering:
                                    m_hops[off:off + 1 + ln] = ones[
                                        :ln + 1
                                    ]
                                else:
                                    m_hops[off] = 1
                                    m_hops[off + 1:off + 1 + ln] = array(
                                        "q", map(inc, vhops[base:row_end])
                                    )
                                m_len[slot] = ln + 1
                            else:
                                m_len[slot] = 0
                            m_src[slot] = i
                            m_dst[slot] = p
                            heappush(
                                heap,
                                base_key
                                + delay_key
                                + ((seq << seq_shift) | _REQUEST | slot),
                            )
                            seq += 1
                        else:
                            lost += 1
                    heappush(
                        heap,
                        base_key + period_key + ((seq << seq_shift) | data),
                    )
                    seq += 1

                elif data < _REPLY:  # request delivery (passive thread)
                    slot = data & _IDX_MASK
                    dst = m_dst[slot]
                    if not alive[dst]:
                        failed += 1
                        free_append(slot)
                        continue
                    src = m_src[slot]
                    n = m_len[slot]
                    off = slot * stride
                    dst_atk = state.active and dst in attackers
                    rslot = -1
                    if dst_atk and dropping:
                        # The wrapper never calls the inner node: the
                        # request is swallowed unmerged (no merge draws)
                        # and an empty reply goes out like any other.
                        if pull:
                            rslot = (
                                free_pop() if free_slots else new_slot()
                            )
                            m_len[rslot] = 0
                            m_src[rslot] = dst
                            m_dst[rslot] = src
                    else:
                        if pull:
                            # the reply snapshot precedes the merge.
                            rslot = (
                                free_pop() if free_slots else new_slot()
                            )
                            roff = rslot * stride
                            if dst_atk and poisoning and (
                                not eclipsing or src in victim_set
                            ):
                                adv = advert_ids[dst]
                                na = len(adv)
                                m_ids[roff:roff + na] = adv
                                m_hops[roff:roff + na] = advert_hops[dst]
                                m_len[rslot] = na
                            else:
                                row = row_of[dst]
                                base = row * c
                                ln = vlen[row]
                                m_ids[roff] = dst
                                m_ids[roff + 1:roff + 1 + ln] = vids[
                                    base:base + ln
                                ]
                                if dst_atk and tampering:
                                    m_hops[roff:roff + 1 + ln] = ones[
                                        :ln + 1
                                    ]
                                else:
                                    m_hops[roff] = 1
                                    m_hops[
                                        roff + 1:roff + 1 + ln
                                    ] = array(
                                        "q",
                                        map(inc, vhops[base:base + ln]),
                                    )
                                m_len[rslot] = ln + 1
                            m_src[rslot] = dst
                            m_dst[rslot] = src
                        if n:
                            if validating:
                                r_ids, r_hops = sanitize_indexed(
                                    m_ids[off:off + n].tolist(),
                                    m_hops[off:off + n].tolist(),
                                    dst,
                                    src,
                                    c,
                                )
                                if r_ids:
                                    merge_into(dst, r_ids, r_hops)
                            else:
                                merge_into(
                                    dst,
                                    m_ids[off:off + n].tolist(),
                                    m_hops[off:off + n].tolist(),
                                )
                    completed += 1
                    free_append(slot)
                    if rslot >= 0:
                        sent += 1
                        if reachable is not None and not reachable(
                            addr_of[dst], addr_of[src]
                        ):
                            lost += 1
                            free_append(rslot)
                        elif no_loss or (
                            rand() >= bernoulli_p
                            if bernoulli_p is not None
                            else not loss_drops(rng)
                        ):
                            if constant_delay is not None:
                                delay_key = constant_delay_key
                            elif uniform is not None:
                                delay_key = int(
                                    (uniform[0] + uniform[1] * rand())
                                    * tick_scale
                                ) << tick_shift
                            else:
                                delay = latency_sample(rng)
                                if delay < 0:
                                    raise SimulationError(
                                        "cannot schedule into the past: "
                                        f"{delay}"
                                    )
                                delay_key = (
                                    int(delay * tick_scale) << tick_shift
                                )
                            heappush(
                                heap,
                                (key & tick_mask)
                                + delay_key
                                + ((seq << seq_shift) | _REPLY | rslot),
                            )
                            seq += 1
                        else:
                            lost += 1
                            free_append(rslot)

                else:  # reply delivery (second half of the active thread)
                    slot = data & _IDX_MASK
                    dst = m_dst[slot]
                    if not alive[dst]:
                        failed += 1
                        free_append(slot)
                        continue
                    if dropping and state.active and dst in attackers:
                        # a dropping initiator discards the reply unmerged
                        free_append(slot)
                        continue
                    n = m_len[slot]
                    off = slot * stride
                    if validating:
                        r_ids, r_hops = sanitize_indexed(
                            m_ids[off:off + n].tolist(),
                            m_hops[off:off + n].tolist(),
                            dst,
                            m_src[slot],
                            c,
                        )
                        if r_ids:
                            merge_into(dst, r_ids, r_hops)
                    else:
                        merge_into(
                            dst,
                            m_ids[off:off + n].tolist(),
                            m_hops[off:off + n].tolist(),
                        )
                    free_append(slot)

        finally:
            # flush even when an observer raises mid-slice, so a caller
            # that catches and resumes sees consistent counters and
            # scheduler state (the honest paths guard the same way).
            engine.completed_exchanges += completed
            engine.failed_exchanges += failed
            engine.messages_sent += sent
            engine.messages_lost += lost
            if seq > sched._seq:
                sched._seq = seq
            if last_key is not None:
                sched.now_tick = last_key >> tick_shift


class NetworkInterceptor:
    """A man-in-the-middle on a :class:`LoopbackNetwork`.

    Rewrites (or swallows) datagrams *sent by attackers* while the
    attack window is active: the codec frame is decoded, forged
    according to the spec kind, and re-encoded in the wire version it
    arrived in; unparsable data passes through untouched.  Install via
    :func:`intercept_network`, remove with :meth:`uninstall`.
    """

    def __init__(self, network: LoopbackNetwork, state: AdversaryState) -> None:
        self.network = network
        self.state = state
        self.forwarded = 0
        self.rewritten = 0
        self.dropped = 0
        self._original = network.deliver
        network.deliver = self.deliver  # type: ignore[method-assign]

    def uninstall(self) -> None:
        """Restore the network's own ``deliver`` (idempotent)."""
        try:
            del self.network.deliver  # type: ignore[attr-defined]
        except AttributeError:
            pass

    def deliver(
        self, sender: Address, destination: Address, data: bytes
    ) -> None:
        state = self.state
        if not state.active or sender not in state.attacker_set:
            self.forwarded += 1
            return self._original(sender, destination, data)
        kind = state.spec.kind
        if kind == "drop":
            self.dropped += 1
            return None
        try:
            kind_byte, exchange_id = _ENVELOPE.unpack_from(data, 0)
            version, payload = decode_frame(bytes(data[_ENVELOPE.size:]))
        except (CodecError, struct_error):
            # Not a gossip frame (or truncated): forward untouched.
            self.forwarded += 1
            return self._original(sender, destination, data)
        if kind == "tamper":
            payload = [NodeDescriptor(d.address, 0) for d in payload]
        elif kind == "hub":
            payload = state.poison_payload(sender)
        else:  # eclipse: only replies to victims are forged
            if kind_byte != _KIND_REPLY or destination not in state.victim_set:
                self.forwarded += 1
                return self._original(sender, destination, data)
            payload = state.poison_payload(sender)
        self.rewritten += 1
        frame = _ENVELOPE.pack(kind_byte, exchange_id) + encode_message(
            payload, version=version
        )
        return self._original(sender, destination, frame)


def intercept_network(
    network: LoopbackNetwork, state: AdversaryState
) -> NetworkInterceptor:
    """Install a :class:`NetworkInterceptor` on ``network``."""
    return NetworkInterceptor(network, state)

"""Summary statistics for degree dynamics (paper Table 2).

Table 2 characterizes the degree of individual nodes over time: 50 nodes
are traced for K = 300 cycles, and the paper reports

- ``D_K``  -- the average node degree over the *whole overlay* in cycle K;
- ``d_bar``   -- the average over the traced nodes of their time-averaged
  degrees ``d_i``;
- ``sqrt(sigma)`` -- the square root of the empirical variance of those
  time averages (variance computed with the ``n - 1`` denominator).

A small ``sqrt(sigma)`` means all nodes oscillate around the same mean
degree -- no emerging hubs; the paper finds it several times larger for
``rand`` view selection than for ``head``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np


class RunningStats:
    """Streaming mean/variance via Welford's algorithm.

    Numerically stable single-pass statistics; used by long-running
    recorders that should not retain full series.
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the statistics."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Sequence[float]) -> None:
        """Fold many observations."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Sample mean (nan when empty)."""
        return self._mean if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Unbiased sample variance (nan for < 2 observations)."""
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if not math.isnan(variance) else variance

    def __repr__(self) -> str:
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.4g}, "
            f"std={self.std:.4g})"
        )


@dataclasses.dataclass(frozen=True)
class DegreeDynamics:
    """The Table 2 row for one protocol."""

    final_cycle_mean_degree: float
    """``D_K``: mean degree over all nodes in the final cycle."""

    traced_mean: float
    """``d_bar``: mean of the traced nodes' time-averaged degrees."""

    traced_std: float
    """``sqrt(sigma)``: std (n-1 denominator) of those time averages."""

    n_traced: int
    """Number of traced nodes that stayed alive for the whole window."""

    n_cycles: int
    """Length K of the traced window."""


def degree_dynamics_summary(
    traces: Sequence[Sequence[float]],
    final_cycle_degrees: Sequence[float],
) -> DegreeDynamics:
    """Compute the Table 2 statistics.

    Parameters
    ----------
    traces:
        One degree series per traced node (all the same length K).
        Negative entries mark cycles where the node was dead; nodes with
        any dead cycle are excluded (cannot happen in the paper's setup,
        where tracing happens without churn).
    final_cycle_degrees:
        Degrees of *all* overlay nodes in the final cycle (for ``D_K``).
    """
    matrix = np.asarray(traces, dtype=np.float64)
    if matrix.ndim != 2 or matrix.size == 0:
        raise ValueError("traces must be a non-empty 2-D matrix")
    alive = ~(matrix < 0).any(axis=1)
    matrix = matrix[alive]
    if matrix.shape[0] == 0:
        raise ValueError("no traced node stayed alive over the whole window")
    time_averages = matrix.mean(axis=1)
    d_bar = float(time_averages.mean())
    if time_averages.size > 1:
        sigma = float(time_averages.var(ddof=1))
    else:
        sigma = 0.0
    finals = np.asarray(final_cycle_degrees, dtype=np.float64)
    if finals.size == 0:
        raise ValueError("final_cycle_degrees must not be empty")
    return DegreeDynamics(
        final_cycle_mean_degree=float(finals.mean()),
        traced_mean=d_bar,
        traced_std=math.sqrt(sigma),
        n_traced=int(matrix.shape[0]),
        n_cycles=int(matrix.shape[1]),
    )

"""Time-series and distribution statistics used by the evaluation.

- :mod:`repro.stats.autocorrelation` -- the autocorrelation function with
  the paper's normalization and the 99% confidence band of Figure 5;
- :mod:`repro.stats.summary` -- running (Welford) statistics and the
  degree-dynamics summary of Table 2;
- :mod:`repro.stats.distributions` -- histograms and the log-log binning
  behind Figure 4.
"""

from repro.stats.autocorrelation import autocorrelation, confidence_band
from repro.stats.distributions import (
    degree_distribution,
    log_spaced_cycles,
)
from repro.stats.sampling_quality import (
    SamplingQualityReport,
    evaluate_sampling_quality,
)
from repro.stats.summary import RunningStats, degree_dynamics_summary

__all__ = [
    "RunningStats",
    "SamplingQualityReport",
    "autocorrelation",
    "confidence_band",
    "degree_distribution",
    "degree_dynamics_summary",
    "evaluate_sampling_quality",
    "log_spaced_cycles",
]

"""Sampling-quality analysis: how far is ``get_peer()`` from uniform?

The paper's central question is the *quality* of the sample stream a peer
sampling service produces (Section 2: "there is a trade-off between the
required quality of sampling and the performance cost").  This module
quantifies that quality directly on the service API, complementing the
topology-level analysis of :mod:`repro.graph`:

- :func:`sample_frequencies` -- empirical global hit distribution of
  repeated ``get_peer`` calls across many callers;
- :func:`chi_square_uniformity` -- the chi-square statistic (and its
  normalized form) of that distribution against the uniform null;
- :func:`total_variation_from_uniform` -- L1 distance to uniform in [0, 1];
- :func:`repeat_probability` -- short-window repeat rate of one caller's
  stream (temporal correlation: views change slowly, so consecutive calls
  collide far more often than independent uniform draws would);
- :class:`SamplingQualityReport` / :func:`evaluate_sampling_quality` --
  everything at once, for any object exposing ``get_peer``.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.descriptor import Address

GetPeer = Callable[[], Optional[Address]]


def sample_frequencies(
    services: Sequence[object],
    calls_per_service: int,
) -> Dict[Address, int]:
    """Pooled hit counts of ``get_peer`` across many callers.

    Every service contributes ``calls_per_service`` samples; the result
    maps each sampled address to its total hit count.  ``None`` results
    (empty views) are skipped.
    """
    if calls_per_service < 1:
        raise ValueError(
            f"calls_per_service must be >= 1, got {calls_per_service}"
        )
    counts: Counter = Counter()
    for service in services:
        for _ in range(calls_per_service):
            peer = service.get_peer()
            if peer is not None:
                counts[peer] += 1
    return dict(counts)


def chi_square_uniformity(
    counts: Dict[Address, int],
    population: Sequence[Address],
) -> float:
    """Chi-square statistic of ``counts`` against the uniform distribution.

    Addresses of ``population`` absent from ``counts`` contribute their
    full expected count.  Returns the *normalized* statistic
    ``chi2 / degrees_of_freedom`` so that values near 1.0 mean
    "consistent with uniform" and values far above 1.0 mean structure.
    """
    n = len(population)
    if n < 2:
        raise ValueError("population must contain at least 2 addresses")
    total = sum(counts.get(address, 0) for address in population)
    if total == 0:
        raise ValueError("counts contain no samples over the population")
    expected = total / n
    chi2 = sum(
        (counts.get(address, 0) - expected) ** 2 / expected
        for address in population
    )
    return chi2 / (n - 1)


def total_variation_from_uniform(
    counts: Dict[Address, int],
    population: Sequence[Address],
) -> float:
    """Total-variation distance between the hit distribution and uniform.

    0.0 means exactly uniform over ``population``; 1.0 means maximally
    concentrated.
    """
    n = len(population)
    if n == 0:
        raise ValueError("population must not be empty")
    total = sum(counts.get(address, 0) for address in population)
    if total == 0:
        raise ValueError("counts contain no samples over the population")
    uniform = 1.0 / n
    return 0.5 * sum(
        abs(counts.get(address, 0) / total - uniform)
        for address in population
    )


def repeat_probability(
    service: object,
    calls: int,
    window: int = 1,
) -> float:
    """Probability that a sample repeats one seen within ``window`` calls.

    For independent uniform sampling over N-1 peers this is about
    ``window / (N - 1)``; gossip services sample from a slowly-changing
    c-sized view, so their repeat rate is about ``window / c`` -- much
    higher.  This is the "correlation in time" the paper's ``getPeer``
    specification leaves implementation-defined.
    """
    if calls < 2:
        raise ValueError("need at least 2 calls to measure repeats")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    recent: List[Address] = []
    repeats = 0
    observations = 0
    for _ in range(calls):
        peer = service.get_peer()
        if peer is None:
            continue
        if recent:
            observations += 1
            if peer in recent[-window:]:
                repeats += 1
        recent.append(peer)
    if observations == 0:
        return 0.0
    return repeats / observations


@dataclasses.dataclass(frozen=True)
class SamplingQualityReport:
    """Summary of one service population's sampling quality."""

    n_population: int
    total_samples: int
    normalized_chi_square: float
    """~1.0 for uniform sampling; >> 1.0 for structured sampling."""
    total_variation: float
    """L1/2 distance to the uniform distribution, in [0, 1]."""
    coverage: float
    """Fraction of the population sampled at least once."""
    repeat_probability_window1: float
    """One caller's immediate-repeat rate (temporal correlation)."""


def evaluate_sampling_quality(
    services: Dict[Address, object],
    calls_per_service: int = 20,
    repeat_calls: int = 200,
) -> SamplingQualityReport:
    """Evaluate a population of peer sampling services in one sweep.

    Parameters
    ----------
    services:
        Mapping of address -> service (anything with ``get_peer``); the
        key set defines the population the hit distribution is measured
        against.
    calls_per_service:
        Samples drawn from every service for the global distribution.
    repeat_calls:
        Samples drawn from one (arbitrary, first) service for the
        temporal repeat rate.

    Degenerate inputs fail eagerly: an empty service mapping or a
    single-node population has no uniform null to score against, so both
    raise :class:`ValueError` before any sampling happens (instead of
    surfacing as a ``StopIteration`` or a zero-expected-count division
    mid-sweep).
    """
    if not services:
        raise ValueError("need at least one service to evaluate")
    if len(services) < 2:
        raise ValueError(
            "a single-node population cannot be scored against the "
            "uniform distribution; need at least 2 services"
        )
    population = list(services)
    counts = sample_frequencies(list(services.values()), calls_per_service)
    first = next(iter(services.values()))
    return SamplingQualityReport(
        n_population=len(population),
        total_samples=sum(counts.values()),
        normalized_chi_square=chi_square_uniformity(counts, population),
        total_variation=total_variation_from_uniform(counts, population),
        coverage=sum(1 for a in population if counts.get(a, 0) > 0)
        / len(population),
        repeat_probability_window1=repeat_probability(first, repeat_calls),
    )

"""Autocorrelation of degree time series (paper Figure 5).

The paper plots, for a fixed node's degree series ``d(1..K)``, the lag-k
autocorrelation

    r_k = sum_{j=1}^{K-k} (d_j - mean)(d_{j+k} - mean)
          / sum_{j=1}^{K} (d_j - mean)^2

together with a 99% confidence band (``+- z_{0.995} / sqrt(K)``) under the
null hypothesis of an i.i.d. series.  A series staying inside the band is
"practically random" -- the paper's verdict for (rand,head,pushpull).
"""

from __future__ import annotations

import statistics
from typing import Sequence, Tuple

import numpy as np


def autocorrelation(series: Sequence[float], max_lag: int) -> np.ndarray:
    """Autocorrelation ``r_0 .. r_max_lag`` with the paper's normalization.

    ``r_0`` is always 1 (for a non-constant series).  Lags beyond
    ``len(series) - 1`` are reported as 0.

    Raises
    ------
    ValueError
        If the series is empty or ``max_lag`` is negative.
    """
    values = np.asarray(series, dtype=np.float64)
    if values.size == 0:
        raise ValueError("autocorrelation of an empty series")
    if max_lag < 0:
        raise ValueError(f"max_lag must be >= 0, got {max_lag}")
    centered = values - values.mean()
    denominator = float(np.dot(centered, centered))
    result = np.zeros(max_lag + 1, dtype=np.float64)
    if denominator == 0.0:
        # A constant series: correlation undefined; report r_0 = 1, rest 0,
        # matching the convention of most statistics packages.
        result[0] = 1.0
        return result
    k_max = min(max_lag, values.size - 1)
    for k in range(k_max + 1):
        if k == 0:
            result[0] = 1.0
        else:
            result[k] = float(np.dot(centered[:-k], centered[k:])) / denominator
    return result


def confidence_band(n_samples: int, level: float = 0.99) -> float:
    """Half-width of the autocorrelation confidence band.

    Under the null of an i.i.d. series of length ``n_samples``, sample
    autocorrelations are asymptotically N(0, 1/n), so the two-sided
    ``level`` band is ``z_{(1+level)/2} / sqrt(n)``.

    >>> round(confidence_band(300), 4)
    0.1487
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    z = statistics.NormalDist().inv_cdf(0.5 + level / 2.0)
    return z / (n_samples ** 0.5)


def fraction_outside_band(
    correlations: Sequence[float], band: float, skip_lag_zero: bool = True
) -> float:
    """Fraction of lags whose autocorrelation leaves ``+-band``.

    Under the i.i.d. null about ``1 - level`` of lags fall outside; a much
    larger fraction signals structure (periodicity, drift).
    """
    values = np.asarray(correlations, dtype=np.float64)
    if skip_lag_zero:
        values = values[1:]
    if values.size == 0:
        return 0.0
    return float((np.abs(values) > band).mean())


def dominant_period(correlations: Sequence[float]) -> int:
    """Lag (>= 1) of the highest positive autocorrelation peak.

    A crude periodicity detector used by the degree-dynamics analysis: for
    oscillating series (the paper's (*,rand,*) protocols) this returns the
    oscillation period; returns 0 when no lag beats the noise floor.
    """
    values = np.asarray(correlations, dtype=np.float64)
    if values.size <= 1:
        return 0
    tail = values[1:]
    best = int(np.argmax(tail))
    if tail[best] <= 0.0:
        return 0
    return best + 1


def autocorrelation_with_band(
    series: Sequence[float], max_lag: int, level: float = 0.99
) -> Tuple[np.ndarray, float]:
    """Convenience: ``(autocorrelation, band half-width)`` in one call."""
    return (
        autocorrelation(series, max_lag),
        confidence_band(len(series), level),
    )

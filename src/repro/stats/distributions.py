"""Distribution tools for the degree-distribution study (paper Figure 4).

Figure 4 shows degree distributions on a log-log scale at exponentially
spaced cycles (0, 3, 30, 300).  This module provides the frequency
computation, the exponential cycle schedule and comparison helpers used to
decide whether a distribution is "balanced" (head view selection) or
heavy-tailed (rand view selection).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def degree_distribution(
    degrees: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray]:
    """``(values, counts)`` of the degree frequency distribution.

    Values are sorted ascending; only non-empty bins are returned, matching
    the points plotted on the paper's log-log axes.
    """
    array = np.asarray(degrees, dtype=np.int64)
    if array.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.unique(array, return_counts=True)


def ccdf(degrees: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Complementary CDF ``P(D >= d)`` at each observed degree value.

    More robust than raw frequencies for eyeballing heavy tails.
    """
    values, counts = degree_distribution(degrees)
    if values.size == 0:
        return values, np.empty(0, dtype=np.float64)
    total = counts.sum()
    tail = np.cumsum(counts[::-1])[::-1] / total
    return values, tail


def log_spaced_cycles(max_cycle: int, per_decade: int = 1) -> List[int]:
    """Exponentially spaced observation cycles in ``[0, max_cycle]``.

    With ``per_decade=1`` and ``max_cycle=300`` this yields the paper's
    schedule ``[0, 3, 30, 300]``.

    >>> log_spaced_cycles(300)
    [0, 3, 30, 300]
    """
    if max_cycle < 0:
        raise ValueError(f"max_cycle must be >= 0, got {max_cycle}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    schedule = [0]
    # Work backwards from max_cycle in factors of 10^(1/per_decade).
    factor = 10.0 ** (1.0 / per_decade)
    value = float(max_cycle)
    reversed_tail: List[int] = []
    while value >= 1.0:
        cycle = int(round(value))
        if not reversed_tail or cycle < reversed_tail[-1]:
            reversed_tail.append(cycle)
        value /= factor
    schedule.extend(sorted(c for c in reversed_tail if c > 0))
    return schedule


def distribution_span(degrees: Sequence[int]) -> int:
    """``max - min`` of a degree sample (0 for empty input).

    A quick balance indicator: converged head-selection overlays have a
    span of a few dozen, rand-selection ones several hundred.
    """
    array = np.asarray(degrees, dtype=np.int64)
    if array.size == 0:
        return 0
    return int(array.max() - array.min())


def tail_weight(degrees: Sequence[int], multiple: float = 2.0) -> float:
    """Fraction of nodes with degree above ``multiple`` times the mean.

    Heavy-tailed (rand view selection) distributions put visible mass
    there; balanced (head) ones essentially none.
    """
    array = np.asarray(degrees, dtype=np.float64)
    if array.size == 0:
        return 0.0
    return float((array > multiple * array.mean()).mean())


def histogram_dict(degrees: Sequence[int]) -> Dict[int, int]:
    """The distribution as a plain ``{degree: count}`` dict."""
    values, counts = degree_distribution(degrees)
    return {int(v): int(c) for v, c in zip(values, counts)}

"""Sharded single-run execution: identity contract and wall clock.

Three claims about :class:`~repro.simulation.sharded.ShardedCycleEngine`
are demonstrated:

1. **identity** (asserted everywhere): at small N a K-sharded run --
   shared-memory workers, batched cross-shard exchanges -- produces
   byte-identical views and exchange counters to the in-process serial
   run of the same seed, including through a 40% crash;
2. **speedup** (asserted on capable boxes): with ``REPRO_SCALE=full``
   (N = 10^5) on a 4+-core machine, K >= 4 shards run a cycle >= 2x
   faster than the serial kernel.  On smaller boxes the ratio is
   recorded but not asserted -- on one core the barrier and message
   traffic are pure overhead, which is exactly why ``--shards`` is
   opt-in;
3. **scale headline** (full scale, or ``REPRO_BENCH_HEADLINE=1``): a
   N = 10^6 run under churn completes at seconds-per-cycle, the regime
   the shard plumbing exists for.

Machine-readable results land in ``benchmarks/out/BENCH_shard.json``
(uploaded by the CI ``shard`` job): cpu count, shard count, ms/cycle
serial vs sharded, the identity verdict, and the headline run's
seconds-per-cycle figures.
"""

import os
import time

from benchmarks.conftest import emit_json, emit_report
from repro.core.config import ProtocolConfig
from repro.experiments.reporting import format_table
from repro.simulation.scenarios import random_bootstrap
from repro.simulation.sharded import ShardedCycleEngine

SPEEDUP_FLOOR = 2.0
"""Required sharded speedup at full scale on a 4+-core box."""

IDENTITY_NODES = 400
IDENTITY_CYCLES = 10
IDENTITY_CRASHES = 160
IDENTITY_HEAL = 6

TIMING_NODES = {"quick": 20_000, "default": 50_000, "full": 100_000}
TIMING_CYCLES = 3
WARM_CYCLES = 2

HEADLINE_NODES = 1_000_000
HEADLINE_CRASH_FRACTION = 0.3

CONFIG = ProtocolConfig.from_label("(rand,head,pushpull)", 30).replace(
    healer=1, swapper=1
)


def _fingerprint(engine):
    return {
        address: tuple((d.address, d.hop_count) for d in entries)
        for address, entries in engine.views().items()
    }


def _identity_run(shards):
    engine = ShardedCycleEngine(CONFIG, seed=11, shards=shards)
    try:
        random_bootstrap(engine, IDENTITY_NODES)
        engine.run(IDENTITY_CYCLES)
        engine.crash_random_nodes(IDENTITY_CRASHES)
        engine.run(IDENTITY_HEAL)
        return (
            _fingerprint(engine),
            engine.completed_exchanges,
            engine.failed_exchanges,
        )
    finally:
        engine.close()


def _timed_cycles(n_nodes, shards, cycles=TIMING_CYCLES):
    engine = ShardedCycleEngine(CONFIG, seed=11, shards=shards)
    try:
        random_bootstrap(engine, n_nodes)
        engine.run(WARM_CYCLES)  # spawn workers / map segments off-clock
        started = time.perf_counter()
        engine.run(cycles)
        return (time.perf_counter() - started) / cycles
    finally:
        engine.close()


def _headline_run():
    """N = 10^6 under churn: seconds per cycle, steady and crashed."""
    engine = ShardedCycleEngine(CONFIG, seed=11, shards=1)
    try:
        started = time.perf_counter()
        random_bootstrap(engine, HEADLINE_NODES)
        bootstrap_seconds = time.perf_counter() - started
        started = time.perf_counter()
        engine.run(2)
        steady = (time.perf_counter() - started) / 2
        engine.crash_random_nodes(
            int(HEADLINE_NODES * HEADLINE_CRASH_FRACTION)
        )
        started = time.perf_counter()
        engine.run(2)
        churn = (time.perf_counter() - started) / 2
        return {
            "n_nodes": HEADLINE_NODES,
            "bootstrap_seconds": bootstrap_seconds,
            "steady_seconds_per_cycle": steady,
            "churn_seconds_per_cycle": churn,
            "crashed_nodes": int(HEADLINE_NODES * HEADLINE_CRASH_FRACTION),
            "completed_exchanges": engine.completed_exchanges,
            "completed": True,
        }
    finally:
        engine.close()


def test_sharded_identity_and_speedup(scale):
    cpu_count = os.cpu_count() or 1
    shards = max(2, min(cpu_count, 8))

    serial_result = _identity_run(shards=1)
    sharded_result = _identity_run(shards=shards)
    identical = serial_result == sharded_result

    n_nodes = TIMING_NODES.get(scale.name, TIMING_NODES["quick"])
    serial_cycle = _timed_cycles(n_nodes, shards=1)
    sharded_cycle = _timed_cycles(n_nodes, shards=shards)
    speedup = serial_cycle / sharded_cycle if sharded_cycle else 0.0

    headline = None
    if scale.name == "full" or os.environ.get("REPRO_BENCH_HEADLINE"):
        headline = _headline_run()

    rows = [
        ["serial", 1, n_nodes, round(serial_cycle * 1000, 1)],
        ["sharded", shards, n_nodes, round(sharded_cycle * 1000, 1)],
    ]
    if headline:
        rows.append(
            [
                "headline",
                1,
                headline["n_nodes"],
                round(headline["churn_seconds_per_cycle"] * 1000, 1),
            ]
        )
    report = format_table(
        ["mode", "shards", "nodes", "ms/cycle"],
        rows,
        title=(
            f"single-run sharding (scale={scale.name}, {cpu_count} cores, "
            f"speedup {speedup:.2f}x, identical={identical})"
        ),
    )
    emit_report("bench_shard", report)
    emit_json(
        "shard",
        {
            "scale": scale.name,
            "cpu_count": cpu_count,
            "shards": shards,
            "accelerated": not os.environ.get("REPRO_NO_ACCEL"),
            "identity_nodes": IDENTITY_NODES,
            "identical": identical,
            "timing_nodes": n_nodes,
            "serial_seconds_per_cycle": serial_cycle,
            "sharded_seconds_per_cycle": sharded_cycle,
            "speedup": speedup,
            "headline": headline,
        },
    )

    # The whole point of sharded execution: trustworthy == identical.
    assert identical, "sharded run drifted from the serial kernel"
    if headline:
        assert headline["completed"]
        assert headline["completed_exchanges"] > 0
    if scale.name == "full" and cpu_count >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"sharded cycle only {speedup:.2f}x faster than serial "
            f"({serial_cycle * 1000:.0f}ms vs {sharded_cycle * 1000:.0f}ms "
            f"per cycle) with {shards} shards on {cpu_count} cores; "
            f"expected >= {SPEEDUP_FLOOR}x"
        )

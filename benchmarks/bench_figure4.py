"""Benchmark + reproduction of paper Figure 4 (degree distributions).

Regenerates the checkpointed degree distributions and checks the paper's
central dichotomy: head view selection keeps the distribution narrow and
reaches its final shape within a few cycles; rand view selection grows a
heavy right tail.
"""

from benchmarks.conftest import emit_report
from repro.experiments import figure4


def test_figure4_reproduction(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure4.run(scale=scale, seed=0), rounds=1, iterations=1
    )
    emit_report("figure4", figure4.report(result))

    finals = {
        label: snapshots[-1] for label, snapshots in result.snapshots.items()
    }
    # rand view selection: much wider distribution than head.
    for propagation in ("push", "pushpull"):
        head = finals[f"(rand,head,{propagation})"]
        rand = finals[f"(rand,rand,{propagation})"]
        assert rand.std > 1.5 * head.std, propagation
        assert rand.maximum > head.maximum, propagation
        # Heavy tail: nodes above twice the mean exist under rand only.
        assert rand.tail_weight >= head.tail_weight

    # Head distributions converge early: the cycle-3 shape is already close
    # to the final one (std within a factor ~2), unlike rand which drifts.
    head_series = result.snapshots["(rand,head,pushpull)"]
    early, late = head_series[1], head_series[-1]
    assert early.std < 2.5 * late.std

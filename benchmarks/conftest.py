"""Shared benchmark fixtures and report plumbing.

Every paper-artefact benchmark regenerates its table/figure at the ambient
scale (``REPRO_SCALE``, default ``quick``), prints the reproduced rows and
stores them under ``benchmarks/out/`` so the run leaves inspectable
artifacts behind.  Machine-readable timings additionally land in
``benchmarks/out/BENCH_<name>.json`` (see :func:`emit_json`) -- the CI
benchmark smoke job uploads these, so the hot-path numbers are tracked
per commit.
"""

import json
import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit_report(name: str, report: str) -> None:
    """Print a reproduction report and persist it to ``benchmarks/out/``."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(report + "\n")
    print(f"\n{report}\n")


def emit_json(name: str, payload: dict) -> None:
    """Persist machine-readable benchmark results.

    Writes ``benchmarks/out/BENCH_<name>.json`` -- the artifact the CI
    benchmark job uploads, and the format regression-tracking tooling
    consumes.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[bench json] {path}\n")


@pytest.fixture(scope="session")
def scale():
    """The scale preset all benchmarks run at."""
    from repro.experiments.common import current_scale

    return current_scale(os.environ.get("REPRO_SCALE", "quick"))

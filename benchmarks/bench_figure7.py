"""Benchmark + reproduction of paper Figure 7 (self-healing).

Regenerates the dead-link decay curves after a 50% crash and checks every
claim of the paper's Section 7/8 discussion:

- head view selection heals exponentially fast (pushpull fastest, the two
  pushpull curves effectively overlapping);
- (rand,head,push) heals quickly, (tail,head,push) significantly slower;
- rand view selection heals linearly at best;
- (tail,rand,push) *increases* its dead-link count.
"""

from benchmarks.conftest import emit_report
from repro.experiments import figure7


def test_figure7_reproduction(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure7.run(scale=scale, seed=0), rounds=1, iterations=1
    )
    emit_report("figure7", figure7.report(result))

    series = {s.label: s for s in result.series}

    # Head view selection: fast, (nearly) complete healing.
    for label in ("(rand,head,pushpull)", "(tail,head,pushpull)"):
        assert series[label].half_life is not None
        assert series[label].half_life <= 6, label
        assert series[label].residual_fraction < 0.10, label

    # Push heals, but slower than pushpull.
    head_push = series["(rand,head,push)"]
    head_pushpull = series["(rand,head,pushpull)"]
    assert head_push.half_life >= head_pushpull.half_life
    assert head_push.residual_fraction < 0.10

    # (tail,head,push) significantly slower than (rand,head,push).
    assert series["(tail,head,push)"].half_life >= head_push.half_life

    # rand view selection: linear at best.
    for label in ("(rand,rand,push)", "(rand,rand,pushpull)"):
        assert series[label].residual_fraction > 0.30, label

    # (tail,rand,push): dead links do not shrink (the paper observed an
    # increase).
    assert series["(tail,rand,push)"].residual_fraction > 0.85

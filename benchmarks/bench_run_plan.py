"""Serial vs parallel ``run_plan``: wall clock and the identity contract.

The plan under test is an 8-cell Figure-7-style sweep (the paper's eight
protocol instances on the self-healing workload) at the ambient scale --
the shape of study ``run_plan(plan, workers=N)`` exists for.  Two claims
are demonstrated:

1. **identity** (asserted everywhere): the parallel run produces
   byte-identical records -- overlay digests, measurement series,
   ordering -- to the serial run (``PlanResult.records_digest``);
2. **speedup** (asserted on capable boxes): with ``REPRO_SCALE=full``
   (N = 10^4, the preset that defaults to one worker per core) on a
   4+-core machine, parallel execution is >= 3x faster than serial.
   At smaller scales the per-cell work is milliseconds, spawn/import
   overhead dominates, and the speedup is recorded but not asserted.

Machine-readable results land in ``benchmarks/out/BENCH_run_plan.json``
(uploaded by the CI ``plan-parallel`` job): cpu count, worker count,
serial/parallel seconds, speedup, and the shared records digest.
"""

import os
import time

from benchmarks.conftest import emit_json, emit_report
from repro.experiments.common import studied_protocols
from repro.experiments.reporting import format_table
from repro.workloads import CatastrophicFailure, ExperimentPlan, ScenarioSpec, run_plan

HEALING_CYCLES = 30
SPEEDUP_FLOOR = 3.0
"""Required parallel speedup for a full-scale plan on a 4+-core box."""


def _build_plan(scale) -> ExperimentPlan:
    converge = scale.cycles
    spec = ScenarioSpec(
        name="bench-self-healing",
        bootstrap="random",
        cycles=converge + HEALING_CYCLES,
        events=(CatastrophicFailure(at_cycle=converge, fraction=0.5),),
    )
    return ExperimentPlan(
        name="bench-run-plan",
        scenario=spec,
        protocols=tuple(
            config.label for config in studied_protocols(scale.view_size)
        ),
        scales=(scale.name,),
        engines=("fast",),
        seeds=(7,),
        measurements=("dead-links", "components"),
    )


def test_run_plan_parallel_speedup(scale):
    plan = _build_plan(scale)
    cpu_count = os.cpu_count() or 1
    workers = max(2, min(cpu_count, plan.total_runs))

    started = time.perf_counter()
    serial = run_plan(plan, workers=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_plan(plan, workers=workers)
    parallel_seconds = time.perf_counter() - started

    identical = serial.records_digest() == parallel.records_digest()
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0

    report = format_table(
        ["mode", "workers", "cells", "seconds"],
        [
            ["serial", 1, plan.total_runs, round(serial_seconds, 3)],
            ["parallel", workers, plan.total_runs, round(parallel_seconds, 3)],
        ],
        title=(
            f"run_plan serial vs parallel (scale={scale.name}, "
            f"N={scale.n_nodes}, {cpu_count} cores, speedup "
            f"{speedup:.2f}x, identical={identical})"
        ),
    )
    emit_report("bench_run_plan", report)
    emit_json(
        "run_plan",
        {
            "scale": scale.name,
            "n_nodes": scale.n_nodes,
            "cells": plan.total_runs,
            "cpu_count": cpu_count,
            "workers": workers,
            "accelerated": not os.environ.get("REPRO_NO_ACCEL"),
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "identical": identical,
            "records_digest": serial.records_digest(),
        },
    )

    # The whole point of parallel execution: trustworthy == identical.
    assert identical, "parallel records drifted from serial execution"
    assert [r.canonical_dict() for r in serial.records] == [
        r.canonical_dict() for r in parallel.records
    ]
    if scale.name == "full" and cpu_count >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"parallel run_plan only {speedup:.2f}x faster than serial "
            f"({serial_seconds:.1f}s vs {parallel_seconds:.1f}s) on "
            f"{cpu_count} cores; expected >= {SPEEDUP_FLOOR}x"
        )

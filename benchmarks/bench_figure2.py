"""Benchmark + reproduction of paper Figure 2 (growing-scenario dynamics).

Regenerates the clustering / degree / path-length series for the six
stable protocols while the overlay grows, and checks the qualitative
claims: pushpull converges to stable values, push converges far more
slowly, and (*,rand,pushpull) lands closest to the random baseline.
"""

from benchmarks.conftest import emit_report
from repro.experiments import figure2


def _series(result, label):
    return next(s for s in result.series if s.label == label)


def test_figure2_reproduction(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure2.run(scale=scale, seed=0), rounds=1, iterations=1
    )
    emit_report("figure2", figure2.report(result))

    baseline_degree = result.baseline["average_degree"]
    pushpull = _series(result, "(rand,rand,pushpull)")
    push = _series(result, "(rand,rand,push)")

    # After growth ends, (rand,rand,pushpull) approaches the baseline
    # average degree; push-only stays visibly below (slow convergence).
    assert pushpull.average_degree[-1] > 0.85 * baseline_degree
    assert push.average_degree[-1] < pushpull.average_degree[-1]

    # All protocols end up with a small average path length (within 2x of
    # the random topology), even though the overlay grew from one node.
    for series in result.series:
        assert (
            series.average_path_length[-1]
            < 2.0 * result.baseline["average_path_length"]
        ), series.label

"""Benchmark + reproduction of the adversarial attack sweep.

Regenerates the hub-poisoning fraction x protocol table at the ambient
scale and checks the qualitative claims the artefact exists to surface:
honest (f = 0) baselines are near-uniform and attacker-free, a 10%
attacker fraction visibly captures in-degree on every *undefended*
design, the Brahms defended sampler keeps the attacker share small at
every swept fraction (the acceptance criterion: strictly below the
generic's capture and no worse than Cyclon's at f = 0.01), and the
f = 0 generic cell matches the table2 run of the same seed.  The
machine-readable rows land in ``benchmarks/out/BENCH_attack.json`` for
the CI ``defenses`` job.
"""

from benchmarks.conftest import emit_json, emit_report
from repro.experiments import attack, table2


def test_attack_reproduction(benchmark, scale):
    result = benchmark.pedantic(
        lambda: attack.run(scale=scale, seed=0), rounds=1, iterations=1
    )
    emit_report("attack", attack.report(result))
    emit_json("attack", attack.summary_dict(result))

    by_key = {(row.protocol, row.fraction): row for row in result.rows}
    protocols = sorted({row.protocol for row in result.rows})
    assert len(protocols) == 6
    brahms = next(p for p in protocols if p.startswith("brahms("))
    cyclon = next(p for p in protocols if p.startswith("cyclon("))
    validated = next(p for p in protocols if p.endswith(";V"))

    for protocol in protocols:
        honest = by_key[(protocol, 0.0)]
        attacked = by_key[(protocol, 0.1)]
        # Honest runs reference no attackers and stay roughly uniform.
        assert honest.attacker_share == 0.0
        assert honest.total_variation < 0.5
        if protocol == brahms:
            continue
        # f=0.1 hub poisoning captures most links on undefended designs
        # (descriptor validation alone slows, but does not stop, it).
        assert attacked.attacker_share > 0.5, protocol
        assert attacked.total_variation > honest.total_variation, protocol
        assert attacked.chi_square > honest.chi_square, protocol

    # The defended sampler's acceptance criterion: at f=0.01 its
    # attacker share is strictly below the generic's capture and no
    # worse than the best undefended design (Cyclon); at f=0.1 -- where
    # everything else collapses -- it keeps the attacker share small.
    generic_001 = by_key[("(rand,head,pushpull)", 0.01)]
    assert by_key[(brahms, 0.01)].attacker_share < generic_001.attacker_share
    assert (
        by_key[(brahms, 0.01)].attacker_share
        <= by_key[(cyclon, 0.01)].attacker_share
    )
    assert by_key[(brahms, 0.1)].attacker_share < 0.5

    # Stateless descriptor validation strictly improves on the naive
    # generic at the same fraction, even though it cannot win alone.
    assert (
        by_key[(validated, 0.01)].attacker_share
        < generic_001.attacker_share
    )

    # The honest generic cell is the table2 cell of the same seed.
    reference = table2.run(scale=scale, seed=0)
    table2_generic = next(
        row for row in reference.rows if row.label == "(rand,head,pushpull)"
    )
    assert (
        by_key[("(rand,head,pushpull)", 0.0)].mean_degree
        == table2_generic.dynamics.final_cycle_mean_degree
    )

"""Benchmark + reproduction of the adversarial attack sweep.

Regenerates the hub-poisoning fraction x protocol table at the ambient
scale and checks the qualitative claims the artefact exists to surface:
honest (f = 0) baselines are near-uniform and attacker-free, a 10%
attacker fraction visibly captures in-degree and distorts the sampling
distribution on every design, and the f = 0 generic cell matches the
table2 run of the same seed.  The machine-readable rows land in
``benchmarks/out/BENCH_attack.json`` for the CI ``adversary`` job.
"""

from benchmarks.conftest import emit_json, emit_report
from repro.experiments import attack, table2


def test_attack_reproduction(benchmark, scale):
    result = benchmark.pedantic(
        lambda: attack.run(scale=scale, seed=0), rounds=1, iterations=1
    )
    emit_report("attack", attack.report(result))
    emit_json("attack", attack.summary_dict(result))

    by_key = {(row.protocol, row.fraction): row for row in result.rows}
    protocols = sorted({row.protocol for row in result.rows})
    assert len(protocols) == 4

    for protocol in protocols:
        honest = by_key[(protocol, 0.0)]
        attacked = by_key[(protocol, 0.1)]
        # Honest runs reference no attackers and stay roughly uniform.
        assert honest.attacker_share == 0.0
        assert honest.total_variation < 0.5
        # f=0.1 hub poisoning captures most links on every design.
        assert attacked.attacker_share > 0.5, protocol
        assert attacked.total_variation > honest.total_variation, protocol
        assert attacked.chi_square > honest.chi_square, protocol

    # The honest generic cell is the table2 cell of the same seed.
    reference = table2.run(scale=scale, seed=0)
    table2_generic = next(
        row for row in reference.rows if row.label == "(rand,head,pushpull)"
    )
    assert (
        by_key[("(rand,head,pushpull)", 0.0)].mean_degree
        == table2_generic.dynamics.final_cycle_mean_degree
    )

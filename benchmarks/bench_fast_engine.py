"""Fast-engine benchmark: array-backed engine vs the reference engine.

Two claims are demonstrated (and asserted):

1. at N = 10,000 (paper full scale; 2,000 under ``REPRO_SCALE=quick``)
   the fast engine is at least 5x faster than ``CycleEngine`` when the
   compiled C core is available -- while producing *byte-identical*
   overlays for the same seed;
2. a 100,000-node overlay -- 10x the paper's N -- runs in seconds.

Run ``REPRO_NO_ACCEL=1`` to measure the pure-Python fallback (the 5x
assertion then relaxes to a leaner sanity bound, since the fallback's
win is memory and modest speed, not an order of magnitude).
"""

import time

from benchmarks.conftest import emit_report
from repro.core.config import ProtocolConfig
from repro.experiments.reporting import format_table
from repro.simulation.engine import CycleEngine
from repro.simulation.fast import FastCycleEngine
from repro.simulation.scenarios import random_bootstrap

VIEW_SIZE = 30
COMPARE_CYCLES = 3
BIG_N = 100_000
LABELS = [
    "(rand,head,pushpull)",   # newscast, the paper's flagship instance
    "(rand,rand,pushpull)",
    "(tail,rand,push)",
]


def _views_checksum(engine):
    total = 0
    for address, entries in engine.views().items():
        for descriptor in entries:
            total = (
                total * 1_000_003
                + hash((address, descriptor.address, descriptor.hop_count))
            ) & 0xFFFFFFFFFFFF
    return total


def _timed_run(engine, n_nodes, cycles):
    random_bootstrap(engine, n_nodes)
    started = time.perf_counter()
    engine.run(cycles)
    return time.perf_counter() - started


def test_fast_engine_speedup(benchmark, scale):
    n_nodes = 2_000 if scale.name == "quick" else 10_000

    def run():
        rows = []
        speedups = {}
        identical = True
        for label in LABELS:
            config = ProtocolConfig.from_label(label, VIEW_SIZE)
            fast = FastCycleEngine(config, seed=1)
            reference = CycleEngine(config, seed=1)
            fast_time = _timed_run(fast, n_nodes, COMPARE_CYCLES)
            ref_time = _timed_run(reference, n_nodes, COMPARE_CYCLES)
            identical = identical and (
                _views_checksum(fast) == _views_checksum(reference)
                and fast.completed_exchanges == reference.completed_exchanges
            )
            speedups[label] = ref_time / fast_time
            rows.append(
                [
                    label,
                    ref_time / COMPARE_CYCLES * 1000,
                    fast_time / COMPARE_CYCLES * 1000,
                    ref_time / fast_time,
                ]
            )
        return rows, speedups, identical, fast.accelerated

    rows, speedups, identical, accelerated = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    backend = "C core" if accelerated else "pure Python (no C compiler)"
    report = format_table(
        ["protocol", "cycle ms/cyc", "fast ms/cyc", "speedup"],
        rows,
        precision=2,
        title=(
            f"FastCycleEngine vs CycleEngine (N={n_nodes}, "
            f"c={VIEW_SIZE}, {COMPARE_CYCLES} cycles, backend: {backend})"
        ),
    )
    emit_report("fast_engine_speedup", report)

    # identical overlays for identical seeds -- the differential contract.
    assert identical
    if accelerated:
        # acceptance bar: >= 5x on every measured protocol instance.
        for label, speedup in speedups.items():
            assert speedup >= 5.0, (label, speedup)
    else:
        # pure-Python fallback: its win is memory, not wall clock, so only
        # sanity-check against a gross regression (noisy CI runners can
        # push small-N timings either way around 1.0).
        for label, speedup in speedups.items():
            assert speedup >= 0.5, (label, speedup)


def test_random_bootstrap_speedup(benchmark, scale):
    """The vectorized bootstrap path vs the generic descriptor path.

    ``random_bootstrap`` used to dominate large fast-engine sessions
    (~5.6 s of a 100k-node run vs 3.5 s of gossip); the flat-array bulk
    path -- C ``fc_bootstrap`` when compiled, direct array writes
    otherwise -- removes that bottleneck while consuming the RNG
    identically (pinned here by comparing overlays).
    """
    n_nodes = 2_000 if scale.name == "quick" else 10_000
    config = ProtocolConfig.from_label("(rand,head,pushpull)", VIEW_SIZE)

    def run():
        fast = FastCycleEngine(config, seed=1)
        started = time.perf_counter()
        random_bootstrap(fast, n_nodes)
        fast_time = time.perf_counter() - started
        reference = CycleEngine(config, seed=1)
        started = time.perf_counter()
        random_bootstrap(reference, n_nodes)
        ref_time = time.perf_counter() - started
        identical = _views_checksum(fast) == _views_checksum(reference)
        return ref_time, fast_time, identical, fast.accelerated

    ref_time, fast_time, identical, accelerated = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    backend = "C core" if accelerated else "pure Python (no C compiler)"
    speedup = ref_time / fast_time
    report = format_table(
        ["path", "seconds"],
        [
            ["CycleEngine bootstrap", ref_time],
            [f"FastCycleEngine bootstrap ({backend})", fast_time],
            ["speedup", speedup],
        ],
        precision=3,
        title=f"random_bootstrap at N={n_nodes} (c={VIEW_SIZE})",
    )
    emit_report("random_bootstrap_speedup", report)

    # identical overlays for identical seeds -- the bulk path must consume
    # the RNG exactly like the generic path.
    assert identical
    if accelerated:
        assert speedup >= 5.0, speedup
    else:
        # The descriptor-free python path wins by a constant factor; keep
        # a modest bar so noisy CI runners stay green.
        assert speedup >= 1.1, speedup


def test_fast_engine_100k_nodes(benchmark, scale):
    cycles = 2 if scale.name == "quick" else 10
    config = ProtocolConfig.from_label("(rand,head,pushpull)", VIEW_SIZE)

    def run():
        engine = FastCycleEngine(config, seed=1)
        boot_started = time.perf_counter()
        random_bootstrap(engine, BIG_N)
        boot_time = time.perf_counter() - boot_started
        run_started = time.perf_counter()
        engine.run(cycles)
        run_time = time.perf_counter() - run_started
        return boot_time, run_time, engine.completed_exchanges, engine.accelerated

    boot_time, run_time, completed, accelerated = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    backend = "C core" if accelerated else "pure Python"
    report = format_table(
        ["phase", "seconds", "exchanges/s"],
        [
            ["bootstrap", boot_time, 0.0],
            [f"{cycles} cycles", run_time, completed / run_time],
        ],
        precision=2,
        title=(
            f"FastCycleEngine at N={BIG_N:,} (c={VIEW_SIZE}, "
            f"backend: {backend})"
        ),
    )
    emit_report("fast_engine_100k", report)
    assert completed == BIG_N * cycles  # every node gossiped every cycle
    # "completing in seconds": generous ceiling so CI boxes stay green.
    if accelerated:
        assert run_time < 30.0
    else:
        assert run_time < 600.0

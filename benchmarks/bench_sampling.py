"""Sampling-quality benchmark: the service API's distance from uniform.

The paper's conclusion in one table: for each studied protocol (plus the
oracle), measure the global hit distribution of ``get_peer`` and the
temporal repeat rate.  Gossip services cover the population and keep the
hit distribution roughly balanced, but their *temporal* behaviour is far
from independent uniform sampling -- samples come from a slowly-changing
c-sized view.
"""

from benchmarks.conftest import emit_report
from repro.baselines.oracle import OracleGroup
from repro.core.config import ProtocolConfig
from repro.experiments.reporting import format_table
from repro.simulation.engine import CycleEngine
from repro.simulation.scenarios import random_bootstrap
from repro.stats.sampling_quality import evaluate_sampling_quality

N, C, CYCLES = 300, 12, 40

LABELS = (
    "(rand,head,pushpull)",
    "(rand,rand,pushpull)",
    "(rand,rand,push)",
    "(tail,head,pushpull)",
)


def test_sampling_quality_table(benchmark):
    def run():
        rows = []
        for label in LABELS:
            engine = CycleEngine(ProtocolConfig.from_label(label, C), seed=6)
            random_bootstrap(engine, N)
            engine.run(CYCLES)
            services = {a: engine.service(a) for a in engine.addresses()}
            report = evaluate_sampling_quality(services, calls_per_service=20)
            rows.append(
                [
                    label,
                    report.normalized_chi_square,
                    report.total_variation,
                    report.coverage,
                    report.repeat_probability_window1,
                ]
            )
        group = OracleGroup(seed=7)
        oracle_services = {i: group.service(i) for i in range(N)}
        oracle = evaluate_sampling_quality(oracle_services, calls_per_service=20)
        rows.append(
            [
                "oracle (uniform)",
                oracle.normalized_chi_square,
                oracle.total_variation,
                oracle.coverage,
                oracle.repeat_probability_window1,
            ]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        ["service", "chi2/dof", "TV dist", "coverage", "repeat@1"],
        rows,
        precision=3,
        title=f"get_peer() sampling quality (N={N}, c={C}); the oracle is "
        "the paper's ideal",
    )
    emit_report("sampling_quality", report)

    by_label = {row[0]: row for row in rows}
    oracle_repeat = by_label["oracle (uniform)"][4]
    for label in LABELS:
        # Near-full coverage: sampling reaches (almost) every node.  Under
        # rand view selection a few weakly-in-linked nodes are visibly
        # under-sampled -- the imbalance of paper Figure 4 at the API level.
        assert by_label[label][3] >= 0.9, label
        # Temporal correlation far above independent uniform draws -- the
        # service is NOT the ideal the theory assumes (paper's thesis).
        assert by_label[label][4] > 2 * oracle_repeat, label
    # head view selection keeps the global hit distribution more balanced
    # and better covered than rand (its in-degrees are narrower).
    assert (
        by_label["(rand,head,pushpull)"][1]
        < by_label["(rand,rand,pushpull)"][1]
    )
    assert (
        by_label["(rand,head,pushpull)"][3]
        >= by_label["(rand,rand,pushpull)"][3]
    )

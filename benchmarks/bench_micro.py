"""Micro-benchmarks of the protocol hot paths.

These quantify the costs that dominate large simulations: view merging,
view selection, one full pushpull exchange, and one engine cycle.
"""

import random

from repro.core.config import newscast
from repro.core.descriptor import NodeDescriptor
from repro.core.protocol import GossipNode
from repro.core.view import merge, select_head, select_rand
from repro.graph.snapshot import GraphSnapshot
from repro.simulation.engine import CycleEngine
from repro.simulation.scenarios import random_bootstrap


def _entries(n, offset=0):
    return [NodeDescriptor(offset + i, i % 7) for i in range(n)]


def test_merge_two_views(benchmark):
    first = _entries(30)
    second = _entries(30, offset=15)  # 50% overlap
    result = benchmark(lambda: merge(first, second))
    assert len(result) == 45


def test_select_head_from_buffer(benchmark):
    buffer = merge(_entries(61))
    result = benchmark(lambda: select_head(buffer, 30))
    assert len(result) == 30


def test_select_rand_from_buffer(benchmark):
    buffer = merge(_entries(61))
    rng = random.Random(0)
    result = benchmark(lambda: select_rand(buffer, 30, rng))
    assert len(result) == 30


def test_full_pushpull_exchange(benchmark):
    rng = random.Random(0)
    config = newscast(view_size=30)
    a = GossipNode("a", config, rng)
    b = GossipNode("b", config, rng)
    a.view.replace(_entries(30, offset=100) + [NodeDescriptor("b", 1)][:0])
    a.view.replace([NodeDescriptor("b", 1)] + _entries(29, offset=100))
    b.view.replace([NodeDescriptor("a", 1)] + _entries(29, offset=200))

    def exchange():
        ex = a.begin_exchange()
        reply = b.handle_request("a", ex.payload)
        a.handle_response(ex.peer, reply)

    benchmark(exchange)


def test_engine_cycle_500_nodes(benchmark):
    engine = CycleEngine(newscast(view_size=20), seed=0)
    random_bootstrap(engine, 500)
    benchmark(engine.run_cycle)


def test_snapshot_construction_500_nodes(benchmark):
    engine = CycleEngine(newscast(view_size=20), seed=0)
    random_bootstrap(engine, 500)
    engine.run(5)
    snapshot = benchmark(lambda: GraphSnapshot.from_engine(engine))
    assert snapshot.n == 500

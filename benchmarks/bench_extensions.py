"""Extension benchmarks: Cyclon, SCAMP and the combined two-view service.

Positions the paper's related/future work against the skeleton instances:

- Cyclon's shuffle keeps degrees even tighter than head view selection and
  heals dead links through its built-in failure detection;
- SCAMP self-sizes views to ~(c+1) ln N without any global knowledge;
- the combined (head + rand) service inherits fast healing from its head
  instance while the rand instance retains long partition memory -- the
  paper's Section 10 proposal.
"""

import math

import pytest

from benchmarks.conftest import emit_report
from repro.core.config import ProtocolConfig
from repro.experiments.reporting import format_table
from repro.extensions.cyclon import CyclonConfig, cyclon_engine
from repro.extensions.scamp import ScampConfig, build_scamp_network
from repro.extensions.second_view import CombinedOverlay
from repro.graph.components import is_connected
from repro.graph.metrics import average_degree
from repro.graph.snapshot import GraphSnapshot
from repro.simulation.churn import massive_failure
from repro.simulation.engine import CycleEngine
from repro.simulation.scenarios import random_bootstrap

N, C, CYCLES = 400, 12, 50


def test_cyclon_vs_skeleton(benchmark):
    def run():
        rows = []
        for name, engine in (
            ("cyclon", cyclon_engine(CyclonConfig(C, C // 2), seed=2)),
            (
                "(rand,head,pushpull)",
                CycleEngine(
                    ProtocolConfig.from_label("(rand,head,pushpull)", C), seed=2
                ),
            ),
            (
                "(rand,rand,pushpull)",
                CycleEngine(
                    ProtocolConfig.from_label("(rand,rand,pushpull)", C), seed=2
                ),
            ),
        ):
            random_bootstrap(engine, N)
            engine.run(CYCLES)
            snapshot = GraphSnapshot.from_engine(engine)
            degrees = snapshot.degrees()
            massive_failure(engine, 0.5)
            initial = engine.dead_link_count()
            engine.run(30)
            residual = engine.dead_link_count() / initial if initial else 0.0
            rows.append(
                [
                    name,
                    average_degree(snapshot),
                    float(degrees.std()),
                    residual,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        ["protocol", "avg degree", "degree std", "healing residual"],
        rows,
        precision=3,
        title=f"Cyclon vs skeleton instances (N={N}, c={C})",
    )
    emit_report("extension_cyclon", report)
    by_name = {row[0]: row for row in rows}
    # Cyclon's degree balance beats rand view selection.
    assert by_name["cyclon"][2] < by_name["(rand,rand,pushpull)"][2]
    # Cyclon heals (failure detection), unlike rand view selection.
    assert by_name["cyclon"][3] < 0.3
    assert by_name["(rand,rand,pushpull)"][3] > 0.3


def test_scamp_view_scaling(benchmark):
    def run():
        rows = []
        for n in (100, 200, 400):
            network = build_scamp_network(n, ScampConfig(c=0), seed=4)
            snapshot = GraphSnapshot.from_views(network.views())
            rows.append(
                [
                    n,
                    network.mean_view_size(),
                    math.log(n),
                    is_connected(snapshot),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        ["N", "mean view size", "ln N", "connected"],
        rows,
        precision=2,
        title="SCAMP self-sizing: mean view size tracks ln N",
    )
    emit_report("extension_scamp", report)
    for n, mean_view, log_n, connected in rows:
        assert connected
        assert 0.5 * log_n < mean_view < 4 * log_n
    # View size grows with N (logarithmic self-sizing).
    assert rows[-1][1] > rows[0][1]


def test_combined_second_view_service(benchmark):
    configs = [
        ProtocolConfig.from_label("(rand,head,pushpull)", C),
        ProtocolConfig.from_label("(rand,rand,pushpull)", C),
    ]

    def run():
        overlay = CombinedOverlay(configs, seed=5)
        first = overlay.add_node()
        for _ in range(N - 1):
            overlay.add_node(contacts=[first])
        overlay.run(CYCLES)
        overlay.crash_random_nodes(N // 2)
        overlay.run(30)
        head_dead = overlay.engines[0].dead_link_count()
        rand_dead = overlay.engines[1].dead_link_count()
        combined_connected = is_connected(
            GraphSnapshot.from_views(overlay.views())
        )
        return head_dead, rand_dead, combined_connected

    head_dead, rand_dead, connected = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report = format_table(
        ["view", "dead links 30 cycles after 50% crash"],
        [
            ["head instance (fast healing)", head_dead],
            ["rand instance (partition memory)", rand_dead],
            ["combined overlay connected", str(connected)],
        ],
        title="Second-view combination (paper Section 10)",
    )
    emit_report("extension_second_view", report)
    assert connected
    # The head instance of the union heals while the rand one remembers.
    assert head_dead < 0.2 * rand_dead

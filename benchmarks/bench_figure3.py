"""Benchmark + reproduction of paper Figure 3 (lattice/random convergence).

Regenerates the six panels and checks: the lattice's huge initial path
length collapses within a few cycles; both starts converge to the same
per-protocol clustering (self-organization); every protocol's clustering
stays above the random baseline.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.experiments import figure3


def _series(result, scenario, label):
    return next(s for s in result.series[scenario] if s.label == label)


def test_figure3_reproduction(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure3.run(scale=scale, seed=0), rounds=1, iterations=1
    )
    emit_report("figure3", figure3.report(result))

    # Path length collapse from the lattice start (paper plots log scale).
    lattice = _series(result, "lattice", "(rand,head,pushpull)")
    assert lattice.average_path_length[0] > 4 * lattice.average_path_length[-1]

    # Self-organization: both starts converge to similar clustering.
    for label in ("(rand,head,pushpull)", "(rand,rand,pushpull)"):
        from_lattice = _series(result, "lattice", label).clustering[-1]
        from_random = _series(result, "random", label).clustering[-1]
        assert from_lattice == pytest.approx(from_random, rel=0.4), label

    # Clustering above the random baseline for every studied protocol.
    for scenario in ("lattice", "random"):
        for series in result.series[scenario]:
            assert (
                series.clustering[-1] > result.baseline["clustering"]
            ), (scenario, series.label)
